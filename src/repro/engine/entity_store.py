"""Low-latency entity retrieval store (the "Entity Index" of Figure 6).

A key-value store mapping KG entity identifiers to their materialized,
entity-centric documents.  Production use cases (entity cards, question
answering) fetch whole entities by id with strict latency SLAs; the store is
therefore a simple dictionary with incremental update hooks driven by the
orchestration agent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import StoreError
from repro.model.entity import KGEntity
from repro.model.triples import TripleStore


@dataclass
class EntityDocument:
    """The serving document for one entity."""

    entity_id: str
    name: str = ""
    types: list[str] = field(default_factory=list)
    facts: dict[str, list[object]] = field(default_factory=dict)
    relationships: dict[str, list[dict]] = field(default_factory=dict)
    importance: float = 0.0

    @classmethod
    def from_entity(cls, entity: KGEntity, importance: float = 0.0) -> "EntityDocument":
        """Build the serving document from a materialized KG entity."""
        return cls(
            entity_id=entity.entity_id,
            name=entity.primary_name,
            types=list(entity.types),
            facts={k: list(v) for k, v in entity.facts.items()},
            relationships={
                predicate: [dict(node.facts) for node in nodes]
                for predicate, nodes in entity.relationships.items()
            },
            importance=importance,
        )


class EntityStore:
    """Key-value entity index with incremental maintenance."""

    def __init__(self) -> None:
        self._documents: dict[str, EntityDocument] = {}
        self.lookups = 0

    # -------------------------------------------------------------- #
    # maintenance
    # -------------------------------------------------------------- #
    def put(self, document: EntityDocument) -> None:
        """Insert or replace one entity document."""
        self._documents[document.entity_id] = document

    def delete(self, entity_id: str) -> bool:
        """Remove an entity document; returns ``True`` when it existed."""
        return self._documents.pop(entity_id, None) is not None

    def update_from_store(
        self, store: TripleStore, changed_entity_ids: Iterable[str] | None = None
    ) -> int:
        """Refresh documents for *changed_entity_ids* (or every subject).

        This is the ``update(changed_entity_ids)`` procedure the view/agent
        framework calls after each ingest operation.
        """
        subjects = (
            set(changed_entity_ids) if changed_entity_ids is not None else store.subjects()
        )
        refreshed = 0
        for subject in subjects:
            facts = store.facts_about(subject)
            if not facts:
                self.delete(subject)
                continue
            entity = KGEntity.from_triples(subject, facts)
            existing = self._documents.get(subject)
            importance = existing.importance if existing else 0.0
            self.put(EntityDocument.from_entity(entity, importance))
            refreshed += 1
        return refreshed

    def set_importance(self, entity_id: str, importance: float) -> None:
        """Attach an importance score (produced by the importance view)."""
        document = self._documents.get(entity_id)
        if document is None:
            raise StoreError(f"unknown entity {entity_id!r}")
        document.importance = importance

    # -------------------------------------------------------------- #
    # retrieval
    # -------------------------------------------------------------- #
    def get(self, entity_id: str) -> EntityDocument | None:
        """Fetch one entity document (``None`` when absent)."""
        self.lookups += 1
        return self._documents.get(entity_id)

    def get_many(self, entity_ids: Iterable[str]) -> list[EntityDocument]:
        """Fetch several documents, skipping unknown identifiers."""
        documents = []
        for entity_id in entity_ids:
            document = self.get(entity_id)
            if document is not None:
                documents.append(document)
        return documents

    def ids(self) -> list[str]:
        """All stored entity identifiers."""
        return sorted(self._documents)

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, entity_id: object) -> bool:
        return entity_id in self._documents
