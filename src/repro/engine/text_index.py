"""Full-text search with ranking over entity names and descriptions.

The "Text Index" store of the Graph Engine (Figure 6): an inverted index with
BM25 ranking used for full-text entity retrieval (ranked entity index views,
candidate retrieval for NERD, and search-style queries).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.ml.similarity import tokens


@dataclass
class TextDocument:
    """One indexable document (usually an entity's names + description)."""

    doc_id: str
    text: str
    boost: float = 1.0
    payload: dict = field(default_factory=dict)


@dataclass
class SearchHit:
    """One ranked search result."""

    doc_id: str
    score: float
    payload: dict = field(default_factory=dict)


class InvertedTextIndex:
    """BM25-ranked inverted index with incremental add/remove."""

    def __init__(self, k1: float = 1.4, b: float = 0.75) -> None:
        self.k1 = k1
        self.b = b
        self._documents: dict[str, TextDocument] = {}
        self._doc_terms: dict[str, dict[str, int]] = {}
        self._postings: dict[str, set[str]] = defaultdict(set)
        self._total_length = 0
        self.searches = 0

    # -------------------------------------------------------------- #
    # maintenance
    # -------------------------------------------------------------- #
    def index(self, document: TextDocument) -> None:
        """Add or replace a document."""
        if document.doc_id in self._documents:
            self.remove(document.doc_id)
        term_counts: dict[str, int] = defaultdict(int)
        for term in tokens(document.text):
            term_counts[term] += 1
        self._documents[document.doc_id] = document
        self._doc_terms[document.doc_id] = dict(term_counts)
        for term in term_counts:
            self._postings[term].add(document.doc_id)
        self._total_length += sum(term_counts.values())

    def index_many(self, documents: Iterable[TextDocument]) -> int:
        """Index several documents; returns how many were indexed."""
        count = 0
        for document in documents:
            self.index(document)
            count += 1
        return count

    def remove(self, doc_id: str) -> bool:
        """Remove a document; returns ``True`` when it existed."""
        document = self._documents.pop(doc_id, None)
        if document is None:
            return False
        term_counts = self._doc_terms.pop(doc_id, {})
        for term in term_counts:
            self._postings[term].discard(doc_id)
            if not self._postings[term]:
                del self._postings[term]
        self._total_length -= sum(term_counts.values())
        return True

    # -------------------------------------------------------------- #
    # search
    # -------------------------------------------------------------- #
    def search(self, query: str, k: int = 10) -> list[SearchHit]:
        """Return the top-*k* documents for *query* ranked by BM25."""
        self.searches += 1
        query_terms = tokens(query)
        if not query_terms or not self._documents:
            return []
        average_length = self._total_length / max(len(self._documents), 1)
        scores: dict[str, float] = defaultdict(float)
        total_docs = len(self._documents)
        for term in query_terms:
            posting = self._postings.get(term)
            if not posting:
                continue
            idf = math.log(1.0 + (total_docs - len(posting) + 0.5) / (len(posting) + 0.5))
            for doc_id in posting:
                term_frequency = self._doc_terms[doc_id].get(term, 0)
                doc_length = sum(self._doc_terms[doc_id].values())
                denominator = term_frequency + self.k1 * (
                    1 - self.b + self.b * doc_length / max(average_length, 1e-9)
                )
                scores[doc_id] += idf * term_frequency * (self.k1 + 1) / max(denominator, 1e-9)
        hits = [
            SearchHit(
                doc_id=doc_id,
                score=score * self._documents[doc_id].boost,
                payload=self._documents[doc_id].payload,
            )
            for doc_id, score in scores.items()
        ]
        hits.sort(key=lambda hit: (-hit.score, hit.doc_id))
        return hits[:k]

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._documents
