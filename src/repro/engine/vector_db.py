"""Vector database with nearest-neighbour search (the "Vector DB" of Figure 6).

Stores dense vectors keyed by entity id with optional attributes (entity type,
locale) usable as filters — e.g. the "people embeddings" subset of Figure 7 is
just an attribute-filtered view of the full embedding collection.  Search is
exact cosine/dot-product kNN over a numpy matrix, which is the correct
laptop-scale substitute for the approximate-NN service used in production.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import StoreError


@dataclass
class VectorHit:
    """One nearest-neighbour result."""

    key: str
    score: float
    attributes: dict = field(default_factory=dict)


class VectorDB:
    """Exact kNN store over dense vectors with attribute filters."""

    def __init__(self, dimension: int, metric: str = "cosine") -> None:
        if dimension <= 0:
            raise StoreError("vector dimension must be positive")
        if metric not in ("cosine", "dot"):
            raise StoreError(f"unsupported metric {metric!r}")
        self.dimension = dimension
        self.metric = metric
        self._keys: list[str] = []
        self._index_of: dict[str, int] = {}
        self._matrix = np.zeros((0, dimension))
        self._attributes: dict[str, dict] = {}
        self.queries = 0

    # -------------------------------------------------------------- #
    # maintenance
    # -------------------------------------------------------------- #
    def upsert(self, key: str, vector: Sequence[float], attributes: dict | None = None) -> None:
        """Insert or replace the vector stored under *key*."""
        array = np.asarray(vector, dtype=float).reshape(-1)
        if array.shape[0] != self.dimension:
            raise StoreError(
                f"vector for {key!r} has dimension {array.shape[0]}, expected {self.dimension}"
            )
        if key in self._index_of:
            self._matrix[self._index_of[key]] = array
        else:
            self._index_of[key] = len(self._keys)
            self._keys.append(key)
            self._matrix = np.vstack([self._matrix, array[None, :]])
        self._attributes[key] = dict(attributes or {})

    def upsert_many(
        self, items: Iterable[tuple[str, Sequence[float], dict | None]]
    ) -> int:
        """Upsert several ``(key, vector, attributes)`` items."""
        count = 0
        for key, vector, attributes in items:
            self.upsert(key, vector, attributes)
            count += 1
        return count

    def delete(self, key: str) -> bool:
        """Remove a vector; returns ``True`` when it existed."""
        index = self._index_of.pop(key, None)
        if index is None:
            return False
        self._keys.pop(index)
        self._matrix = np.delete(self._matrix, index, axis=0)
        self._attributes.pop(key, None)
        # Re-number the shifted tail.
        for position in range(index, len(self._keys)):
            self._index_of[self._keys[position]] = position
        return True

    def get(self, key: str) -> np.ndarray | None:
        """Return the stored vector for *key* (``None`` when absent)."""
        index = self._index_of.get(key)
        if index is None:
            return None
        return self._matrix[index].copy()

    def attributes_of(self, key: str) -> dict:
        """Attributes stored with *key*."""
        return dict(self._attributes.get(key, {}))

    # -------------------------------------------------------------- #
    # search
    # -------------------------------------------------------------- #
    def search(
        self,
        query: Sequence[float],
        k: int = 10,
        attribute_filter: dict | None = None,
        exclude: Iterable[str] = (),
    ) -> list[VectorHit]:
        """Return the *k* nearest stored vectors to *query*.

        ``attribute_filter`` keeps only vectors whose attributes contain every
        given key/value pair (the "people embeddings" filter of Figure 7).
        """
        self.queries += 1
        query_array = np.asarray(query, dtype=float).reshape(-1)
        if query_array.shape[0] != self.dimension:
            raise StoreError(
                f"query has dimension {query_array.shape[0]}, expected {self.dimension}"
            )
        if not self._keys:
            return []
        scores = self._matrix @ query_array
        if self.metric == "cosine":
            norms = np.linalg.norm(self._matrix, axis=1) * (np.linalg.norm(query_array) + 1e-12)
            scores = scores / np.maximum(norms, 1e-12)
        excluded = set(exclude)
        hits = []
        for index in np.argsort(-scores):
            key = self._keys[int(index)]
            if key in excluded:
                continue
            attributes = self._attributes.get(key, {})
            if attribute_filter and any(
                attributes.get(name) != value for name, value in attribute_filter.items()
            ):
                continue
            hits.append(VectorHit(key=key, score=float(scores[int(index)]), attributes=attributes))
            if len(hits) >= k:
                break
        return hits

    def filtered_view(self, attribute_filter: dict) -> "VectorDB":
        """Materialize a new VectorDB holding only matching vectors."""
        view = VectorDB(self.dimension, self.metric)
        for key in self._keys:
            attributes = self._attributes.get(key, {})
            if all(attributes.get(name) == value for name, value in attribute_filter.items()):
                view.upsert(key, self.get(key), attributes)
        return view

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: object) -> bool:
        return key in self._index_of
