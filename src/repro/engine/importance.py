"""Entity importance from graph structure (Section 3.3).

Popularity signals (song plays, search frequency) cover head entities only, so
Saga scores *every* entity from four structural signals: in-degree, out-degree,
number of identities (how many sources contribute facts about the entity), and
PageRank over the entity graph.  The four metrics are normalized and
aggregated into a single importance score, and the computation is registered
as a maintained view over the KG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import networkx as nx

from repro.model.identifiers import is_kg_identifier
from repro.model.triples import TripleStore


@dataclass
class ImportanceScore:
    """Structural importance metrics and the aggregate score for one entity."""

    entity_id: str
    in_degree: int = 0
    out_degree: int = 0
    identity_count: int = 0
    pagerank: float = 0.0
    score: float = 0.0


@dataclass
class ImportanceConfig:
    """Aggregation weights and PageRank parameters."""

    weight_in_degree: float = 0.25
    weight_out_degree: float = 0.15
    weight_identities: float = 0.25
    weight_pagerank: float = 0.35
    pagerank_damping: float = 0.85
    pagerank_iterations: int = 50


class EntityImportance:
    """Compute structural entity-importance scores over the KG."""

    def __init__(self, config: ImportanceConfig | None = None) -> None:
        self.config = config or ImportanceConfig()

    def entity_graph(self, store: TripleStore) -> nx.DiGraph:
        """Directed entity graph: an edge per entity-to-entity reference."""
        graph = nx.DiGraph()
        for subject in store.subjects():
            graph.add_node(subject)
        for triple in store:
            obj = triple.obj
            if isinstance(obj, str) and obj != triple.subject and (
                is_kg_identifier(obj) or obj in graph
            ):
                graph.add_edge(triple.subject, obj)
        return graph

    def compute(self, store: TripleStore) -> dict[str, ImportanceScore]:
        """Return importance scores for every entity in *store*."""
        graph = self.entity_graph(store)
        if graph.number_of_nodes() == 0:
            return {}
        pagerank = nx.pagerank(
            graph,
            alpha=self.config.pagerank_damping,
            max_iter=self.config.pagerank_iterations,
        )
        identity_counts = self._identity_counts(store)
        scores: dict[str, ImportanceScore] = {}
        for node in graph.nodes:
            scores[node] = ImportanceScore(
                entity_id=node,
                in_degree=graph.in_degree(node),
                out_degree=graph.out_degree(node),
                identity_count=identity_counts.get(node, 0),
                pagerank=pagerank.get(node, 0.0),
            )
        self._aggregate(scores)
        return scores

    def top_entities(self, store: TripleStore, k: int = 10) -> list[ImportanceScore]:
        """The *k* most important entities."""
        scores = self.compute(store)
        ranked = sorted(scores.values(), key=lambda s: (-s.score, s.entity_id))
        return ranked[:k]

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def _identity_counts(self, store: TripleStore) -> dict[str, int]:
        """Number of sources contributing facts for each entity."""
        sources_by_entity: dict[str, set[str]] = {}
        for triple in store:
            bucket = sources_by_entity.setdefault(triple.subject, set())
            bucket.update(triple.provenance.sources)
        return {entity: len(sources) for entity, sources in sources_by_entity.items()}

    def _aggregate(self, scores: dict[str, ImportanceScore]) -> None:
        """Normalize each metric to [0, 1] and blend with the configured weights."""
        if not scores:
            return
        max_in = max((s.in_degree for s in scores.values()), default=0) or 1
        max_out = max((s.out_degree for s in scores.values()), default=0) or 1
        max_identity = max((s.identity_count for s in scores.values()), default=0) or 1
        max_pagerank = max((s.pagerank for s in scores.values()), default=0.0) or 1.0
        config = self.config
        for score in scores.values():
            score.score = (
                config.weight_in_degree * score.in_degree / max_in
                + config.weight_out_degree * score.out_degree / max_out
                + config.weight_identities * score.identity_count / max_identity
                + config.weight_pagerank * score.pagerank / max_pagerank
            )


def importance_view_rows(scores: Iterable[ImportanceScore]) -> list[dict]:
    """Render importance scores as relational rows (the registered view output)."""
    return [
        {
            "subject": score.entity_id,
            "in_degree": score.in_degree,
            "out_degree": score.out_degree,
            "identity_count": score.identity_count,
            "pagerank": score.pagerank,
            "importance": score.score,
        }
        for score in sorted(scores, key=lambda s: (-s.score, s.entity_id))
    ]
