"""The analytics warehouse: a read-optimized relational store over the KG.

Section 3.1.1: the analytics engine is a relational data warehouse storing the
KG extended triples; it powers analytics jobs and generates subgraph and
schematized entity views for upstream tasks.  Its optimized join processing is
what Figure 8 compares against a legacy Spark-based implementation.

This module provides:

* :class:`Relation` — a small in-memory relational table with filter, project,
  hash-join, and group-by operators;
* :class:`AnalyticsStore` — an ingest-able triple warehouse with per-predicate
  indexes, relation extraction, and schematized entity-view computation built
  on hash joins (the optimized path measured in the FIG8 benchmark).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import StoreError
from repro.model.entity import NAME_PREDICATES
from repro.model.triples import ExtendedTriple

Row = dict


@dataclass
class Relation:
    """A named, in-memory relational table."""

    name: str
    rows: list[Row] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    @classmethod
    def from_columns(cls, name: str, columns: dict[str, list]) -> "Relation":
        """Build a relation from parallel column lists (batch construction).

        The batch idiom of the columnar store applied to the warehouse: join
        build sides assemble from whole columns in one zip instead of one
        dict append per source row.  All columns must have equal length.
        """
        if not columns:
            return cls(name, [])
        names = list(columns)
        lengths = {column: len(columns[column]) for column in names}
        if len(set(lengths.values())) > 1:
            raise StoreError(
                f"relation {name!r} needs equal-length columns; got "
                + ", ".join(f"{column}={length}" for column, length in lengths.items())
            )
        rows = [
            dict(zip(names, values))
            for values in zip(*(columns[column] for column in names))
        ]
        return cls(name, rows)

    def columns(self) -> list[str]:
        """Union of column names across rows."""
        seen: set[str] = set()
        for row in self.rows:
            seen.update(row)
        return sorted(seen)

    # -------------------------------------------------------------- #
    # operators
    # -------------------------------------------------------------- #
    def filter(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Rows satisfying *predicate*."""
        return Relation(self.name, [row for row in self.rows if predicate(row)])

    def project(self, columns: Sequence[str]) -> "Relation":
        """Keep only *columns* (missing values become ``None``)."""
        return Relation(
            self.name,
            [{column: row.get(column) for column in columns} for row in self.rows],
        )

    def rename(self, mapping: dict[str, str]) -> "Relation":
        """Rename columns according to *mapping*."""
        renamed = []
        for row in self.rows:
            renamed.append({mapping.get(key, key): value for key, value in row.items()})
        return Relation(self.name, renamed)

    def hash_join(
        self,
        other: "Relation",
        left_key: str,
        right_key: str,
        how: str = "inner",
    ) -> "Relation":
        """Hash join with *other* on ``left_key == right_key``.

        ``how`` is ``"inner"`` or ``"left"``.  The smaller relation is always
        used to build the hash table, which is the textbook optimization the
        legacy row-at-a-time implementation lacks.

        Every row must carry its side's join key (a ``None`` *value* is a
        legal key and joins other ``None`` keys); a row missing the key
        column outright raises :class:`~repro.errors.StoreError` naming the
        relation, the row index, and the column — silently joining absent
        keys as ``None`` hid schema mistakes.
        """
        if how not in ("inner", "left"):
            raise StoreError(f"unsupported join type {how!r}")
        self._require_key(left_key)
        other._require_key(right_key)
        build_right = len(other.rows) <= len(self.rows) or how == "left"
        if build_right:
            table: dict[object, list[Row]] = defaultdict(list)
            for row in other.rows:
                table[row[right_key]].append(row)
            joined = []
            for row in self.rows:
                matches = table.get(row[left_key], [])
                if matches:
                    for match in matches:
                        joined.append({**match, **row})
                elif how == "left":
                    joined.append(dict(row))
            return Relation(f"{self.name}⋈{other.name}", joined)
        # Build on the left side instead, then probe with the right rows.
        table = defaultdict(list)
        for row in self.rows:
            table[row[left_key]].append(row)
        joined = []
        for row in other.rows:
            for match in table.get(row[right_key], []):
                joined.append({**row, **match})
        return Relation(f"{self.name}⋈{other.name}", joined)

    def _require_key(self, key: str) -> None:
        for index, row in enumerate(self.rows):
            if key not in row:
                raise StoreError(
                    f"relation {self.name!r} row {index} is missing join key "
                    f"{key!r}; every row of a join side must carry the key column"
                )

    def group_by(
        self,
        keys: Sequence[str],
        aggregations: dict[str, Callable[[list[Row]], object]],
    ) -> "Relation":
        """Group rows by *keys* and apply named aggregation callables."""
        groups: dict[tuple, list[Row]] = defaultdict(list)
        for row in self.rows:
            groups[tuple(row.get(key) for key in keys)].append(row)
        result = []
        for group_key, group_rows in groups.items():
            out = dict(zip(keys, group_key))
            for name, aggregate in aggregations.items():
                out[name] = aggregate(group_rows)
            result.append(out)
        return Relation(f"{self.name}_grouped", result)

    def distinct(self) -> "Relation":
        """Remove duplicate rows."""
        seen = set()
        unique = []
        for row in self.rows:
            key = tuple(sorted((k, repr(v)) for k, v in row.items()))
            if key not in seen:
                seen.add(key)
                unique.append(row)
        return Relation(self.name, unique)

    def to_rows(self) -> list[Row]:
        """Copy of the underlying rows."""
        return [dict(row) for row in self.rows]


class JoinAccessPattern:
    """Hash access patterns over one join input (IVM building block).

    The indexed access patterns of the delta-query factorization (PAPERS.md,
    *Conjunctive Queries with Free Access Patterns under Updates*): a join
    input is materialized twice — ``subject → rows`` for replaying one
    entity's contribution, and ``join-key → subjects`` for probing which
    partners a delta on the *other* side touches.  Both stay consistent under
    :meth:`replace_subject_rows`, so maintenance cost is O(|delta| · lookup)
    instead of O(|input|).

    Rows must be dicts carrying ``subject`` and the *key* column; validation
    mirrors :meth:`Relation.hash_join` — a missing key column is a schema
    mistake, not an empty join.
    """

    def __init__(self, name: str, key: str) -> None:
        if not name:
            raise StoreError("join access pattern needs a non-empty name")
        if not key:
            raise StoreError(f"join input {name!r} needs a non-empty join key")
        self.name = name
        self.key = key
        self._rows_by_subject: dict[str, list[Row]] = {}
        self._subjects_by_key: dict[object, set[str]] = defaultdict(set)
        self.lookups = 0

    def rebuild(self, rows: Iterable[Row]) -> int:
        """Batch-(re)build both indexes from scratch; returns the row count.

        Columnar construction: rows are validated once and grouped per
        subject in one pass, the same batch idiom
        :meth:`Relation.from_columns` applies to join build sides.
        """
        self._rows_by_subject.clear()
        self._subjects_by_key.clear()
        count = 0
        for row in rows:
            self._insert(row)
            count += 1
        return count

    def replace_subject_rows(
        self, subject: str, rows: Sequence[Row]
    ) -> tuple[set[object], set[object]]:
        """Replace one subject's rows; returns ``(old_keys, new_keys)``.

        The returned key-value sets are exactly what the delta rule probes on
        the partner side: a partner row is affected iff it joins one of these
        values.  An empty *rows* removes the subject from the input.
        Validation happens before any mutation, so a rejected replacement
        leaves the indexes untouched.
        """
        for row in rows:
            if str(row.get("subject", subject)) != subject:
                raise StoreError(
                    f"join input {self.name!r}: row for subject {subject!r} "
                    f"names a different subject {row.get('subject')!r}"
                )
        old_keys = self._remove_subject(subject)
        new_keys: set[object] = set()
        for row in rows:
            self._insert(row)
            new_keys.add(row[self.key])
        return old_keys, new_keys

    def contains(self, subject: str) -> bool:
        """Whether *subject* currently contributes rows to this input."""
        return subject in self._rows_by_subject

    def rows_of(self, subject: str) -> list[Row]:
        """The subject's current rows (empty when it is not a member)."""
        self.lookups += 1
        return self._rows_by_subject.get(subject, [])

    def subjects_for_keys(self, keys: Iterable[object]) -> set[str]:
        """Partners of the given join-key values — the delta-rule probe."""
        affected: set[str] = set()
        for value in keys:
            self.lookups += 1
            affected |= self._subjects_by_key.get(value, set())
        return affected

    def subjects(self) -> list[str]:
        """Every member subject, sorted (deterministic full-join order)."""
        return sorted(self._rows_by_subject)

    def __len__(self) -> int:
        return len(self._rows_by_subject)

    def _insert(self, row: Row) -> None:
        if not isinstance(row, dict) or "subject" not in row:
            raise StoreError(
                f"join input {self.name!r} rows need a 'subject' key"
            )
        if self.key not in row:
            raise StoreError(
                f"join input {self.name!r} row for subject "
                f"{row['subject']!r} is missing join key {self.key!r}"
            )
        subject = str(row["subject"])
        self._rows_by_subject.setdefault(subject, []).append(dict(row))
        self._subjects_by_key[row[self.key]].add(subject)

    def _remove_subject(self, subject: str) -> set[object]:
        old_rows = self._rows_by_subject.pop(subject, [])
        old_keys = {row[self.key] for row in old_rows}
        for value in old_keys:
            partners = self._subjects_by_key.get(value)
            if partners is not None:
                partners.discard(subject)
                if not partners:
                    del self._subjects_by_key[value]
        return old_keys


@dataclass
class EntityViewSpec:
    """Specification of a schematized entity-centric view (Figure 8 workload).

    ``predicates`` become literal columns; ``reference_joins`` maps a column
    name to a reference predicate whose target entity's display name should be
    joined in (one hash join per entry); ``nested_joins`` maps a column name
    to a two-hop path ``(first_predicate, second_predicate)``.
    """

    name: str
    entity_type: str
    predicates: tuple[str, ...] = ()
    reference_joins: dict[str, str] = field(default_factory=dict)
    nested_joins: dict[str, tuple[str, str]] = field(default_factory=dict)


class AnalyticsStore:
    """Read-optimized warehouse of extended triples with hash-join views."""

    def __init__(self) -> None:
        self._triples: list[ExtendedTriple] = []
        # predicate -> subject -> [objects]
        self._by_predicate: dict[str, dict[str, list[object]]] = defaultdict(
            lambda: defaultdict(list)
        )
        self._types: dict[str, list[str]] = defaultdict(list)
        self._subjects_by_type: dict[str, set[str]] = defaultdict(set)
        self._names: dict[str, str] = {}
        self.rows_scanned = 0
        self.joins_executed = 0

    # -------------------------------------------------------------- #
    # ingest
    # -------------------------------------------------------------- #
    def ingest(self, triples: Iterable[ExtendedTriple]) -> int:
        """Batch-ingest triples (updates to the engine are batched, §3.1.1)."""
        count = 0
        for triple in triples:
            self._triples.append(triple)
            predicate = triple.relationship_predicate or triple.predicate
            self._by_predicate[predicate][triple.subject].append(triple.obj)
            if triple.predicate == "type" and not triple.is_composite:
                type_name = str(triple.obj)
                self._types[triple.subject].append(type_name)
                self._subjects_by_type[type_name].add(triple.subject)
            if triple.predicate in NAME_PREDICATES and triple.subject not in self._names:
                self._names[triple.subject] = str(triple.obj)
            count += 1
        return count

    def remove_subjects(self, subjects: Iterable[str]) -> int:
        """Drop every triple about the given subjects (delta maintenance)."""
        doomed = set(subjects)
        if not doomed:
            return 0
        before = len(self._triples)
        self._triples = [t for t in self._triples if t.subject not in doomed]
        for predicate_index in self._by_predicate.values():
            for subject in doomed:
                predicate_index.pop(subject, None)
        for subject in doomed:
            for type_name in self._types.pop(subject, []):
                self._subjects_by_type[type_name].discard(subject)
            self._names.pop(subject, None)
        return before - len(self._triples)

    def refresh_subjects(
        self, subjects: Iterable[str], triples: Iterable[ExtendedTriple]
    ) -> int:
        """Replace the stored triples of *subjects* with *triples* (incremental update)."""
        self.remove_subjects(subjects)
        return self.ingest(triples)

    # -------------------------------------------------------------- #
    # relational access
    # -------------------------------------------------------------- #
    def triple_count(self) -> int:
        """Number of stored triple rows."""
        return len(self._triples)

    def subjects_of_type(self, entity_type: str) -> list[str]:
        """Subjects having the given type."""
        return sorted(self._subjects_by_type.get(entity_type, set()))

    def entity_types(self) -> list[str]:
        """All entity types present in the warehouse."""
        return sorted(self._subjects_by_type)

    def display_name(self, subject: str) -> str:
        """First recorded name of a subject (falls back to the identifier)."""
        return self._names.get(subject, subject)

    def predicate_relation(self, predicate: str) -> Relation:
        """Relation ``(subject, object)`` for one predicate, from the index."""
        index = self._by_predicate.get(predicate, {})
        rows = []
        for subject, objects in index.items():
            for obj in objects:
                rows.append({"subject": subject, "object": obj})
        self.rows_scanned += len(rows)
        return Relation(predicate, rows)

    def predicate_columns(self, predicate: str) -> tuple[list[str], list[object]]:
        """Parallel ``(subjects, objects)`` columns of one predicate.

        Column form of :meth:`predicate_relation` — same pairs, same index
        order, same ``rows_scanned`` accounting — feeding
        :meth:`Relation.from_columns` join build sides without materializing
        a dict per pair first.
        """
        index = self._by_predicate.get(predicate, {})
        subjects: list[str] = []
        objects: list[object] = []
        for subject, values in index.items():
            subjects.extend([subject] * len(values))
            objects.extend(values)
        self.rows_scanned += len(subjects)
        return subjects, objects

    def entity_rows(
        self,
        entity_type: str,
        predicates: Sequence[str],
        subjects: Iterable[str] | None = None,
    ) -> list[Row]:
        """One collapsed row per subject of *entity_type* — a join-input loader.

        Each row carries ``subject`` plus one column per predicate (collapsed
        to a scalar when single-valued, like :meth:`grouped_predicate_relation`;
        absent predicates stay absent).  With *subjects* given, only the named
        subjects are loaded **and only those still of the type are returned**
        — exactly the contract :class:`~repro.engine.views.JoinInput` loaders
        follow, so an entity that migrated away from the type reads as "no
        longer a member".
        """
        members = self._subjects_by_type.get(entity_type, set())
        if subjects is None:
            pool = sorted(members)
        else:
            pool = sorted(set(str(subject) for subject in subjects) & members)
        rows: list[Row] = []
        scanned = 0
        for subject in pool:
            row: Row = {"subject": subject}
            for predicate in predicates:
                values = self._by_predicate.get(predicate, {}).get(subject)
                if values:
                    scanned += len(values)
                    row[predicate] = _collapse(list(values))
            rows.append(row)
        self.rows_scanned += scanned + len(pool)
        return rows

    def grouped_predicate_relation(self, predicate: str, column_name: str) -> Relation:
        """Per-subject collapsed relation of one predicate, from the index.

        Produces exactly ``predicate_relation(predicate).group_by(["subject"],
        {column_name: collapse})`` — the per-predicate index is already
        grouped by subject, so the pair rows and the regroup are skipped
        entirely.  ``rows_scanned`` still counts the underlying pairs.
        """
        index = self._by_predicate.get(predicate, {})
        rows = []
        scanned = 0
        for subject, values in index.items():
            scanned += len(values)
            rows.append({"subject": subject, column_name: _collapse(values)})
        self.rows_scanned += scanned
        return Relation(f"{predicate}_grouped", rows)

    def name_relation(self) -> Relation:
        """Relation ``(subject, display_name)`` for every named subject."""
        rows = [
            {"subject": subject, "display_name": name}
            for subject, name in self._names.items()
        ]
        self.rows_scanned += len(rows)
        return Relation("names", rows)

    def full_relation(self) -> Relation:
        """The raw extended-triples relation (used by ad-hoc analytics)."""
        rows = [triple.to_row() for triple in self._triples]
        self.rows_scanned += len(rows)
        return Relation("triples", rows)

    # -------------------------------------------------------------- #
    # schematized entity views (optimized, hash-join based)
    # -------------------------------------------------------------- #
    def entity_view(self, spec: EntityViewSpec) -> Relation:
        """Compute a schematized entity-centric view using hash joins.

        Join build sides assemble from whole index columns
        (:meth:`predicate_columns` into :meth:`Relation.from_columns`) and
        literal predicate columns come pre-grouped from the index
        (:meth:`grouped_predicate_relation`) — the row output, join plan, and
        ``rows_scanned`` / ``joins_executed`` accounting are identical to the
        row-at-a-time build, pair-row materialization is not.
        """
        subjects = self.subjects_of_type(spec.entity_type)
        base = Relation.from_columns(spec.name, {"subject": subjects})
        self.rows_scanned += len(subjects)

        for predicate in spec.predicates:
            column = self.grouped_predicate_relation(predicate, predicate)
            base = base.hash_join(column, "subject", "subject", how="left")
            self.joins_executed += 1

        name_subjects = list(self._names)
        name_values = list(self._names.values())
        self.rows_scanned += len(name_subjects)
        name_relation = Relation.from_columns(
            "names", {"_ref": name_subjects, "_name": name_values}
        )
        for column_name, reference_predicate in spec.reference_joins.items():
            ref_subjects, ref_objects = self.predicate_columns(reference_predicate)
            reference = Relation.from_columns(
                reference_predicate, {"subject": ref_subjects, "_ref": ref_objects}
            )
            resolved = reference.hash_join(name_relation, "_ref", "_ref", how="left")
            self.joins_executed += 2
            collapsed = resolved.group_by(
                ["subject"],
                {column_name: lambda rows: _collapse(
                    [r.get("_name") or r.get("_ref") for r in rows]
                )},
            )
            base = base.hash_join(collapsed, "subject", "subject", how="left")
            self.joins_executed += 1

        for column_name, (first, second) in spec.nested_joins.items():
            first_subjects, first_objects = self.predicate_columns(first)
            first_hop = Relation.from_columns(
                first, {"subject": first_subjects, "_mid": first_objects}
            )
            second_subjects, second_objects = self.predicate_columns(second)
            second_hop = Relation.from_columns(
                second, {"_mid": second_subjects, "_far": second_objects}
            )
            two_hop = first_hop.hash_join(second_hop, "_mid", "_mid")
            self.joins_executed += 2
            far_named = two_hop.rename({"_far": "_ref"}).hash_join(
                name_relation, "_ref", "_ref", how="left"
            )
            self.joins_executed += 1
            collapsed = far_named.group_by(
                ["subject"],
                {column_name: lambda rows: _collapse(
                    [r.get("_name") or r.get("_ref") for r in rows]
                )},
            )
            base = base.hash_join(collapsed, "subject", "subject", how="left")
            self.joins_executed += 1

        return Relation(spec.name, base.to_rows())


def _collapse(values: list[object]) -> object:
    """Collapse a value list to a scalar when it has a single element."""
    cleaned = [value for value in values if value is not None]
    if not cleaned:
        return None
    if len(cleaned) == 1:
        return cleaned[0]
    return cleaned
