"""Metadata store: replay watermarks and freshness queries (Section 3.1).

Every orchestration agent records the LSN of the latest operation it has
successfully replayed.  Consumers use these watermarks to determine whether a
store serves at least some minimum version of the KG before routing a query
to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MetadataStore:
    """Track per-store replay progress and arbitrary platform metadata."""

    watermarks: dict[str, int] = field(default_factory=dict)
    annotations: dict[str, dict] = field(default_factory=dict)

    # -------------------------------------------------------------- #
    # watermarks
    # -------------------------------------------------------------- #
    def update_watermark(self, store_name: str, lsn: int) -> None:
        """Record that *store_name* has replayed operations up to *lsn*."""
        current = self.watermarks.get(store_name, 0)
        if lsn > current:
            self.watermarks[store_name] = lsn

    def watermark(self, store_name: str) -> int:
        """Return the replay watermark of *store_name* (0 when unknown)."""
        return self.watermarks.get(store_name, 0)

    def minimum_watermark(self) -> int:
        """The KG version every registered store has reached."""
        if not self.watermarks:
            return 0
        return min(self.watermarks.values())

    def is_fresh(self, store_name: str, required_lsn: int) -> bool:
        """Whether *store_name* serves at least KG version *required_lsn*."""
        return self.watermark(store_name) >= required_lsn

    def lagging_stores(self, head_lsn: int) -> dict[str, int]:
        """Stores behind *head_lsn* and how far behind they are."""
        return {
            name: head_lsn - lsn
            for name, lsn in self.watermarks.items()
            if lsn < head_lsn
        }

    # -------------------------------------------------------------- #
    # annotations
    # -------------------------------------------------------------- #
    def annotate(self, key: str, **values: object) -> None:
        """Attach free-form platform metadata under *key*."""
        self.annotations.setdefault(key, {}).update(values)

    def annotation(self, key: str) -> dict:
        """Return the metadata stored under *key* (empty dict when absent)."""
        return dict(self.annotations.get(key, {}))
