"""Metadata store: replay watermarks and freshness queries (Section 3.1).

Every orchestration agent records the LSN of the latest operation it has
successfully replayed.  Consumers use these watermarks to determine whether a
store serves at least some minimum version of the KG before routing a query
to it.

Materialized views carry watermarks too — the log position their artifact
reflects — but in a separate namespace: view freshness must not drag down
:meth:`MetadataStore.minimum_watermark`, which answers "what KG version does
every *store* serve" regardless of which views happen to be materialized.

A third namespace mirrors per-view **delta-journal high-water marks**: the
highest log position a view's delta journal has recorded applied entity
deltas up to.  Consumers watching the marks can tell whether a view has been
absorbing journaled deltas (the mark tracks the view watermark) or has been
rebuilt from scratch / left untouched by recent flushes.

A fourth namespace tracks **replica applied-LSN watermarks**: the log
position each serving replica has applied shipped view deltas up to.  The
read router uses these to answer bounded-staleness and read-your-writes
reads; like view marks, replica marks must not drag down
:meth:`MetadataStore.minimum_watermark`.

A fifth namespace mirrors per-view **row-checksum digests**: a content
digest of the view's artifact rows stamped with the LSN it was computed at.
Anti-entropy audits record the digest they verified against so divergence
checks are observable with the same machinery as freshness.

A sixth namespace holds **serving metrics**: the latest snapshot a serving
component (the multi-tenant front door, per component name) mirrored of its
request counters, latency percentiles, and saturation gauges.  Snapshots are
free-form dicts — the metrics layer owns their shape — replaced wholesale on
every mirror so the store always answers with the freshest picture.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class WatermarkMap(dict):
    """Monotonic name → LSN map; the one freshness primitive every layer shares.

    Store replay progress, view build positions, and live-index feed versions
    all track "this consumer reflects the log up to LSN n" — same advance-if-
    greater, default-zero, lag-versus-head semantics.
    """

    def advance(self, name: str, lsn: int) -> None:
        """Record that *name* reached *lsn*; watermarks never move backwards."""
        if lsn > self.get(name, 0):
            self[name] = lsn

    def of(self, name: str) -> int:
        """The LSN *name* has reached (0 when unknown)."""
        return self.get(name, 0)

    def lagging(self, head_lsn: int) -> dict[str, int]:
        """Entries behind *head_lsn* and how many log positions behind."""
        return {
            name: head_lsn - lsn for name, lsn in self.items() if lsn < head_lsn
        }


@dataclass
class MetadataStore:
    """Track per-store replay progress and arbitrary platform metadata."""

    watermarks: WatermarkMap = field(default_factory=WatermarkMap)
    view_marks: WatermarkMap = field(default_factory=WatermarkMap)
    journal_marks: WatermarkMap = field(default_factory=WatermarkMap)
    replica_marks: WatermarkMap = field(default_factory=WatermarkMap)
    checksum_marks: dict[str, tuple[int, str]] = field(default_factory=dict)
    serving_marks: dict[str, dict] = field(default_factory=dict)
    annotations: dict[str, dict] = field(default_factory=dict)

    # -------------------------------------------------------------- #
    # watermarks
    # -------------------------------------------------------------- #
    def update_watermark(self, store_name: str, lsn: int) -> None:
        """Record that *store_name* has replayed operations up to *lsn*."""
        self.watermarks.advance(store_name, lsn)

    def watermark(self, store_name: str) -> int:
        """Return the replay watermark of *store_name* (0 when unknown)."""
        return self.watermarks.of(store_name)

    def minimum_watermark(self) -> int:
        """The KG version every registered store has reached."""
        if not self.watermarks:
            return 0
        return min(self.watermarks.values())

    def is_fresh(self, store_name: str, required_lsn: int) -> bool:
        """Whether *store_name* serves at least KG version *required_lsn*."""
        return self.watermark(store_name) >= required_lsn

    def lagging_stores(self, head_lsn: int) -> dict[str, int]:
        """Stores behind *head_lsn* and how far behind they are."""
        return self.watermarks.lagging(head_lsn)

    # -------------------------------------------------------------- #
    # view watermarks
    # -------------------------------------------------------------- #
    def update_view_watermark(self, view_name: str, lsn: int) -> None:
        """Record that view *view_name* reflects the log up to *lsn*."""
        self.view_marks.advance(view_name, lsn)

    def view_watermark(self, view_name: str) -> int:
        """The log position *view_name*'s artifact reflects (0 when unknown)."""
        return self.view_marks.of(view_name)

    def clear_view_watermark(self, view_name: str) -> None:
        """Forget a view's watermark (the view was dropped or redefined)."""
        self.view_marks.pop(view_name, None)

    def lagging_view_watermarks(self, head_lsn: int) -> dict[str, int]:
        """Views behind *head_lsn* and how many log positions behind they are."""
        return self.view_marks.lagging(head_lsn)

    # -------------------------------------------------------------- #
    # view delta-journal high-water marks
    # -------------------------------------------------------------- #
    def update_view_journal_mark(self, view_name: str, lsn: int) -> None:
        """Record that *view_name*'s delta journal covers the log up to *lsn*."""
        self.journal_marks.advance(view_name, lsn)

    def view_journal_mark(self, view_name: str) -> int:
        """The journal high-water mark of *view_name* (0 when unknown)."""
        return self.journal_marks.of(view_name)

    def clear_view_journal_mark(self, view_name: str) -> None:
        """Forget a view's journal mark (the view was dropped or redefined)."""
        self.journal_marks.pop(view_name, None)

    # -------------------------------------------------------------- #
    # replica applied-LSN watermarks
    # -------------------------------------------------------------- #
    def update_replica_watermark(self, replica_name: str, lsn: int) -> None:
        """Record that *replica_name* has applied shipped deltas up to *lsn*."""
        self.replica_marks.advance(replica_name, lsn)

    def replica_watermark(self, replica_name: str) -> int:
        """The applied-LSN watermark of *replica_name* (0 when unknown)."""
        return self.replica_marks.of(replica_name)

    def clear_replica_watermark(self, replica_name: str) -> None:
        """Forget a replica's watermarks (the replica left the fleet).

        Clears both the bare name and every ``{replica}/{view}`` composite
        entry the serving fleet writes, so a retired replica's per-view
        marks stop polluting :meth:`lagging_replicas`.
        """
        self.replica_marks.pop(replica_name, None)
        prefix = f"{replica_name}/"
        for key in [k for k in self.replica_marks if k.startswith(prefix)]:
            self.replica_marks.pop(key, None)

    def lagging_replicas(self, head_lsn: int) -> dict[str, int]:
        """Replicas behind *head_lsn* and how many log positions behind."""
        return self.replica_marks.lagging(head_lsn)

    # -------------------------------------------------------------- #
    # view row-checksum digests
    # -------------------------------------------------------------- #
    def update_view_checksum(self, view_name: str, lsn: int, digest: str) -> None:
        """Record the row-checksum *digest* of *view_name* computed at *lsn*.

        Unlike watermarks a digest is not monotonic — a newer computation
        (higher LSN) always replaces the recorded one; an older one is
        dropped so a slow audit cannot overwrite a fresher digest.
        """
        recorded = self.checksum_marks.get(view_name)
        if recorded is None or lsn >= recorded[0]:
            self.checksum_marks[view_name] = (lsn, digest)

    def view_checksum(self, view_name: str) -> tuple[int, str] | None:
        """The ``(lsn, digest)`` last recorded for *view_name* (None if never)."""
        return self.checksum_marks.get(view_name)

    def clear_view_checksum(self, view_name: str) -> None:
        """Forget a view's checksum digest (the view was dropped or redefined)."""
        self.checksum_marks.pop(view_name, None)

    # -------------------------------------------------------------- #
    # serving metrics snapshots
    # -------------------------------------------------------------- #
    def update_serving_metrics(self, component: str, snapshot: dict) -> None:
        """Replace the mirrored metrics snapshot of serving *component*.

        Unlike watermarks a snapshot is not monotonic — counters only grow,
        but gauges (queue depth, in-flight) move both ways — so the latest
        mirror always wins wholesale.
        """
        self.serving_marks[component] = dict(snapshot)

    def serving_metrics(self, component: str) -> dict:
        """The last metrics snapshot *component* mirrored (empty when never)."""
        return dict(self.serving_marks.get(component, {}))

    def clear_serving_metrics(self, component: str) -> None:
        """Forget a component's metrics snapshot (the component shut down)."""
        self.serving_marks.pop(component, None)

    # -------------------------------------------------------------- #
    # annotations
    # -------------------------------------------------------------- #
    def annotate(self, key: str, **values: object) -> None:
        """Attach free-form platform metadata under *key*."""
        self.annotations.setdefault(key, {}).update(values)

    def annotation(self, key: str) -> dict:
        """Return the metadata stored under *key* (empty dict when absent)."""
        return dict(self.annotations.get(key, {}))
