"""High-throughput staging object store for ingest payloads (Section 3.1).

Construction stages data payloads in an object store and writes a reference
to them into the operation log; orchestration agents later fetch the payload
by key when replaying the operation.  The in-process implementation stores
opaque Python payloads keyed by string and tracks simple usage statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StoreError
from repro.model.identifiers import content_hash


@dataclass
class ObjectStore:
    """Key-value staging area for ingest payloads."""

    _objects: dict[str, object] = field(default_factory=dict)
    puts: int = 0
    gets: int = 0

    def put(self, payload: object, key: str | None = None) -> str:
        """Stage *payload*; return its key (content-derived when not given)."""
        if key is None:
            key = f"payload/{content_hash(repr(type(payload)), str(self.puts))}"
        self._objects[key] = payload
        self.puts += 1
        return key

    def get(self, key: str) -> object:
        """Fetch a staged payload by key."""
        self.gets += 1
        try:
            return self._objects[key]
        except KeyError:
            raise StoreError(f"no staged payload under key {key!r}") from None

    def delete(self, key: str) -> bool:
        """Delete a staged payload; returns ``True`` when it existed."""
        return self._objects.pop(key, None) is not None

    def keys(self) -> list[str]:
        """All staged payload keys."""
        return sorted(self._objects)

    def __contains__(self, key: object) -> bool:
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)
