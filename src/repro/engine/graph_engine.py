"""The Knowledge Graph Query Engine facade (Section 3, Figure 6).

The Graph Engine is the primary store for the KG, computes knowledge views
over the graph, and exposes query APIs to consumers.  It follows a federated
polystore design: specialized stores (analytics warehouse, entity KV index,
full-text index, vector DB) are kept consistent by replaying a shared,
durable operation log through per-store orchestration agents; log sequence
numbers give consumers a freshness guarantee per store.

The KG construction pipeline is the *sole producer*: it publishes ingest
operations via :meth:`GraphEngine.publish_subjects` (payloads staged in the
object store, operations appended to the log) and the engine replays them into
every registered store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.engine.agents import (
    AgentCoordinator,
    OrchestrationAgent,
    ProgressDelta,
    ReplayReport,
)
from repro.engine.analytics import AnalyticsStore, EntityViewSpec, Relation
from repro.engine.entity_store import EntityDocument, EntityStore
from repro.engine.importance import EntityImportance, ImportanceScore, importance_view_rows
from repro.engine.log import LogRecord, OperationLog
from repro.engine.metadata import MetadataStore
from repro.engine.object_store import ObjectStore
from repro.engine.text_index import InvertedTextIndex, SearchHit, TextDocument
from repro.engine.vector_db import VectorDB, VectorHit
from repro.engine.views import ViewCatalog, ViewContext, ViewDefinition, ViewManager
from repro.errors import EngineError
from repro.model.entity import KGEntity
from repro.model.ontology import Ontology
from repro.model.triples import ExtendedTriple, TripleStore

#: Replay order: the primary store must apply an operation before the derived
#: stores read from it.
AGENT_ORDER = ("primary", "analytics", "entity_store", "text_index")


class PrimaryStoreAgent(OrchestrationAgent):
    """Maintains the engine's primary extended-triples store."""

    def __init__(self, store: TripleStore) -> None:
        super().__init__("primary")
        self.store = store

    def apply(self, record: LogRecord, payload: object) -> None:
        if record.operation == "ingest_delta" and isinstance(payload, dict):
            self.store.remove_subjects_batch(payload.get("deleted", []))
            self.store.remove_subjects_batch(payload.get("subjects", []))
            self.store.add_rows(payload.get("triples", []))
        elif record.operation == "remove_source":
            self.store.remove_source(record.source_id)


class AnalyticsAgent(OrchestrationAgent):
    """Maintains the analytics warehouse."""

    def __init__(self, analytics: AnalyticsStore) -> None:
        super().__init__("analytics")
        self.analytics = analytics

    def apply(self, record: LogRecord, payload: object) -> None:
        if record.operation != "ingest_delta" or not isinstance(payload, dict):
            return
        self.analytics.remove_subjects(payload.get("deleted", []))
        triples = [ExtendedTriple.from_row(row) for row in payload.get("triples", [])]
        self.analytics.refresh_subjects(payload.get("subjects", []), triples)


class EntityStoreAgent(OrchestrationAgent):
    """Maintains the key-value entity index from the primary store."""

    def __init__(self, entity_store: EntityStore, primary: TripleStore) -> None:
        super().__init__("entity_store")
        self.entity_store = entity_store
        self.primary = primary

    def apply(self, record: LogRecord, payload: object) -> None:
        if record.operation != "ingest_delta" or not isinstance(payload, dict):
            return
        changed = list(payload.get("subjects", [])) + list(payload.get("deleted", []))
        self.entity_store.update_from_store(self.primary, changed)


class TextIndexAgent(OrchestrationAgent):
    """Maintains the full-text entity index from the primary store."""

    def __init__(self, text_index: InvertedTextIndex, primary: TripleStore) -> None:
        super().__init__("text_index")
        self.text_index = text_index
        self.primary = primary

    def apply(self, record: LogRecord, payload: object) -> None:
        if record.operation != "ingest_delta" or not isinstance(payload, dict):
            return
        for subject in payload.get("deleted", []):
            self.text_index.remove(subject)
        for subject in payload.get("subjects", []):
            facts = self.primary.facts_about(subject)
            if not facts:
                self.text_index.remove(subject)
                continue
            entity = KGEntity.from_triples(subject, facts)
            description = entity.value("description")
            text_parts = [*entity.names, *(str(description) if description else "").split()]
            self.text_index.index(
                TextDocument(
                    doc_id=subject,
                    text=" ".join(str(part) for part in text_parts),
                    payload={"types": entity.types, "name": entity.primary_name},
                )
            )


@dataclass
class EngineStats:
    """Operational counters of the Graph Engine."""

    operations_published: int = 0
    subjects_published: int = 0
    replay_reports: list[ReplayReport] = field(default_factory=list)


class GraphEngine:
    """Federated polystore serving the KG (primary store + derived indexes)."""

    def __init__(
        self,
        ontology: Ontology,
        log_path: str | None = None,
        embedding_dimension: int = 32,
        view_batch_size: int | None = None,
        view_max_workers: int | None = None,
    ) -> None:
        self.ontology = ontology
        self.triples = TripleStore()
        self.analytics = AnalyticsStore()
        self.entity_store = EntityStore()
        self.text_index = InvertedTextIndex()
        self.vector_db = VectorDB(dimension=embedding_dimension)
        self.log = OperationLog(log_path)
        self.object_store = ObjectStore()
        self.metadata = MetadataStore()
        self.coordinator = AgentCoordinator(self.log, self.object_store, self.metadata)
        self.coordinator.register(PrimaryStoreAgent(self.triples))
        self.coordinator.register(AnalyticsAgent(self.analytics))
        self.coordinator.register(EntityStoreAgent(self.entity_store, self.triples))
        self.coordinator.register(TextIndexAgent(self.text_index, self.triples))
        self.view_catalog = ViewCatalog()
        # Views read the replayed stores, so their builds reflect the minimum
        # store watermark — not the log head, which may be ahead of replay.
        self.view_manager = ViewManager(
            self.view_catalog,
            self._engine_map(),
            metadata=self.metadata,
            lsn_source=self.metadata.minimum_watermark,
            batch_size=view_batch_size,
            # Scope snapshots enumerate the primary store so deletions resolve
            # to the views that actually contained the entity.
            entity_source=self.triples.subjects,
            max_workers=view_max_workers,
        )
        self.coordinator.add_delta_listener(self._on_log_delta)
        self.importance = EntityImportance()
        self.stats = EngineStats()

    # -------------------------------------------------------------- #
    # ingest (producer API used by KG construction)
    # -------------------------------------------------------------- #
    def publish_subjects(
        self,
        source_store: TripleStore,
        changed_subjects: Iterable[str],
        source_id: str = "construction",
        deleted_subjects: Iterable[str] = (),
        replay: bool = True,
        added_subjects: Iterable[str] | None = None,
    ) -> LogRecord:
        """Publish the current state of *changed_subjects* from a construction store.

        The full fact set of each changed subject is staged (so replay is
        idempotent), the operation is appended to the durable log, and — by
        default — agents replay immediately.

        When the producer already classified its change, *added_subjects*
        names the net-new subset of *changed_subjects*; the classification is
        embedded in the staged payload and the coordinator delivers it to
        delta-journal consumers verbatim, instead of re-deriving it by
        diffing against the delivered-subject set.
        """
        subjects = sorted(set(changed_subjects))
        deleted = sorted(set(deleted_subjects))
        rows: list[dict] = []
        if hasattr(source_store, "rows_about"):
            for subject in subjects:
                rows.extend(source_store.rows_about(subject))
        else:
            for subject in subjects:
                rows.extend(triple.to_row() for triple in source_store.facts_about(subject))
        payload = {"subjects": subjects, "deleted": deleted, "triples": rows}
        if added_subjects is not None:
            added = set(added_subjects)
            payload["classified"] = {
                "added": sorted(added),
                "updated": [s for s in subjects if s not in added],
                "deleted": deleted,
            }
        key = self.object_store.put(payload)
        record = self.log.append("ingest_delta", source_id=source_id, payload_key=key)
        self.stats.operations_published += 1
        self.stats.subjects_published += len(subjects)
        if replay:
            self.replay()
        return record

    def publish_store(
        self, source_store: TripleStore, source_id: str = "construction", replay: bool = True
    ) -> LogRecord:
        """Publish every subject of *source_store* (bulk load)."""
        return self.publish_subjects(
            source_store, source_store.subjects(), source_id=source_id, replay=replay
        )

    def remove_source(self, source_id: str, replay: bool = True) -> LogRecord:
        """Publish an on-demand source removal (licensing / deletion requests)."""
        record = self.log.append("remove_source", source_id=source_id)
        self.stats.operations_published += 1
        if replay:
            self.replay()
        return record

    def replay(self) -> ReplayReport:
        """Replay pending log records into every store in dependency order."""
        ordered = [name for name in AGENT_ORDER if name in self.coordinator.agents]
        extra = [name for name in sorted(self.coordinator.agents) if name not in ordered]
        report = self.coordinator.replay(ordered + extra)
        self.stats.replay_reports.append(report)
        return report

    # -------------------------------------------------------------- #
    # freshness
    # -------------------------------------------------------------- #
    def freshness(self) -> dict[str, int]:
        """Per-store lag (in operations) behind the log head."""
        return self.coordinator.freshness()

    def minimum_version(self) -> int:
        """The KG version (LSN) every store has reached."""
        return self.metadata.minimum_watermark()

    # -------------------------------------------------------------- #
    # query APIs
    # -------------------------------------------------------------- #
    def entity(self, entity_id: str) -> EntityDocument | None:
        """Point lookup of one entity document."""
        return self.entity_store.get(entity_id)

    def search(self, query: str, k: int = 10) -> list[SearchHit]:
        """Ranked full-text entity search."""
        return self.text_index.search(query, k)

    def nearest_neighbors(
        self, vector: Sequence[float], k: int = 10, attribute_filter: dict | None = None
    ) -> list[VectorHit]:
        """Nearest-neighbour search in the vector store."""
        return self.vector_db.search(vector, k, attribute_filter)

    def entity_view(self, spec: EntityViewSpec) -> Relation:
        """Compute a schematized entity view in the analytics warehouse."""
        return self.analytics.entity_view(spec)

    def importance_scores(self) -> dict[str, ImportanceScore]:
        """Compute structural importance for every entity in the primary store."""
        scores = self.importance.compute(self.triples)
        for entity_id, score in scores.items():
            if entity_id in self.entity_store:
                self.entity_store.set_importance(entity_id, score.score)
        return scores

    # -------------------------------------------------------------- #
    # views
    # -------------------------------------------------------------- #
    def register_view(self, definition: ViewDefinition) -> ViewDefinition:
        """Register a view definition in the central catalog."""
        return self.view_catalog.register(definition)

    def materialize_views(
        self, targets: Sequence[str] | None = None, reuse_shared: bool = True
    ) -> dict[str, float]:
        """Materialize views (optionally only *targets*); returns per-view seconds."""
        return self.view_manager.materialize(targets, reuse_shared=reuse_shared)

    def update_views(
        self,
        changed_entity_ids: Sequence[str] | None = None,
        selective: bool = True,
    ) -> dict[str, float]:
        """Maintain materialized views for the changed entities.

        With no argument, flushes the changed-entity delta accumulated from
        log replay (selective, batched maintenance).  With an explicit id
        list, maintenance runs immediately; ``selective=False`` rebuilds every
        materialized view regardless of scope (the pre-selective behavior,
        kept for A/B measurement).
        """
        if changed_entity_ids is None:
            return self.view_manager.flush()
        return self.view_manager.update(
            changed_entity_ids, lsn=self.metadata.minimum_watermark(), selective=selective
        )

    def drop_view(self, name: str, cascade: bool = True) -> list[str]:
        """Drop a view's materialization, cascading invalidation to dependents."""
        return self.view_manager.drop(name, cascade=cascade)

    def view_freshness(self) -> dict[str, int]:
        """Per-view lag (in log positions) behind the operation-log head."""
        return self.view_manager.lagging_views(self.log.head_lsn())

    def view_artifact(self, name: str) -> object:
        """Return the materialized artifact of a registered view."""
        return self.view_manager.artifact(name)

    def _on_log_delta(self, delta: ProgressDelta) -> None:
        """Feed fully-replayed, classified operations to the view manager."""
        if delta.full_refresh:
            # changed-entity set unknown (e.g. remove_source): full refresh
            self.view_manager.mark_full_refresh(delta.lsn)
        else:
            self.view_manager.enqueue(
                delta.changed,
                lsn=delta.lsn,
                deleted_entity_ids=delta.deleted,
                added_entity_ids=delta.added,
            )

    def register_standard_views(self) -> list[str]:
        """Register the production-style view dependency graph of Figure 7.

        ``entity_features`` (analytics) is shared by ``ranked_entity_index``
        (text index) and ``entity_neighbourhood`` (graph structure for
        embedding training); ``entity_importance`` feeds the features view.
        """
        engine = self

        def build_importance(context: ViewContext) -> list[dict]:
            return importance_view_rows(engine.importance.compute(engine.triples).values())

        def build_entity_features(context: ViewContext) -> list[dict]:
            importance_rows = {row["subject"]: row for row in context.artifact("entity_importance")}
            rows = []
            for subject in engine.triples.subjects():
                facts = engine.triples.facts_about(subject)
                entity = KGEntity.from_triples(subject, facts)
                importance = importance_rows.get(subject, {})
                rows.append(
                    {
                        "subject": subject,
                        "name": entity.primary_name,
                        "types": entity.types,
                        "fact_count": len(facts),
                        "alias_count": max(len(entity.names) - 1, 0),
                        "importance": importance.get("importance", 0.0),
                        "pagerank": importance.get("pagerank", 0.0),
                    }
                )
            return rows

        def build_ranked_entity_index(context: ViewContext) -> int:
            features = context.artifact("entity_features")
            documents = []
            for row in features:
                documents.append(
                    TextDocument(
                        doc_id=f"ranked:{row['subject']}",
                        text=row["name"],
                        boost=1.0 + float(row["importance"]),
                        payload={"subject": row["subject"], "types": row["types"]},
                    )
                )
            return engine.text_index.index_many(documents)

        def build_entity_neighbourhood(context: ViewContext) -> list[dict]:
            features = {row["subject"]: row for row in context.artifact("entity_features")}
            edges = []
            # Columnar scan: edge extraction only needs four columns, so stream
            # them straight out of the store instead of materializing triples.
            for subject, predicate, r_predicate, obj in engine.triples.scan_tuples():
                if isinstance(obj, str) and obj in features:
                    edges.append(
                        {
                            "source": subject,
                            "target": obj,
                            "predicate": r_predicate or predicate,
                            "source_importance": features.get(subject, {}).get(
                                "importance", 0.0
                            ),
                        }
                    )
            return edges

        definitions = [
            ViewDefinition(
                name="entity_importance",
                engine="analytics",
                create=build_importance,
                description="structural importance metrics per entity (§3.3)",
            ),
            ViewDefinition(
                name="entity_features",
                engine="analytics",
                create=build_entity_features,
                dependencies=("entity_importance",),
                description="per-entity feature view shared by ranking and embeddings",
            ),
            ViewDefinition(
                name="ranked_entity_index",
                engine="text_index",
                create=build_ranked_entity_index,
                dependencies=("entity_features",),
                description="importance-boosted full-text entity index",
            ),
            ViewDefinition(
                name="entity_neighbourhood",
                engine="analytics",
                create=build_entity_neighbourhood,
                dependencies=("entity_features",),
                description="edge list with features for graph-embedding training",
            ),
        ]
        for definition in definitions:
            if definition.name not in self.view_catalog:
                self.register_view(definition)
        return [definition.name for definition in definitions]

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def _engine_map(self) -> dict[str, object]:
        return {
            "triples": self.triples,
            "analytics": self.analytics,
            "entity_store": self.entity_store,
            "text_index": self.text_index,
            "vector_db": self.vector_db,
            "ontology": self.ontology,
        }

    def register_agent(self, agent: OrchestrationAgent) -> None:
        """Register an additional store agent (polystore extensibility)."""
        if agent.name in self.coordinator.agents:
            raise EngineError(f"agent {agent.name!r} already registered")
        self.coordinator.register(agent)
