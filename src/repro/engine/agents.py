"""Orchestration agents: replay the shared log into each storage engine.

Section 3.1: an extensible orchestration-agent framework lets new storage or
compute engines be onboarded with small engineering effort.  Agents
encapsulate all store-specific logic; the surrounding framework (log reading,
payload fetching, watermark tracking) is generic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from repro.engine.log import LogRecord, OperationLog
from repro.engine.metadata import MetadataStore
from repro.engine.object_store import ObjectStore
from repro.errors import EngineError


class OrchestrationAgent(ABC):
    """Base class for store-specific replay agents."""

    def __init__(self, name: str) -> None:
        if not name:
            raise EngineError("orchestration agent needs a non-empty name")
        self.name = name
        self.operations_applied = 0
        self.errors: list[str] = []

    @abstractmethod
    def apply(self, record: LogRecord, payload: object) -> None:
        """Apply one log record (with its staged payload) to the store."""

    def on_error(self, record: LogRecord, error: Exception) -> None:
        """Record a replay failure; the coordinator will not advance the watermark."""
        self.errors.append(f"lsn={record.lsn}: {error}")


class CallbackAgent(OrchestrationAgent):
    """Adapter turning a plain callable into an orchestration agent."""

    def __init__(self, name: str, callback) -> None:
        super().__init__(name)
        self._callback = callback

    def apply(self, record: LogRecord, payload: object) -> None:
        self._callback(record, payload)


@dataclass
class ReplayReport:
    """What one coordinator pass replayed."""

    applied: dict[str, int] = field(default_factory=dict)   # agent name -> records applied
    failed: dict[str, int] = field(default_factory=dict)
    head_lsn: int = 0

    def total_applied(self) -> int:
        """Total records applied across agents."""
        return sum(self.applied.values())


@dataclass(frozen=True)
class ProgressDelta:
    """One fully-replayed operation, classified for delta-journal consumers.

    The coordinator tracks the set of live subjects it has delivered so far,
    so each ``ingest_delta`` splits into *added* (never delivered, or deleted
    since) versus *updated* subjects; *deleted* mirrors the payload.
    Operations whose changed-entity set is unknown (``remove_source``) are
    delivered with ``full_refresh=True`` and empty id tuples.
    """

    lsn: int
    added: tuple[str, ...] = ()
    updated: tuple[str, ...] = ()
    deleted: tuple[str, ...] = ()
    full_refresh: bool = False

    @property
    def changed(self) -> tuple[str, ...]:
        """Added plus updated subjects, in delivery order."""
        return self.added + self.updated


class AgentCoordinator:
    """Drive every registered agent from its watermark to the log head."""

    def __init__(
        self,
        log: OperationLog,
        object_store: ObjectStore,
        metadata: MetadataStore,
    ) -> None:
        self.log = log
        self.object_store = object_store
        self.metadata = metadata
        self.agents: dict[str, OrchestrationAgent] = {}
        self.progress_listeners: list[Callable[[LogRecord, object], None]] = []
        self.delta_listeners: list[Callable[[ProgressDelta], None]] = []
        self.listener_errors: list[str] = []
        self._delivered_lsn = 0
        self._live_subjects: set[str] = set()

    def add_progress_listener(self, listener: Callable[[LogRecord, object], None]) -> None:
        """Call *listener* with each record once every store has applied it.

        Listeners see records strictly in LSN order and exactly once, and only
        after the minimum watermark across all registered agents has passed
        the record — i.e. when every store is consistent with it.  Derived
        maintenance (view deltas) hangs off this hook so it never reads a
        store that has not replayed the operation yet.
        """
        self.progress_listeners.append(listener)

    def add_delta_listener(self, listener: Callable[[ProgressDelta], None]) -> None:
        """Call *listener* with a classified :class:`ProgressDelta` per record.

        Same delivery guarantees as :meth:`add_progress_listener` (strict LSN
        order, exactly once, only after every store replayed the record), but
        the payload is pre-classified into added / updated / deleted subjects
        so delta-journal consumers (the view manager) can record entity-level
        deltas without re-deriving them from raw payloads.
        """
        self.delta_listeners.append(listener)

    def register(self, agent: OrchestrationAgent) -> OrchestrationAgent:
        """Register an agent; its watermark starts at 0 (full replay)."""
        if agent.name in self.agents:
            raise EngineError(f"agent {agent.name!r} is already registered")
        self.agents[agent.name] = agent
        self.metadata.update_watermark(agent.name, self.metadata.watermark(agent.name))
        return agent

    def unregister(self, agent_name: str) -> None:
        """Remove an agent from coordination."""
        self.agents.pop(agent_name, None)

    def replay(self, agent_names: list[str] | None = None) -> ReplayReport:
        """Replay pending log records on the selected (or all) agents.

        Each agent processes records strictly in LSN order starting after its
        own watermark, so independent stores may be at different versions but
        never see operations out of order.
        """
        report = ReplayReport(head_lsn=self.log.head_lsn())
        names = agent_names if agent_names is not None else sorted(self.agents)
        for name in names:
            agent = self.agents.get(name)
            if agent is None:
                raise EngineError(f"unknown orchestration agent {name!r}")
            watermark = self.metadata.watermark(name)
            applied = failed = 0
            for record in self.log.read_from(watermark):
                payload = (
                    self.object_store.get(record.payload_key)
                    if record.payload_key
                    else None
                )
                try:
                    agent.apply(record, payload)
                except Exception as exc:  # noqa: BLE001 - agent errors must not kill replay
                    agent.on_error(record, exc)
                    failed += 1
                    break
                agent.operations_applied += 1
                applied += 1
                self.metadata.update_watermark(name, record.lsn)
            report.applied[name] = applied
            if failed:
                report.failed[name] = failed
        self._notify_progress()
        return report

    def _notify_progress(self) -> None:
        if (not self.progress_listeners and not self.delta_listeners) or not self.agents:
            return
        fully_applied = min(self.metadata.watermark(name) for name in self.agents)
        if fully_applied <= self._delivered_lsn:
            return
        for record in self.log.read_from(self._delivered_lsn):
            if record.lsn > fully_applied:
                break
            payload = (
                self.object_store.get(record.payload_key) if record.payload_key else None
            )
            for listener in self.progress_listeners:
                try:
                    listener(record, payload)
                except Exception as exc:  # noqa: BLE001 - replay already committed
                    # Stores applied this record; a derived-maintenance error
                    # must neither unwind replay nor cause redelivery.
                    self.listener_errors.append(f"lsn={record.lsn}: {exc}")
            delta = self._classify(record, payload)
            for listener in self.delta_listeners:
                try:
                    listener(delta)
                except Exception as exc:  # noqa: BLE001 - replay already committed
                    self.listener_errors.append(f"lsn={record.lsn}: {exc}")
            self._delivered_lsn = record.lsn

    def _classify(self, record: LogRecord, payload: object) -> ProgressDelta:
        """Split one delivered record into added / updated / deleted subjects.

        Producers that already classified their change (knowledge construction
        embeds the commit's :class:`~repro.construction.incremental.
        EntityDelta` as the payload's ``classified`` section) are passed
        through verbatim — no store re-diffing happens on this path, the
        classification computed at fusion-commit time flows unchanged into the
        view delta journals.  Unclassified payloads fall back to
        :meth:`_classify_by_diff`.  Either way the live-subject set is kept
        consistent, since a later unclassified operation may need it.
        """
        if record.operation == "ingest_delta" and isinstance(payload, dict):
            classified = payload.get("classified")
            if isinstance(classified, dict):
                added = tuple(str(s) for s in classified.get("added", ()))
                updated = tuple(str(s) for s in classified.get("updated", ()))
                deleted = tuple(str(s) for s in classified.get("deleted", ()))
                self._live_subjects.update(added)
                self._live_subjects.update(updated)
                self._live_subjects.difference_update(deleted)
                return ProgressDelta(
                    lsn=record.lsn, added=added, updated=updated, deleted=deleted
                )
            return self._classify_by_diff(record, payload)
        return ProgressDelta(lsn=record.lsn, full_refresh=True)

    def _classify_by_diff(self, record: LogRecord, payload: dict) -> ProgressDelta:
        """Diff-based fallback classification for unclassified payloads.

        Stateful against the subjects delivered so far, so it must run exactly
        once per record even when no delta listener is registered yet.  After
        a ``full_refresh`` the live-subject set may retain subjects a
        ``remove_source`` actually dropped; a later re-add then classifies as
        *updated* — harmless for journal consumers, which treat added and
        updated rows identically.
        """
        subjects = [str(s) for s in payload.get("subjects", [])]
        deleted = [str(s) for s in payload.get("deleted", [])]
        added = tuple(s for s in subjects if s not in self._live_subjects)
        updated = tuple(s for s in subjects if s in self._live_subjects)
        self._live_subjects.update(subjects)
        self._live_subjects.difference_update(deleted)
        return ProgressDelta(
            lsn=record.lsn, added=added, updated=updated, deleted=tuple(deleted)
        )

    def freshness(self) -> dict[str, int]:
        """Per-store lag behind the log head, in operations."""
        head = self.log.head_lsn()
        return {name: head - self.metadata.watermark(name) for name in self.agents}
