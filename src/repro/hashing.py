"""Process-stable key hashing shared by the live and serving tiers.

Every structure that assigns keys to partitions — the serving tier's
consistent-hash ring, its subject-space partitions, and the live KV store's
shards — must agree on the hash of a key **across processes and runs**.
Python's builtin ``hash`` is salted per process (``PYTHONHASHSEED``), so it
can never be used for placement: two processes would shard the same key
differently, which breaks reproducible shard-layout assertions and corrupts
routing the moment placement decisions cross a process boundary.

This module is the canonical home of the stable hash; it sits below both
``repro.live`` and ``repro.serving`` so either side can import it without
creating a package cycle.  :mod:`repro.serving.router` re-exports it for
existing callers.
"""

from __future__ import annotations

import hashlib

#: Exclusive upper bound of the ring/partition hash space (64-bit digests).
MAX_HASH = 2**64


def stable_hash(key: str) -> int:
    """The 64-bit ring/partition/shard hash (stable across processes and runs)."""
    return int.from_bytes(hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big")
