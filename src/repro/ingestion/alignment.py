"""Ontology alignment via Predicate Generation Functions (PGFs) (Section 2.2).

Alignment populates a target schema that follows the KG ontology.  Saga uses a
config-driven paradigm: users specify source predicates and target predicates
and PGFs populate the target schema from the source data.  A PGF may:

* rename a predicate (``category`` → ``genre``);
* combine a group of source predicates into one target predicate
  (``<title, sequel_number>`` → ``full_title``);
* transform values (parse years, split lists, coerce numbers).

Subjects and objects stay in the source namespace after alignment; they are
linked to KG identifiers later, during knowledge construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.errors import AlignmentError
from repro.model.entity import SourceEntity
from repro.model.ontology import Ontology


@dataclass
class PredicateGenerationFunction:
    """Populate one target (KG-ontology) predicate from source predicates.

    Parameters
    ----------
    target_predicate
        Predicate name in the KG ontology.
    source_predicates
        Source predicate names consumed by this PGF, in order.
    combine
        Optional callable receiving the source values (one positional argument
        per source predicate, missing values are ``None``) and returning the
        target value.  When omitted: a single source predicate is copied
        through, multiple source predicates are joined with a space.
    transform
        Optional callable applied to the combined value (and to each element
        of list values).
    required
        When ``True``, alignment reports a violation if no value could be
        produced for this predicate.
    """

    target_predicate: str
    source_predicates: tuple[str, ...]
    combine: Callable[..., object] | None = None
    transform: Callable[[object], object] | None = None
    required: bool = False

    def __post_init__(self) -> None:
        if not self.target_predicate:
            raise AlignmentError("PGF target predicate must be non-empty")
        if not self.source_predicates:
            raise AlignmentError(
                f"PGF for {self.target_predicate!r} needs at least one source predicate"
            )

    def apply(self, properties: Mapping[str, object]) -> object | None:
        """Compute the target value from the source *properties*."""
        values = [properties.get(name) for name in self.source_predicates]
        if self.combine is not None:
            combined = self.combine(*values)
        elif len(values) == 1:
            combined = values[0]
        else:
            present = [str(v) for v in values if v not in (None, "", [])]
            combined = " ".join(present) if present else None
        if combined is None:
            return None
        if self.transform is None:
            return combined
        if isinstance(combined, list):
            transformed = [self.transform(v) for v in combined]
            return [v for v in transformed if v is not None]
        return self.transform(combined)


# Short alias used throughout configs, mirroring the paper's terminology.
PGF = PredicateGenerationFunction


@dataclass
class AlignmentConfig:
    """Config-driven specification of source-to-ontology alignment."""

    source_id: str
    pgfs: list[PredicateGenerationFunction] = field(default_factory=list)
    type_map: dict[str, str] = field(default_factory=dict)   # source type -> KG type
    default_type: str = ""
    passthrough_unmapped: bool = True   # copy predicates already named per the ontology
    drop_predicates: tuple[str, ...] = ()

    def add_rename(self, source_predicate: str, target_predicate: str) -> "AlignmentConfig":
        """Convenience: add a simple rename PGF."""
        self.pgfs.append(PGF(target_predicate, (source_predicate,)))
        return self

    def mapped_source_predicates(self) -> set[str]:
        """Source predicates consumed by at least one PGF."""
        consumed: set[str] = set()
        for pgf in self.pgfs:
            consumed.update(pgf.source_predicates)
        return consumed


@dataclass
class AlignmentReport:
    """Statistics and violations produced while aligning one payload."""

    total: int = 0
    aligned: int = 0
    unknown_predicates: dict[str, int] = field(default_factory=dict)
    missing_required: list[str] = field(default_factory=list)
    unknown_types: dict[str, int] = field(default_factory=dict)

    def note_unknown_predicate(self, predicate: str) -> None:
        """Count a predicate that is not part of the KG ontology."""
        self.unknown_predicates[predicate] = self.unknown_predicates.get(predicate, 0) + 1

    def note_unknown_type(self, entity_type: str) -> None:
        """Count an entity type that is not part of the KG ontology."""
        self.unknown_types[entity_type] = self.unknown_types.get(entity_type, 0) + 1


class OntologyAligner:
    """Apply an :class:`AlignmentConfig` to entity-centric source records."""

    def __init__(self, ontology: Ontology, config: AlignmentConfig) -> None:
        self.ontology = ontology
        self.config = config

    def align(self, entities: Iterable[SourceEntity]) -> tuple[list[SourceEntity], AlignmentReport]:
        """Return ontology-aligned copies of *entities* plus a report."""
        report = AlignmentReport()
        aligned_entities: list[SourceEntity] = []
        for entity in entities:
            report.total += 1
            aligned_entities.append(self._align_entity(entity, report))
            report.aligned += 1
        return aligned_entities, report

    def _align_entity(self, entity: SourceEntity, report: AlignmentReport) -> SourceEntity:
        target_properties: dict[str, object] = {}

        # 1. PGFs populate the target schema.
        for pgf in self.config.pgfs:
            value = pgf.apply(entity.properties)
            if value in (None, "", []):
                if pgf.required:
                    report.missing_required.append(
                        f"{entity.entity_id}:{pgf.target_predicate}"
                    )
                continue
            if not self.ontology.has_predicate(pgf.target_predicate):
                report.note_unknown_predicate(pgf.target_predicate)
            target_properties[pgf.target_predicate] = value

        # 2. Pass through source predicates already expressed in the ontology.
        if self.config.passthrough_unmapped:
            consumed = self.config.mapped_source_predicates()
            for predicate, value in entity.properties.items():
                if predicate in consumed or predicate in target_properties:
                    continue
                if predicate in self.config.drop_predicates:
                    continue
                if value in (None, "", []):
                    continue
                if self.ontology.has_predicate(predicate):
                    target_properties[predicate] = value
                else:
                    report.note_unknown_predicate(predicate)

        # 3. Map the entity type into the KG ontology.
        entity_type = self.config.type_map.get(
            entity.entity_type, entity.entity_type or self.config.default_type
        )
        if entity_type and not self.ontology.has_type(entity_type):
            report.note_unknown_type(entity_type)
            entity_type = self.config.default_type or entity_type

        return SourceEntity(
            entity_id=entity.entity_id,
            entity_type=entity_type,
            properties=target_properties,
            source_id=entity.source_id or self.config.source_id,
            trust=entity.trust,
            locale=entity.locale,
        )


# --------------------------------------------------------------------- #
# common value transforms used in alignment configs
# --------------------------------------------------------------------- #
def to_int(value: object) -> int | None:
    """Parse *value* as an integer, returning ``None`` when impossible."""
    try:
        return int(str(value).strip())
    except (TypeError, ValueError):
        return None


def to_float(value: object) -> float | None:
    """Parse *value* as a float, returning ``None`` when impossible."""
    try:
        return float(str(value).strip())
    except (TypeError, ValueError):
        return None


def split_list(separator: str = "|") -> Callable[[object], object]:
    """Return a transform splitting delimiter-joined strings into lists."""

    def _split(value: object) -> object:
        if isinstance(value, str) and separator in value:
            return [part.strip() for part in value.split(separator) if part.strip()]
        return value

    return _split


def join_title(title: object, qualifier: object) -> object:
    """Combine ``<title, sequel_number>`` into ``full_title`` (paper example)."""
    if title in (None, ""):
        return None
    if qualifier in (None, ""):
        return str(title)
    return f"{title} {qualifier}"
