"""The source ingestion pipeline: Import → Transform → Align → Delta → Export.

One :class:`IngestionPipeline` per upstream source, assembled from the
pluggable components in this package (Figure 3 of the paper).  Engineers
onboard a new source by providing an importer, a transformer configuration,
and an alignment config — the pipeline machinery is shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import IngestionError
from repro.ingestion.alignment import AlignmentConfig, AlignmentReport, OntologyAligner
from repro.ingestion.delta import DeltaComputer
from repro.ingestion.export import ExportedDelta, export_delta
from repro.ingestion.importers import Importer, Row
from repro.ingestion.transform import EntityTransformer, IntegrityReport
from repro.model.delta import SourceDelta
from repro.model.entity import SourceEntity
from repro.model.ontology import Ontology


@dataclass
class IngestionResult:
    """Everything produced by one run of an ingestion pipeline."""

    source_id: str
    entities: list[SourceEntity]
    delta: SourceDelta
    exported: ExportedDelta
    integrity: IntegrityReport
    alignment: AlignmentReport
    timestamp: int = 0

    def summary(self) -> dict[str, object]:
        """Compact run summary for logging and tests."""
        return {
            "source_id": self.source_id,
            "entities": len(self.entities),
            "integrity_rejected": self.integrity.rejected,
            "delta": self.delta.summary(),
            "exported_triples": self.exported.triple_count(),
        }


class IngestionPipeline:
    """Config-driven ingestion pipeline for one data source."""

    def __init__(
        self,
        source_id: str,
        ontology: Ontology,
        transformer: EntityTransformer | None = None,
        alignment: AlignmentConfig | None = None,
        delta_computer: DeltaComputer | None = None,
    ) -> None:
        self.source_id = source_id
        self.ontology = ontology
        self.transformer = transformer or EntityTransformer(source_id=source_id)
        self.alignment = alignment or AlignmentConfig(source_id=source_id)
        self.aligner = OntologyAligner(ontology, self.alignment)
        self.delta_computer = delta_computer or DeltaComputer(ontology=ontology)
        self._runs = 0

    # -------------------------------------------------------------- #
    # running over raw rows or an importer
    # -------------------------------------------------------------- #
    def run(self, importer: Importer, timestamp: int | None = None) -> IngestionResult:
        """Run the full pipeline over an importer's payload."""
        rows = importer.read()
        return self.run_rows(rows, timestamp=timestamp)

    def run_rows(self, rows: Iterable[Row], timestamp: int | None = None) -> IngestionResult:
        """Run the pipeline over already-imported rows."""
        entities, integrity = self.transformer.transform(rows)
        return self._finish(entities, integrity, timestamp)

    def run_entities(
        self, entities: Sequence[SourceEntity], timestamp: int | None = None
    ) -> IngestionResult:
        """Run alignment + delta + export over pre-built entity records.

        Used when an upstream team already produces entity-centric payloads
        (and by the synthetic data generator in tests and benchmarks).
        """
        integrity = IntegrityReport(total=len(entities), passed=len(entities))
        return self._finish(list(entities), integrity, timestamp)

    def _finish(
        self,
        entities: list[SourceEntity],
        integrity: IntegrityReport,
        timestamp: int | None,
    ) -> IngestionResult:
        if not entities and integrity.total:
            raise IngestionError(
                f"source {self.source_id!r}: every entity was rejected by "
                f"integrity checks ({integrity.violations[:3]}...)"
            )
        aligned, alignment_report = self.aligner.align(entities)
        self._runs += 1
        effective_timestamp = timestamp if timestamp is not None else self._runs
        delta = self.delta_computer.compute(
            self.source_id, aligned, timestamp=effective_timestamp
        )
        exported = export_delta(delta)
        return IngestionResult(
            source_id=self.source_id,
            entities=aligned,
            delta=delta,
            exported=exported,
            integrity=integrity,
            alignment=alignment_report,
            timestamp=effective_timestamp,
        )


@dataclass
class IngestionHub:
    """Registry of per-source pipelines (the "source ingestion platform").

    Pipelines for different sources are independent, which is what lets the
    production system run them in parallel; here they simply run one after
    another when :meth:`run_all` is called.
    """

    ontology: Ontology
    pipelines: dict[str, IngestionPipeline] = field(default_factory=dict)

    def register(self, pipeline: IngestionPipeline) -> IngestionPipeline:
        """Register a pipeline under its source id."""
        self.pipelines[pipeline.source_id] = pipeline
        return pipeline

    def register_source(
        self,
        source_id: str,
        transformer: EntityTransformer | None = None,
        alignment: AlignmentConfig | None = None,
    ) -> IngestionPipeline:
        """Create and register a pipeline for *source_id* with shared defaults."""
        pipeline = IngestionPipeline(
            source_id=source_id,
            ontology=self.ontology,
            transformer=transformer,
            alignment=alignment,
        )
        return self.register(pipeline)

    def get(self, source_id: str) -> IngestionPipeline:
        """Return the pipeline registered for *source_id*."""
        try:
            return self.pipelines[source_id]
        except KeyError:
            raise IngestionError(f"no ingestion pipeline registered for {source_id!r}") from None

    def run_all(
        self, payloads: dict[str, Sequence[SourceEntity]], timestamp: int | None = None
    ) -> list[IngestionResult]:
        """Run every registered pipeline whose source appears in *payloads*."""
        results = []
        for source_id, entities in payloads.items():
            pipeline = self.get(source_id)
            results.append(pipeline.run_entities(entities, timestamp=timestamp))
        return results
