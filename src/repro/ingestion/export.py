"""Export stage: ontology-aligned entities → extended triples (Section 2.2).

The export stage produces extended triples in the KG-ontology schema so that
knowledge construction can consume them cheaply ("lightweight ingestion" in
§2.4: the triplication of composite relationship nodes happens here, so the
construction side never needs self-joins to recover one-hop facts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.model.delta import SourceDelta
from repro.model.entity import SourceEntity
from repro.model.triples import ExtendedTriple


@dataclass
class ExportedDelta:
    """A :class:`SourceDelta` rendered as extended-triple payloads."""

    source_id: str
    added: dict[str, list[ExtendedTriple]]
    updated: dict[str, list[ExtendedTriple]]
    deleted: list[str]
    volatile: dict[str, list[ExtendedTriple]]
    from_timestamp: int = 0
    to_timestamp: int = 0

    def triple_count(self) -> int:
        """Total number of exported triples across all partitions."""
        count = 0
        for payload in (self.added, self.updated, self.volatile):
            count += sum(len(triples) for triples in payload.values())
        return count


def export_entities(entities: Iterable[SourceEntity]) -> dict[str, list[ExtendedTriple]]:
    """Flatten every entity into extended triples keyed by source entity id."""
    exported: dict[str, list[ExtendedTriple]] = {}
    for entity in entities:
        exported[entity.entity_id] = entity.to_triples()
    return exported


def export_delta(delta: SourceDelta) -> ExportedDelta:
    """Render a source delta as extended-triple payloads for construction."""
    return ExportedDelta(
        source_id=delta.source_id,
        added=export_entities(delta.added),
        updated=export_entities(delta.updated),
        deleted=[entity.entity_id for entity in delta.deleted],
        volatile=export_entities(delta.volatile),
        from_timestamp=delta.from_timestamp,
        to_timestamp=delta.to_timestamp,
    )
