"""Eager delta computation against the last consumed snapshot (Section 2.4).

The ingestion platform — not knowledge construction — is responsible for
working out what changed upstream.  :class:`DeltaComputer` keeps the snapshot
last consumed by the KG for each source and, whenever a new snapshot arrives,
materializes a :class:`~repro.model.delta.SourceDelta` with Added, Deleted,
Updated, and Volatile partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.model.delta import SourceDelta, compute_delta
from repro.model.entity import SourceEntity
from repro.model.ontology import Ontology


@dataclass
class DeltaComputer:
    """Track consumed snapshots per source and compute eager deltas."""

    ontology: Ontology | None = None
    extra_volatile_predicates: tuple[str, ...] = ()
    _snapshots: dict[str, list[SourceEntity]] = field(default_factory=dict)
    _timestamps: dict[str, int] = field(default_factory=dict)

    def volatile_predicates(self) -> set[str]:
        """Predicates excluded from change detection (popularity-style churn)."""
        volatile = set(self.extra_volatile_predicates)
        if self.ontology is not None:
            volatile |= self.ontology.volatile_predicates()
        return volatile

    def has_snapshot(self, source_id: str) -> bool:
        """Whether the source has been consumed before."""
        return source_id in self._snapshots

    def last_timestamp(self, source_id: str) -> int:
        """Timestamp of the last consumed snapshot (0 when never consumed)."""
        return self._timestamps.get(source_id, 0)

    def compute(
        self,
        source_id: str,
        entities: Sequence[SourceEntity],
        timestamp: int | None = None,
    ) -> SourceDelta:
        """Diff the new snapshot against the last consumed one and remember it.

        A source never seen before yields a delta whose ``added`` partition
        holds the full payload, exactly how the paper onboards new sources.
        """
        previous = self._snapshots.get(source_id, [])
        from_timestamp = self._timestamps.get(source_id, 0)
        to_timestamp = timestamp if timestamp is not None else from_timestamp + 1
        delta = compute_delta(
            source_id=source_id,
            previous=previous,
            current=entities,
            volatile_predicates=self.volatile_predicates(),
            from_timestamp=from_timestamp,
            to_timestamp=to_timestamp,
        )
        self._snapshots[source_id] = [entity.copy() for entity in entities]
        self._timestamps[source_id] = to_timestamp
        return delta

    def peek(
        self, source_id: str, entities: Sequence[SourceEntity], timestamp: int | None = None
    ) -> SourceDelta:
        """Compute a delta without advancing the consumed snapshot."""
        previous = self._snapshots.get(source_id, [])
        from_timestamp = self._timestamps.get(source_id, 0)
        to_timestamp = timestamp if timestamp is not None else from_timestamp + 1
        return compute_delta(
            source_id=source_id,
            previous=previous,
            current=entities,
            volatile_predicates=self.volatile_predicates(),
            from_timestamp=from_timestamp,
            to_timestamp=to_timestamp,
        )

    def forget(self, source_id: str) -> None:
        """Drop the remembered snapshot (the next delta will be a full add)."""
        self._snapshots.pop(source_id, None)
        self._timestamps.pop(source_id, None)
