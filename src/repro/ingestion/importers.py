"""Data source importers (Section 2.2, "Import" stage).

An importer reads upstream data artifacts in whatever format the provider
publishes (CSV, JSON, JSON-lines, in-memory records standing in for Parquet
tables) and normalizes them into a uniform row-based dataset: a list of plain
dictionaries.  Everything downstream of the importer is format-agnostic.

Importers are registered in :data:`IMPORTER_REGISTRY` so ingestion pipelines
can be configured by name, which is how Saga supports self-serve onboarding of
new sources.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Protocol

from repro.errors import IngestionError

Row = dict


class Importer(Protocol):
    """Protocol every importer implements."""

    def read(self) -> list[Row]:
        """Return the upstream data as a list of flat row dictionaries."""
        ...


@dataclass
class InMemoryImporter:
    """Importer over records already resident in memory.

    Stands in for columnar artifacts (Parquet in HDFS) in this reproduction:
    the importer contract — produce uniform rows — is identical.
    """

    rows: list[Row]
    dataset: str = "memory"

    def read(self) -> list[Row]:
        """Return a defensive copy of the rows."""
        return [dict(row) for row in self.rows]


@dataclass
class CSVImporter:
    """Importer for CSV files or CSV text payloads."""

    path: str | Path | None = None
    text: str | None = None
    delimiter: str = ","

    def read(self) -> list[Row]:
        """Parse the CSV into rows keyed by header names."""
        if self.text is not None:
            handle = io.StringIO(self.text)
            return self._parse(handle)
        if self.path is None:
            raise IngestionError("CSVImporter needs either a path or text")
        try:
            with open(self.path, newline="", encoding="utf-8") as handle:
                return self._parse(handle)
        except OSError as exc:
            raise IngestionError(f"cannot read CSV source {self.path!r}: {exc}") from exc

    def _parse(self, handle) -> list[Row]:
        reader = csv.DictReader(handle, delimiter=self.delimiter)
        return [dict(row) for row in reader]


@dataclass
class JSONImporter:
    """Importer for a JSON document holding a list of records."""

    path: str | Path | None = None
    text: str | None = None

    def read(self) -> list[Row]:
        """Parse the JSON array into rows."""
        payload = self._load()
        if isinstance(payload, dict):
            # Providers sometimes wrap the records: {"entities": [...]}.
            for value in payload.values():
                if isinstance(value, list):
                    payload = value
                    break
        if not isinstance(payload, list):
            raise IngestionError("JSON source must contain a list of records")
        rows = []
        for record in payload:
            if not isinstance(record, dict):
                raise IngestionError("JSON source records must be objects")
            rows.append(dict(record))
        return rows

    def _load(self) -> object:
        if self.text is not None:
            try:
                return json.loads(self.text)
            except json.JSONDecodeError as exc:
                raise IngestionError(f"malformed JSON payload: {exc}") from exc
        if self.path is None:
            raise IngestionError("JSONImporter needs either a path or text")
        try:
            with open(self.path, encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise IngestionError(f"cannot read JSON source {self.path!r}: {exc}") from exc


@dataclass
class JSONLinesImporter:
    """Importer for newline-delimited JSON records."""

    path: str | Path | None = None
    text: str | None = None

    def read(self) -> list[Row]:
        """Parse one JSON object per non-empty line."""
        if self.text is not None:
            lines = self.text.splitlines()
        elif self.path is not None:
            try:
                with open(self.path, encoding="utf-8") as handle:
                    lines = handle.read().splitlines()
            except OSError as exc:
                raise IngestionError(
                    f"cannot read JSONL source {self.path!r}: {exc}"
                ) from exc
        else:
            raise IngestionError("JSONLinesImporter needs either a path or text")
        rows = []
        for number, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError as exc:
                raise IngestionError(f"malformed JSONL record on line {number}: {exc}") from exc
            if not isinstance(record, dict):
                raise IngestionError(f"JSONL record on line {number} is not an object")
            rows.append(record)
        return rows


@dataclass
class CompositeImporter:
    """Join multiple importers into one dataset.

    Mirrors the paper's example of combining raw artist information with an
    artist-popularity dataset to obtain complete artist entities.  Rows are
    merged on *join_key*; rows missing from secondary datasets keep only the
    primary fields.
    """

    primary: Importer
    secondary: list[Importer] = field(default_factory=list)
    join_key: str = "id"

    def read(self) -> list[Row]:
        """Left-join every secondary dataset onto the primary by join key."""
        rows = self.primary.read()
        for importer in self.secondary:
            extra_by_key: dict[object, Row] = {}
            for row in importer.read():
                if self.join_key in row:
                    extra_by_key[row[self.join_key]] = row
            for row in rows:
                extra = extra_by_key.get(row.get(self.join_key))
                if extra:
                    for key, value in extra.items():
                        row.setdefault(key, value)
        return rows


IMPORTER_REGISTRY: dict[str, Callable[..., Importer]] = {
    "memory": InMemoryImporter,
    "csv": CSVImporter,
    "json": JSONImporter,
    "jsonl": JSONLinesImporter,
}
"""Importer factories by format name, used by config-driven pipelines."""


def make_importer(format_name: str, **kwargs) -> Importer:
    """Instantiate a registered importer by format name."""
    factory = IMPORTER_REGISTRY.get(format_name)
    if factory is None:
        known = ", ".join(sorted(IMPORTER_REGISTRY))
        raise IngestionError(
            f"unknown importer format {format_name!r} (known formats: {known})"
        )
    return factory(**kwargs)


def register_importer(format_name: str, factory: Callable[..., Importer]) -> None:
    """Register a custom importer factory (self-serve extensibility)."""
    IMPORTER_REGISTRY[format_name] = factory
