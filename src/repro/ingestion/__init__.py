"""Source ingestion: importers, entity transform, ontology alignment, deltas."""

from repro.ingestion.alignment import (
    PGF,
    AlignmentConfig,
    AlignmentReport,
    OntologyAligner,
    PredicateGenerationFunction,
    join_title,
    split_list,
    to_float,
    to_int,
)
from repro.ingestion.delta import DeltaComputer
from repro.ingestion.export import ExportedDelta, export_delta, export_entities
from repro.ingestion.importers import (
    CompositeImporter,
    CSVImporter,
    InMemoryImporter,
    JSONImporter,
    JSONLinesImporter,
    make_importer,
    register_importer,
)
from repro.ingestion.pipeline import IngestionHub, IngestionPipeline, IngestionResult
from repro.ingestion.transform import EntityTransformer, IntegrityReport

__all__ = [
    "PGF",
    "AlignmentConfig",
    "AlignmentReport",
    "CSVImporter",
    "CompositeImporter",
    "DeltaComputer",
    "EntityTransformer",
    "ExportedDelta",
    "InMemoryImporter",
    "IngestionHub",
    "IngestionPipeline",
    "IngestionResult",
    "IntegrityReport",
    "JSONImporter",
    "JSONLinesImporter",
    "OntologyAligner",
    "PredicateGenerationFunction",
    "export_delta",
    "export_entities",
    "join_title",
    "make_importer",
    "register_importer",
    "split_list",
    "to_float",
    "to_int",
]
