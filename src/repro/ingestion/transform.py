"""Entity Transform stage: rows → entity-centric records plus integrity checks.

Section 2.2 of the paper requires the transformer to produce one row per
entity (columns = source predicates) and to enforce data-integrity checks:

* entity identifiers are unique across all produced entities;
* every entity has an ID predicate;
* predicate values are non-empty;
* every predicate declared in the source schema is present (even if null);
* predicate names are unique within an entity.

The transformer never invents predicates; it only reshapes, joins, and checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.errors import IntegrityError
from repro.ingestion.importers import Row
from repro.model.entity import SourceEntity


@dataclass
class IntegrityReport:
    """Outcome of the integrity checks over one transformed payload."""

    total: int = 0
    passed: int = 0
    violations: list[str] = field(default_factory=list)
    rejected_ids: list[str] = field(default_factory=list)

    @property
    def rejected(self) -> int:
        """Number of entities rejected by the checks."""
        return self.total - self.passed

    def record_violation(self, entity_id: str, message: str) -> None:
        """Record one violation for *entity_id*."""
        self.violations.append(f"{entity_id}: {message}")
        if entity_id not in self.rejected_ids:
            self.rejected_ids.append(entity_id)


@dataclass
class EntityTransformer:
    """Reshape imported rows into entity-centric :class:`SourceEntity` records.

    Parameters
    ----------
    source_id
        Identifier of the upstream source (stamped on every entity).
    id_column
        Row column holding the source-local entity identifier.
    type_column
        Optional column holding the entity type; ``default_type`` is used when
        the column is absent or empty.
    default_type
        Entity type assigned when no type column is available.
    schema
        The declared source schema: every listed predicate must appear in each
        produced entity (missing ones are filled with ``None``), matching the
        paper's integrity requirement.
    trust
        Source trust score propagated to provenance.
    row_grouper
        Optional callable mapping a row to a grouping key; rows sharing a key
        are merged into one entity (for providers that ship one row per fact).
    strict
        When ``True`` integrity violations raise; otherwise offending entities
        are dropped and reported.
    """

    source_id: str
    id_column: str = "id"
    type_column: str = "type"
    default_type: str = ""
    schema: tuple[str, ...] = ()
    trust: float = 0.8
    locale: str = "en"
    row_grouper: Callable[[Row], object] | None = None
    strict: bool = False

    def transform(self, rows: Iterable[Row]) -> tuple[list[SourceEntity], IntegrityReport]:
        """Produce entity records and the integrity report for *rows*."""
        grouped = self._group_rows(list(rows))
        report = IntegrityReport(total=len(grouped))
        entities: list[SourceEntity] = []
        seen_ids: set[str] = set()

        for key, group in grouped.items():
            merged = self._merge_rows(group)
            entity_id = str(merged.get(self.id_column) or "").strip()
            if not entity_id:
                self._violation(report, key or "<missing id>", "missing ID predicate")
                continue
            qualified_id = (
                entity_id if ":" in entity_id else f"{self.source_id}:{entity_id}"
            )
            if qualified_id in seen_ids:
                self._violation(report, qualified_id, "duplicate entity identifier")
                continue

            entity_type = str(merged.get(self.type_column) or self.default_type)
            properties = self._build_properties(merged)
            problem = self._check_entity(qualified_id, properties)
            if problem:
                self._violation(report, qualified_id, problem)
                continue

            seen_ids.add(qualified_id)
            entities.append(
                SourceEntity(
                    entity_id=qualified_id,
                    entity_type=entity_type,
                    properties=properties,
                    source_id=self.source_id,
                    trust=self.trust,
                    locale=self.locale,
                )
            )
            report.passed += 1
        return entities, report

    # -------------------------------------------------------------- #
    # internals
    # -------------------------------------------------------------- #
    def _group_rows(self, rows: list[Row]) -> dict[object, list[Row]]:
        grouped: dict[object, list[Row]] = {}
        for index, row in enumerate(rows):
            if self.row_grouper is not None:
                key = self.row_grouper(row)
            else:
                key = row.get(self.id_column, f"__row_{index}")
            grouped.setdefault(key, []).append(row)
        return grouped

    def _merge_rows(self, group: list[Row]) -> Row:
        merged: Row = {}
        for row in group:
            for key, value in row.items():
                if key not in merged or merged[key] in (None, "", []):
                    merged[key] = value
                elif merged[key] != value and value not in (None, ""):
                    existing = merged[key]
                    if isinstance(existing, list):
                        if value not in existing:
                            existing.append(value)
                    else:
                        merged[key] = [existing, value]
        return merged

    def _build_properties(self, merged: Row) -> dict[str, object]:
        properties: dict[str, object] = {}
        for key, value in merged.items():
            if key in (self.id_column, self.type_column):
                continue
            properties[key] = _clean_value(value)
        for declared in self.schema:
            properties.setdefault(declared, None)
        return properties

    def _check_entity(self, entity_id: str, properties: Mapping[str, object]) -> str | None:
        for predicate, value in properties.items():
            if not predicate:
                return "empty predicate name"
            if predicate not in self.schema and _is_empty(value) and self.schema:
                # Undeclared and empty: drop it silently rather than reject.
                continue
        meaningful = [v for k, v in properties.items() if not _is_empty(v)]
        if not meaningful:
            return "entity has no non-empty predicates"
        return None

    def _violation(self, report: IntegrityReport, entity_id: str, message: str) -> None:
        report.record_violation(entity_id, message)
        if self.strict:
            raise IntegrityError(f"{entity_id}: {message}")


def _clean_value(value: object) -> object:
    if isinstance(value, str):
        stripped = value.strip()
        return stripped if stripped else None
    if isinstance(value, list):
        cleaned = [_clean_value(v) for v in value]
        return [v for v in cleaned if v is not None]
    return value


def _is_empty(value: object) -> bool:
    return value is None or value == "" or value == []
