"""repro: an open-source reproduction of Saga (SIGMOD 2022).

Saga is a platform for continuous construction and serving of knowledge at
scale.  This package rebuilds every subsystem the paper describes as an
in-process Python library:

* :mod:`repro.model` — the extended-triples data model, ontology, provenance;
* :mod:`repro.ingestion` — source importers, entity transform, ontology
  alignment (PGFs), eager delta computation, export;
* :mod:`repro.construction` — blocking, matching, correlation clustering,
  subject linking, object resolution, fusion, incremental construction;
* :mod:`repro.engine` — the Graph Engine: shared operation log, federated
  polystore (analytics warehouse, entity store, text index, vector DB), views,
  entity importance;
* :mod:`repro.live` — the live KG: streaming construction, KGQ query language,
  planner/executor, intents, multi-turn context, curation;
* :mod:`repro.ml` — learned string similarity, the NERD stack, KG embeddings;
* :mod:`repro.datagen` — the synthetic world, noisy sources, live streams, and
  annotated text corpora used to evaluate everything against known truth;
* :mod:`repro.baselines` — the legacy systems the paper compares against;
* :class:`repro.saga.SagaPlatform` — the end-to-end platform facade.
"""

from repro.saga import SagaMetrics, SagaPlatform

__version__ = "0.1.0"

__all__ = ["SagaMetrics", "SagaPlatform", "__version__"]
