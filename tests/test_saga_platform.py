"""Integration tests for the end-to-end Saga platform facade."""

import pytest

from repro import SagaPlatform
from repro.datagen import evolve_source
from repro.ingestion import AlignmentConfig, PGF, EntityTransformer
from repro.ingestion.importers import InMemoryImporter


def test_platform_ingests_all_sources(constructed_platform, source_suite):
    metrics = constructed_platform.metrics()
    # The session-scoped platform may have consumed extra payloads in other
    # integration tests, so the counts are lower bounds.
    assert metrics.sources >= len(source_suite)
    assert metrics.facts > 0
    assert metrics.entities > 0
    assert metrics.engine_operations >= len(source_suite)
    assert all(lag == 0 for lag in metrics.store_freshness.values())


def test_platform_cross_source_linking_merges_duplicates(constructed_platform, source_suite,
                                                         truth_map, world):
    link_table = constructed_platform.construction.link_table
    # At least some entities covered by two sources must share a KG id.
    by_truth = {}
    for source_entity_id, kg_id in link_table.items():
        truth_id = truth_map.get(source_entity_id)
        if truth_id:
            by_truth.setdefault(truth_id, set()).add(kg_id)
    multi_source = [truth_id for truth_id, kg_ids in by_truth.items() if len(kg_ids) == 1]
    merged_fraction = len(multi_source) / max(len(by_truth), 1)
    assert merged_fraction > 0.5


def test_platform_serving_layer_answers_queries(constructed_platform, world):
    engine = constructed_platform.graph_engine
    artist = world.of_type("music_artist")[0]
    hits = engine.search(artist.name, k=5)
    assert hits, f"full-text search should find {artist.name}"
    document = engine.entity(hits[0].doc_id)
    assert document is not None
    assert document.facts or document.types


def test_platform_incremental_second_snapshot(constructed_platform, world, source_suite):
    source = source_suite[0]
    evolved = evolve_source(world, source, added_fraction=0.2, updated_fraction=0.2,
                            deleted_fraction=0.05)
    facts_before = constructed_platform.graph_engine.triples.fact_count()
    report = constructed_platform.ingest_snapshot(source.source_id, evolved.entities)
    assert report.source_id == source.source_id
    summary = report.summary()
    assert summary["linked_added"] >= 0
    assert constructed_platform.graph_engine.triples.fact_count() != facts_before or (
        summary["facts_added"] == 0
    )
    assert all(lag == 0 for lag in constructed_platform.graph_engine.freshness().values())


def test_platform_annotation_and_live_graph(constructed_platform, world, live_events):
    platform = constructed_platform
    artist = world.of_type("music_artist")[0]
    annotations = platform.annotate(f"A new single from {artist.name} tops the charts.")
    assert annotations, "the artist mention should be detected"
    platform.ingest_live_events(live_events[:20])
    stats = platform.live.stats()
    assert stats["events_processed"] >= 1
    assert stats["documents"] > 0


def test_platform_source_onboarding_with_alignment():
    platform = SagaPlatform()
    alignment = AlignmentConfig(source_id="moviefeed", type_map={"film": "movie"})
    alignment.pgfs.extend([
        PGF("name", ("title",)),
        PGF("genre", ("category",)),
    ])
    transformer = EntityTransformer(source_id="moviefeed", id_column="movie_id",
                                    type_column="kind", default_type="movie")
    platform.register_source("moviefeed", transformer=transformer, alignment=alignment)
    importer = InMemoryImporter([
        {"movie_id": "m1", "kind": "film", "title": "The Lost Kingdom", "category": "adventure"},
        {"movie_id": "m2", "kind": "film", "title": "Silent Harbor", "category": "drama"},
    ])
    report = platform.ingest_importer("moviefeed", importer)
    assert report.linked_added == 2
    kg_id = platform.construction.link_table["moviefeed:m1"]
    assert platform.graph_engine.triples.value_of(kg_id, "genre") == "adventure"
    assert platform.graph_engine.triples.value_of(kg_id, "name") == "The Lost Kingdom"


def test_platform_unregistered_source_rejected(constructed_platform):
    from repro.errors import IngestionError

    with pytest.raises(IngestionError):
        constructed_platform.ingest_snapshot("never_registered", [])
