"""View lifecycle tests: drop cascades, re-registration, LSN watermarks,
selective maintenance closures, batched flushing, and live serving freshness."""

import pytest

from repro.engine.graph_engine import GraphEngine
from repro.engine.views import ViewCatalog, ViewDefinition, ViewManager
from repro.errors import LiveGraphError, ViewError
from repro.live.engine import LiveGraphEngine
from repro.model.provenance import Provenance
from repro.model.triples import ExtendedTriple, TripleStore


def triple(subject, predicate, obj, source="wiki"):
    return ExtendedTriple(subject=subject, predicate=predicate, obj=obj,
                          provenance=Provenance.from_source(source, 0.9))


def make_chain_catalog(calls, dropped=None):
    """base -> shared -> (left, right); creates append to *calls*, drops to *dropped*."""
    dropped = dropped if dropped is not None else []
    catalog = ViewCatalog()

    def register(name, dependencies=(), value=1):
        def create(context):
            calls.append(name)
            for dependency in dependencies:
                context.artifact(dependency)
            return value

        catalog.register(ViewDefinition(
            name, "analytics", create=create, dependencies=dependencies,
            drop=lambda ctx, name=name: dropped.append(name),
        ))

    register("base", value=[1, 2, 3])
    register("shared", dependencies=("base",), value=3)
    register("left", dependencies=("shared",), value=30)
    register("right", dependencies=("shared",), value=4)
    return catalog, dropped


# ------------------------------------------------------------------ #
# drop cascade
# ------------------------------------------------------------------ #
def test_drop_cascades_invalidation_to_transitive_dependents():
    calls = []
    catalog, dropped = make_chain_catalog(calls)
    manager = ViewManager(catalog, engines={})
    manager.materialize()
    removed = manager.drop("base")
    assert set(removed) == {"base", "shared", "left", "right"}
    # dependents are dropped first (reverse topological order)
    assert dropped.index("left") < dropped.index("shared")
    assert dropped.index("right") < dropped.index("shared")
    assert dropped.index("shared") < dropped.index("base")
    for name in ("base", "shared", "left", "right"):
        assert not manager.is_materialized(name)
        with pytest.raises(ViewError):
            manager.artifact(name)
    # invalidated dependents keep their counters for observability
    assert manager.states["left"].invalidations == 1


def test_drop_without_cascade_is_rejected_while_dependents_are_live():
    calls = []
    catalog, _ = make_chain_catalog(calls)
    manager = ViewManager(catalog, engines={})
    manager.materialize()
    with pytest.raises(ViewError, match="cascade"):
        manager.drop("shared", cascade=False)
    assert manager.is_materialized("shared")
    # once the dependents are gone, a non-cascading drop is fine
    manager.drop("left")
    manager.drop("right")
    assert manager.drop("shared", cascade=False) == ["shared"]


# ------------------------------------------------------------------ #
# skipped-dependency fail-fast
# ------------------------------------------------------------------ #
def test_update_fails_fast_when_dependency_was_never_materialized():
    calls = []
    catalog, _ = make_chain_catalog(calls)
    manager = ViewManager(catalog, engines={})
    manager.materialize()
    # simulate an operator wiping the dependency's materialization out-of-band
    manager.states["shared"].materialized = False
    manager.states["shared"].artifact = None
    with pytest.raises(ViewError, match="'left'.*shared.*never"):
        manager.update(["kg:e1"])


# ------------------------------------------------------------------ #
# re-registration
# ------------------------------------------------------------------ #
def test_reregistration_resets_state_of_view_and_dependents():
    calls = []
    catalog, _ = make_chain_catalog(calls)
    manager = ViewManager(catalog, engines={})
    manager.materialize()
    assert manager.artifact("shared") == 3
    catalog.register(ViewDefinition("shared", "analytics",
                                    create=lambda ctx: "redefined",
                                    dependencies=("base",)))
    for name in ("shared", "left", "right"):
        assert not manager.is_materialized(name)
        with pytest.raises(ViewError):
            manager.artifact(name)
    assert manager.is_materialized("base")        # untouched by the redefinition
    manager.materialize(["shared"])
    assert manager.artifact("shared") == "redefined"


def test_reregistration_can_be_rejected_and_cycles_are_refused():
    calls = []
    catalog, _ = make_chain_catalog(calls)
    with pytest.raises(ViewError, match="already registered"):
        catalog.register(ViewDefinition("shared", "analytics", lambda ctx: 1),
                         replace=False)
    with pytest.raises(ViewError, match="cycle"):
        catalog.register(ViewDefinition("base", "analytics", lambda ctx: 1,
                                        dependencies=("left",)))
    # the failed re-registration must not have corrupted the catalog
    assert catalog.get("base").dependencies == ()
    assert catalog.execution_order(["left"]) == ["base", "shared", "left"]


# ------------------------------------------------------------------ #
# selective maintenance
# ------------------------------------------------------------------ #
def make_scoped_catalog():
    catalog = ViewCatalog()
    catalog.register(ViewDefinition(
        "a_root", "analytics", create=lambda ctx: "a",
        update=lambda ctx, changed: "a+" + ",".join(changed),
        scope=lambda entity_id: entity_id.startswith("a:"),
    ))
    catalog.register(ViewDefinition(
        "b_root", "analytics", create=lambda ctx: "b",
        scope=lambda entity_id: entity_id.startswith("b:"),
    ))
    catalog.register(ViewDefinition(
        "a_child", "analytics",
        create=lambda ctx: ctx.artifact("a_root") + "/child",
        dependencies=("a_root",),
        scope=lambda entity_id: False,      # only transitively affected
    ))
    return catalog


def test_selective_update_rebuilds_only_the_affected_closure():
    catalog = make_scoped_catalog()
    manager = ViewManager(catalog, engines={})
    manager.materialize()
    timings = manager.update(["a:1"])
    assert set(timings) == {"a_root", "a_child"}
    assert manager.artifact("a_root") == "a+a:1"
    assert manager.artifact("a_child") == "a+a:1/child"
    assert manager.artifact("b_root") == "b"
    assert manager.states["b_root"].skipped_updates == 1
    # non-selective mode rebuilds everything, proving strictly more work
    full = manager.update(["a:1"], selective=False)
    assert set(full) == {"a_root", "b_root", "a_child"}


def test_affected_closure_helper_orders_topologically():
    catalog = make_scoped_catalog()
    assert catalog.affected_closure(["a:1"]) == ["a_root", "a_child"]
    assert catalog.affected_closure(["b:9"]) == ["b_root"]
    assert catalog.affected_closure([]) == []


# ------------------------------------------------------------------ #
# batched flushing and LSN watermarks
# ------------------------------------------------------------------ #
def test_batched_flush_accumulates_until_batch_size():
    clock = {"lsn": 0}
    catalog = make_scoped_catalog()
    manager = ViewManager(catalog, engines={}, lsn_source=lambda: clock["lsn"],
                          batch_size=3)
    clock["lsn"] = 1
    manager.materialize()
    assert manager.built_at_lsn("a_root") == 1
    clock["lsn"] = 2
    assert manager.enqueue(["a:1"], lsn=2) == {}
    clock["lsn"] = 3
    assert manager.enqueue(["a:2"], lsn=3) == {}
    assert manager.pending_changes() == ["a:1", "a:2"]
    assert manager.lagging_views() == {"a_child": 2, "a_root": 2, "b_root": 2}
    clock["lsn"] = 4
    timings = manager.enqueue(["b:1"], lsn=4)     # third distinct id: auto-flush
    assert set(timings) == {"a_root", "a_child", "b_root"}
    assert manager.pending_changes() == []
    assert manager.flushes == 1
    assert manager.lagging_views() == {}
    assert manager.built_at_lsn("a_root") == 4


def test_flush_skips_views_already_at_target_lsn():
    clock = {"lsn": 1}
    catalog = make_scoped_catalog()
    manager = ViewManager(catalog, engines={}, lsn_source=lambda: clock["lsn"])
    manager.enqueue(["a:0"], lsn=1)               # before materialization: dropped
    assert manager.pending_changes() == []
    manager.materialize()                          # built at LSN 1
    manager.enqueue(["a:1"], lsn=1)                # delta the build already covers
    assert manager.flush() == {}                   # watermark gate: nothing rebuilt
    assert manager.states["a_root"].skipped_updates == 1


def test_lsn_watermarks_flow_through_graph_engine_metadata(ontology):
    store = TripleStore([
        triple("kg:a1", "type", "music_artist"),
        triple("kg:a1", "name", "Echo Valley"),
        triple("kg:l1", "type", "record_label"),
        triple("kg:l1", "name", "Apex Records"),
    ])
    engine = GraphEngine(ontology)
    engine.publish_store(store, source_id="construction")      # LSN 1
    engine.register_standard_views()
    engine.materialize_views()
    head = engine.log.head_lsn()
    assert engine.view_manager.built_at_lsn("entity_features") == head
    assert engine.metadata.view_watermark("entity_features") == head
    assert engine.view_freshness() == {}

    store.add(triple("kg:a1", "genre", "pop", source="musicdb"))
    engine.publish_subjects(store, ["kg:a1"], source_id="musicdb")   # LSN 2
    new_head = engine.log.head_lsn()
    assert new_head == head + 1
    assert engine.view_manager.pending_changes() == ["kg:a1"]
    assert set(engine.view_freshness()) == {
        "entity_importance", "entity_features", "ranked_entity_index",
        "entity_neighbourhood",
    }
    timings = engine.update_views()               # flush the replay-fed delta
    assert timings
    assert engine.view_freshness() == {}
    assert engine.metadata.view_watermark("entity_features") == new_head
    # store watermarks are untouched by view bookkeeping
    assert engine.minimum_version() == new_head


def test_remove_source_marks_full_refresh(ontology):
    store = TripleStore([
        triple("kg:a1", "type", "music_artist"),
        triple("kg:a1", "name", "Echo Valley"),
        triple("kg:p1", "type", "person", source="fanwiki"),
    ])
    engine = GraphEngine(ontology)
    engine.publish_store(store, source_id="construction")
    engine.register_standard_views()
    engine.materialize_views()
    engine.remove_source("fanwiki")
    timings = engine.update_views()
    assert set(timings) == {"entity_importance", "entity_features",
                            "ranked_entity_index", "entity_neighbourhood"}
    assert engine.view_freshness() == {}


def test_deletions_resolve_through_pre_delete_scope_snapshots(ontology):
    """A deleted entity no longer matches any store-derived scope, but the
    pre-delete scope snapshot remembers the view contained it — the flush
    must maintain exactly that view instead of skipping it (or, as before
    snapshots, widening to every view)."""
    store = TripleStore([
        triple("kg:s1", "type", "song"),
        triple("kg:s1", "name", "First Song"),
        triple("kg:s2", "type", "song"),
        triple("kg:s2", "name", "Second Song"),
        triple("kg:l1", "type", "record_label"),
        triple("kg:l1", "name", "Apex Records"),
    ])
    engine = GraphEngine(ontology)
    engine.publish_store(store, source_id="construction")
    for entity_type, view_name in (("song", "song_list"), ("record_label", "label_list")):
        engine.register_view(ViewDefinition(
            view_name, "analytics",
            create=lambda ctx, entity_type=entity_type: sorted(
                s for s in engine.triples.subjects()
                if engine.triples.value_of(s, "type") == entity_type
            ),
            scope=lambda eid, entity_type=entity_type: (
                engine.triples.value_of(eid, "type") == entity_type
            ),
        ))
    engine.materialize_views()
    assert engine.view_artifact("song_list") == ["kg:s1", "kg:s2"]
    store.remove_subject("kg:s1")
    engine.publish_subjects(store, [], deleted_subjects=["kg:s1"],
                            source_id="construction")
    timings = engine.update_views()
    assert "song_list" in timings                  # not skipped despite the scope
    assert "label_list" not in timings             # ...and the delete stayed selective
    assert engine.view_manager.states["label_list"].skipped_updates == 1
    assert engine.view_artifact("song_list") == ["kg:s2"]
    assert engine.view_freshness() == {}


def test_live_reloads_after_view_redefinition_at_same_lsn(served_engine):
    engine, _ = served_engine
    live = LiveGraphEngine()
    engine.register_view(ViewDefinition(
        "tiny", "analytics", create=lambda ctx: [{"subject": "kg:a1", "name": "v1"}],
    ))
    engine.materialize_views(["tiny"])
    assert live.load_view_artifact(engine, "tiny") == 1
    assert live.index.get("tiny:kg:a1").name == "v1"
    # redefine and rebuild without any new log records: same LSN, new data
    engine.register_view(ViewDefinition(
        "tiny", "analytics", create=lambda ctx: [{"subject": "kg:a1", "name": "v2"}],
    ))
    engine.materialize_views(["tiny"])
    assert live.load_view_artifact(engine, "tiny") == 1
    assert live.index.get("tiny:kg:a1").name == "v2"


def test_full_refresh_rebuilds_instead_of_blind_incremental_update(ontology):
    """An unknown-delta refresh must not feed update procs an empty change set."""
    store = TripleStore([
        triple("kg:a1", "type", "music_artist"),
        triple("kg:a1", "name", "Echo Valley"),
        triple("kg:p1", "type", "person", source="fanwiki"),
    ])
    engine = GraphEngine(ontology)
    engine.publish_store(store, source_id="construction")
    update_calls = []
    engine.register_view(ViewDefinition(
        "subject_count", "analytics",
        create=lambda ctx: len(engine.triples.subjects()),
        update=lambda ctx, changed: update_calls.append(list(changed)) or
        len(engine.triples.subjects()),
    ))
    engine.materialize_views()
    assert engine.view_artifact("subject_count") == 2
    engine.remove_source("fanwiki")
    engine.update_views()
    assert update_calls == []                      # create ran, not update([])
    assert engine.view_artifact("subject_count") == 1


def test_deferred_replay_does_not_overstamp_view_watermarks(ontology):
    """Views built from lagging stores must not claim log-head freshness."""
    store = TripleStore([
        triple("kg:a1", "type", "music_artist"),
        triple("kg:a1", "name", "Echo Valley"),
    ])
    engine = GraphEngine(ontology)
    engine.register_view(ViewDefinition(
        "subject_list", "analytics",
        create=lambda ctx: sorted(engine.triples.subjects()),
    ))
    engine.publish_store(store, replay=False)      # LSN 1 appended, no store replay
    engine.materialize_views()
    # the build read empty stores, so it reflects LSN 0, not the log head
    assert engine.view_artifact("subject_list") == []
    assert engine.view_manager.built_at_lsn("subject_list") == 0
    engine.replay()
    timings = engine.update_views()
    assert "subject_list" in timings               # the delta was not skipped
    assert engine.view_artifact("subject_list") == ["kg:a1"]
    assert engine.view_manager.built_at_lsn("subject_list") == 1


def test_failed_flush_preserves_the_pending_delta():
    clock = {"lsn": 1}
    catalog = ViewCatalog()
    boom = {"on": False}

    def create(context):
        if boom["on"]:
            raise RuntimeError("transient store failure")
        return "ok"

    catalog.register(ViewDefinition("fragile", "analytics", create=create))
    manager = ViewManager(catalog, engines={}, lsn_source=lambda: clock["lsn"])
    manager.materialize()
    clock["lsn"] = 2
    manager.enqueue(["kg:e1"], lsn=2)
    boom["on"] = True
    with pytest.raises(RuntimeError):
        manager.flush()
    assert manager.pending_changes() == ["kg:e1"]  # delta survived the failure
    boom["on"] = False
    assert set(manager.flush()) == {"fragile"}
    assert manager.pending_changes() == []


def test_listener_errors_do_not_unwind_replay_or_redeliver(ontology):
    store = TripleStore([
        triple("kg:a1", "type", "music_artist"),
        triple("kg:a1", "name", "Echo Valley"),
    ])
    engine = GraphEngine(ontology)
    seen = []

    def flaky_listener(record, payload):
        seen.append(record.lsn)
        raise RuntimeError("listener exploded")

    engine.coordinator.add_progress_listener(flaky_listener)
    engine.publish_store(store)                    # replay must not raise
    assert seen == [1]
    assert engine.coordinator.listener_errors == ["lsn=1: listener exploded"]
    engine.replay()                                # no redelivery of LSN 1
    assert seen == [1]


def test_live_reload_removes_rows_that_left_the_artifact(served_engine):
    engine, store = served_engine
    live = LiveGraphEngine()
    assert live.load_view_artifact(engine, "entity_features") > 0
    assert live.index.get("entity_features:kg:l1") is not None
    store.remove_subject("kg:l1")
    engine.publish_subjects(store, [], deleted_subjects=["kg:l1"],
                            source_id="construction")
    engine.update_views()
    assert live.load_view_artifact(engine, "entity_features") > 0
    assert live.index.get("entity_features:kg:l1") is None     # no stale serving
    assert live.index.get("entity_features:kg:a1") is not None


def test_drop_view_cascade_via_graph_engine(ontology):
    store = TripleStore([
        triple("kg:a1", "type", "music_artist"),
        triple("kg:a1", "name", "Echo Valley"),
    ])
    engine = GraphEngine(ontology)
    engine.publish_store(store)
    engine.register_standard_views()
    engine.materialize_views()
    removed = engine.drop_view("entity_features")
    assert set(removed) == {"entity_features", "ranked_entity_index",
                            "entity_neighbourhood"}
    with pytest.raises(ViewError):
        engine.view_artifact("entity_neighbourhood")
    assert engine.view_manager.is_materialized("entity_importance")


# ------------------------------------------------------------------ #
# live serving freshness
# ------------------------------------------------------------------ #
@pytest.fixture
def served_engine(ontology):
    store = TripleStore([
        triple("kg:a1", "type", "music_artist"),
        triple("kg:a1", "name", "Echo Valley"),
        triple("kg:l1", "type", "record_label"),
        triple("kg:l1", "name", "Apex Records"),
    ])
    engine = GraphEngine(ontology)
    engine.publish_store(store, source_id="construction")
    engine.register_standard_views()
    engine.materialize_views()
    return engine, store


def test_live_sync_stable_view_skips_unchanged_upstream(served_engine):
    engine, store = served_engine
    live = LiveGraphEngine()
    assert live.sync_stable_view(engine) > 0
    assert live.index.watermark("stable") == engine.minimum_version()
    assert live.sync_stable_view(engine) == 0          # upstream unchanged
    store.add(triple("kg:a1", "genre", "pop", source="musicdb"))
    engine.publish_subjects(store, ["kg:a1"], source_id="musicdb")
    assert live.sync_stable_view(engine) > 0           # LSN advanced: reload


def test_live_sync_with_different_type_filter_is_not_skipped(served_engine):
    engine, _ = served_engine
    live = LiveGraphEngine()
    assert live.sync_stable_view(engine, ["music_artist"]) == 1
    # a different filter at the same upstream version is its own feed
    assert live.sync_stable_view(engine, ["record_label"]) == 1
    assert live.sync_stable_view(engine, ["record_label"]) == 0
    assert live.index.watermark("stable:music_artist") == engine.minimum_version()
    assert live.index.watermark("stable:record_label") == engine.minimum_version()


def test_live_rejects_malformed_rows_without_partial_rewrite(served_engine):
    engine, _ = served_engine
    live = LiveGraphEngine()
    live.load_view_artifact(engine, "entity_features")
    engine.register_view(ViewDefinition(
        "broken_rows", "analytics",
        create=lambda ctx: [{"subject": "kg:a1", "name": "ok"}, {"name": "no subject"}],
    ))
    engine.materialize_views(["broken_rows"])
    before = len(live.index)
    with pytest.raises(LiveGraphError, match="subject"):
        live.load_view_artifact(engine, "broken_rows")
    assert len(live.index) == before                   # nothing was half-written
    assert live.index.watermark("view:broken_rows") == 0


def test_live_serves_view_artifact_with_watermark_gating(served_engine):
    engine, store = served_engine
    live = LiveGraphEngine()
    loaded = live.load_view_artifact(engine, "entity_features")
    assert loaded > 0
    document = live.index.get("entity_features:kg:a1")
    assert document is not None
    assert document.name == "Echo Valley"
    assert live.index.is_fresh("view:entity_features", engine.log.head_lsn())
    assert live.load_view_artifact(engine, "entity_features") == 0   # fresh: skip
    store.add(triple("kg:a1", "genre", "pop", source="musicdb"))
    engine.publish_subjects(store, ["kg:a1"], source_id="musicdb")
    engine.update_views()
    assert live.load_view_artifact(engine, "entity_features") > 0    # stale: reload
    assert "feed_watermarks" in live.stats()


def test_live_refuses_artifacts_of_dropped_views(served_engine):
    engine, _ = served_engine
    live = LiveGraphEngine()
    engine.drop_view("entity_importance")              # cascades to features
    with pytest.raises(ViewError):
        live.load_view_artifact(engine, "entity_features")


def test_live_rejects_non_row_shaped_artifacts(served_engine):
    engine, _ = served_engine
    live = LiveGraphEngine()
    # ranked_entity_index materializes to a document count, not rows
    with pytest.raises(LiveGraphError, match="row-shaped"):
        live.load_view_artifact(engine, "ranked_entity_index")
