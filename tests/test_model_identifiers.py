"""Tests for identifier management (repro.model.identifiers)."""

import pytest

from repro.errors import DataModelError
from repro.model.identifiers import (
    IdGenerator,
    content_hash,
    is_kg_identifier,
    qualify,
    relationship_id,
    split_identifier,
)


def test_qualify_joins_namespace_and_local_id():
    assert qualify("musicdb", "artist/42") == "musicdb:artist/42"


def test_qualify_rejects_empty_parts():
    with pytest.raises(DataModelError):
        qualify("", "x")
    with pytest.raises(DataModelError):
        qualify("ns", "")


def test_split_identifier_roundtrip():
    namespace, local = split_identifier("wiki:Q42")
    assert namespace == "wiki"
    assert local == "Q42"


def test_split_identifier_rejects_malformed():
    with pytest.raises(DataModelError):
        split_identifier("no-namespace")
    with pytest.raises(DataModelError):
        split_identifier(":empty")


def test_is_kg_identifier():
    assert is_kg_identifier("kg:e00000001")
    assert not is_kg_identifier("musicdb:artist/1")


def test_content_hash_is_deterministic_and_order_sensitive():
    assert content_hash("a", "b") == content_hash("a", "b")
    assert content_hash("a", "b") != content_hash("b", "a")
    assert len(content_hash("a")) == 16


def test_id_generator_mints_sequential_ids():
    generator = IdGenerator()
    first = generator.next_id()
    second = generator.next_id()
    assert first == "kg:e00000001"
    assert second == "kg:e00000002"


def test_id_generator_is_deterministic_across_instances():
    a = IdGenerator()
    b = IdGenerator()
    assert [a.next_id() for _ in range(3)] == [b.next_id() for _ in range(3)]


def test_id_generator_custom_namespace_and_start():
    generator = IdGenerator(namespace="test", prefix="x", width=3, start=7)
    assert generator.next_id() == "test:x007"


def test_relationship_id_is_deterministic():
    first = relationship_id("kg:e1", "educated_at", "school=UW")
    second = relationship_id("kg:e1", "educated_at", "school=UW")
    other = relationship_id("kg:e1", "educated_at", "school=MIT")
    assert first == second
    assert first != other
    assert first.startswith("rel:")
