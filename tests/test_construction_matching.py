"""Tests for matching models and features (repro.construction.matching)."""

import pytest

from repro.construction.matching import (
    LearnedMatcher,
    MatcherRegistry,
    RuleBasedMatcher,
    ScoredPair,
    best_name_similarity,
    date_agreement,
    default_features,
    feature_vector,
    score_pairs,
    shared_predicate_agreement,
    type_compatibility,
)
from repro.construction.pairs import CandidatePair
from repro.construction.records import LinkableRecord
from repro.errors import LinkingError
from repro.model.ontology import default_ontology


def record(record_id, name, entity_type="person", is_kg=False, **props):
    properties = {"name": [name] if isinstance(name, str) else list(name)}
    for key, value in props.items():
        properties[key] = value if isinstance(value, list) else [value]
    return LinkableRecord(record_id=record_id, entity_type=entity_type,
                          properties=properties, is_kg=is_kg)


@pytest.fixture(scope="module")
def onto():
    return default_ontology()


def test_name_features(onto):
    same = (record("a", "Robert Smith"), record("b", ["Bob Smith", "Robert Smith"]))
    different = (record("a", "Robert Smith"), record("c", "Velvet Dreams"))
    assert best_name_similarity(*same) == 1.0
    assert best_name_similarity(*different) < 0.6
    assert best_name_similarity(record("x", []), record("y", "A")) == 0.0


def test_shared_predicate_and_date_agreement():
    left = record("a", "X", genre="pop", birth_date="1980-01-02")
    right = record("b", "X", genre="pop", birth_date="1980-06-01")
    unrelated = record("c", "X", genre="jazz", birth_date="1955")
    assert shared_predicate_agreement(left, right) == 1.0
    assert shared_predicate_agreement(left, unrelated) == 0.0
    assert date_agreement(left, right) == 1.0
    assert date_agreement(left, unrelated) == 0.0
    assert date_agreement(record("d", "X"), right) == 0.0


def test_type_compatibility_feature(onto):
    feature = type_compatibility(onto)
    artist = record("a", "X", entity_type="music_artist")
    person = record("b", "X", entity_type="person")
    movie = record("c", "X", entity_type="movie")
    untyped = record("d", "X", entity_type="")
    assert feature(artist, person) == 1.0
    assert feature(artist, movie) == 0.0
    assert feature(artist, untyped) == 0.5


def test_rule_based_matcher_scores_are_calibrated(onto):
    matcher = RuleBasedMatcher(default_features(onto))
    exact = matcher.score(record("a", "Robert Smith", genre="pop"),
                          record("b", "Robert Smith", genre="pop"))
    fuzzy = matcher.score(record("a", "Robert Smith"), record("b", "Robret Smith"))
    different = matcher.score(record("a", "Robert Smith"), record("b", "Velvet Dreams"))
    assert 0.0 <= different < 0.5 < exact <= 1.0
    assert different < fuzzy < exact


def test_learned_matcher_fits_and_beats_chance(onto):
    features = default_features(onto)
    positives = [
        (record(f"s:{i}", f"Artist {i}", genre="pop", birth_date="1980"),
         record(f"k:{i}", f"Artist {i}", genre="pop", birth_date="1980", is_kg=True))
        for i in range(10)
    ]
    negatives = [
        (record(f"s:{i}", f"Artist {i}"), record(f"k:{i+50}", f"Other {i+50}", is_kg=True))
        for i in range(10)
    ]
    pairs = positives + negatives
    labels = [1] * 10 + [0] * 10
    matcher = LearnedMatcher(features).fit(pairs, labels)
    metrics = matcher.evaluate(pairs, labels)
    assert metrics["f1"] > 0.8
    assert matcher.score(*positives[0]) > matcher.score(*negatives[0])


def test_learned_matcher_requires_fit_and_valid_data(onto):
    matcher = LearnedMatcher(default_features(onto))
    with pytest.raises(LinkingError):
        matcher.score(record("a", "X"), record("b", "X"))
    with pytest.raises(LinkingError):
        matcher.fit([], [])
    with pytest.raises(LinkingError):
        matcher.fit([(record("a", "X"), record("b", "X"))], [1, 0])


def test_feature_vector_shape(onto):
    features = default_features(onto)
    vector = feature_vector(features, record("a", "X"), record("b", "X"))
    assert vector.shape == (len(features),)


def test_matcher_registry_and_score_pairs(onto):
    default = RuleBasedMatcher(default_features(onto))
    strict = RuleBasedMatcher(default_features(onto), bias=-8.0)
    registry = MatcherRegistry(default=default)
    registry.register("movie", strict)
    assert registry.matcher_for("movie") is strict
    assert registry.matcher_for("person") is default

    pair = CandidatePair(record("a", "Same Name"), record("b", "Same Name"))
    movie_pair = CandidatePair(record("c", "Same Name", entity_type="movie"),
                               record("d", "Same Name", entity_type="movie"))
    scored = score_pairs([pair, movie_pair], registry)
    assert isinstance(scored[0], ScoredPair)
    assert scored[0].probability > scored[1].probability
