"""Lint guard: TripleStore private internals stay inside the model layer.

The columnar refactor (docs/store.md) made the store's layout an
implementation detail: per-predicate column partitions, term dictionaries, and
the key/subject/object/source indexes.  Consumers must go through the public
API — ``facts_about``/``value_of`` lookups, the batch operators, ``to_rows``/
``canonical_rows`` — so the layout can keep evolving (and the copy-on-write
invariants can hold) without auditing every caller.

This test greps the tree for attribute access to the private fields and fails
with the offending locations.  ``src/repro/model/`` owns the layout, and
``src/repro/baselines/legacy_store.py`` is the frozen pre-refactor
implementation whose same-named fields are its own.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories whose Python files must not reach into the store's internals.
SCANNED_DIRS = ("src", "tests", "benchmarks", "examples")

#: The store-private fields.  ``_by_predicate`` is deliberately absent:
#: the analytics engine has an unrelated index of that name.
PRIVATE_FIELDS = (
    "by_key",
    "by_subject",
    "by_object",
    "by_source",
    "partitions",
    "subject_terms",
    "predicate_terms",
    "locale_terms",
    "rid_terms",
    "object_terms",
    "facts_cache",
    "none_rid",
    "none_rpred",
)

PRIVATE_ACCESS = re.compile(r"\._(?:" + "|".join(PRIVATE_FIELDS) + r")\b")

#: Files allowed to touch the layout, relative to the repo root.
ALLOWED = (
    "src/repro/model/",
    "src/repro/baselines/legacy_store.py",
    "tests/test_lint_store_internals.py",
)


def test_store_internals_stay_in_model_layer():
    violations = []
    for directory in SCANNED_DIRS:
        for path in sorted((REPO_ROOT / directory).rglob("*.py")):
            relative = path.relative_to(REPO_ROOT).as_posix()
            if relative.startswith(ALLOWED) or relative in ALLOWED:
                continue
            for number, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if PRIVATE_ACCESS.search(line):
                    violations.append(f"{relative}:{number}: {line.strip()}")
    assert not violations, (
        "TripleStore private internals accessed outside src/repro/model/ "
        "(use the public store API instead):\n" + "\n".join(violations)
    )
