"""Tests for the ontology (repro.model.ontology)."""

import pytest

from repro.errors import OntologyError
from repro.model.ontology import (
    Cardinality,
    Ontology,
    ValueKind,
    default_ontology,
)


@pytest.fixture
def small_ontology():
    onto = Ontology()
    onto.add_type("person")
    onto.add_type("music_artist", parent="person")
    onto.add_type("place")
    onto.add_predicate("name")
    onto.add_predicate("birth_date", cardinality=Cardinality.SINGLE, domain=("person",))
    onto.add_predicate(
        "birth_place", ValueKind.REFERENCE, Cardinality.SINGLE,
        domain=("person",), range_types=("place",),
    )
    onto.add_predicate("popularity", volatile=True)
    return onto


def test_add_type_requires_known_parent(small_ontology):
    with pytest.raises(OntologyError):
        small_ontology.add_type("song", parent="creative_work")
    with pytest.raises(OntologyError):
        small_ontology.add_type("")


def test_add_predicate_validates_referenced_types(small_ontology):
    with pytest.raises(OntologyError):
        small_ontology.add_predicate("bad", domain=("nonexistent",))


def test_lookups_and_errors(small_ontology):
    assert small_ontology.has_type("person")
    assert not small_ontology.has_type("movie")
    assert small_ontology.has_predicate("name")
    with pytest.raises(OntologyError):
        small_ontology.type("movie")
    with pytest.raises(OntologyError):
        small_ontology.predicate("missing")


def test_hierarchy_queries(small_ontology):
    assert small_ontology.ancestors("music_artist") == ["person", "entity"]
    assert small_ontology.is_subtype("music_artist", "person")
    assert small_ontology.is_subtype("person", "person")
    assert not small_ontology.is_subtype("person", "music_artist")
    assert small_ontology.common_supertype("music_artist", "person") == "person"
    assert small_ontology.common_supertype("music_artist", "place") == "entity"


def test_compatible_types(small_ontology):
    assert small_ontology.compatible_types("music_artist", "person")
    assert small_ontology.compatible_types("person", "music_artist")
    assert not small_ontology.compatible_types("person", "place")
    # unknown types fall back to equality
    assert small_ontology.compatible_types("alien", "alien")
    assert not small_ontology.compatible_types("alien", "person")


def test_predicates_for_type(small_ontology):
    names = [spec.name for spec in small_ontology.predicates_for_type("music_artist")]
    assert "birth_date" in names        # inherited through the hierarchy
    assert "name" in names              # domain-free predicate applies to all


def test_volatile_predicates(small_ontology):
    assert small_ontology.volatile_predicates() == {"popularity"}


def test_validate_fact(small_ontology):
    assert small_ontology.validate_fact("person", "birth_date") == []
    assert small_ontology.validate_fact("place", "birth_date") != []
    assert small_ontology.validate_fact("person", "unknown_pred") != []
    # functional predicate with an existing value
    violations = small_ontology.validate_fact("person", "birth_date", existing_value_count=1)
    assert any("functional" in v for v in violations)


def test_copy_is_independent(small_ontology):
    clone = small_ontology.copy()
    clone.add_type("movie")
    assert not small_ontology.has_type("movie")


def test_default_ontology_is_rich():
    onto = default_ontology()
    assert onto.has_type("music_artist")
    assert onto.has_type("sports_game")
    assert onto.has_predicate("educated_at")
    assert onto.predicate("educated_at").value_kind is ValueKind.COMPOSITE
    assert onto.predicate("birth_place").value_kind is ValueKind.REFERENCE
    assert "popularity" in onto.volatile_predicates()
    assert "home_score" in onto.volatile_predicates()
    assert onto.is_subtype("song", "creative_work")
