"""Tests for the live KV store and inverted graph index."""

import pytest

from repro.errors import LiveGraphError
from repro.live.index import GraphKVStore, InvertedGraphIndex, LiveEntityDocument, LiveIndex


def doc(entity_id, name, entity_type="sports_game", timestamp=1, facts=None, refs=None,
        is_live=True):
    return LiveEntityDocument(
        entity_id=entity_id, entity_type=entity_type, name=name,
        facts=facts or {}, references=refs or {}, timestamp=timestamp, is_live=is_live,
    )


def test_document_value_accessors_and_merge():
    document = doc("g1", "Game 1", facts={"home_score": [3]}, refs={"home_team": "kg:t1"})
    assert document.value("home_score") == 3
    assert document.value("home_team") == "kg:t1"
    assert document.values("home_team") == ["kg:t1"]
    newer = doc("g1", "Game 1", timestamp=5, facts={"home_score": [7]})
    document.merge_update(newer)
    assert document.value("home_score") == 7
    stale = doc("g1", "Game 1", timestamp=2, facts={"home_score": [1]})
    document.merge_update(stale)
    assert document.value("home_score") == 7             # stale update ignored


def test_kv_store_sharding_and_lookups():
    store = GraphKVStore(num_shards=4)
    for index in range(20):
        store.put(doc(f"g{index}", f"Game {index}"))
    assert len(store) == 20
    assert sum(store.shard_sizes()) == 20
    assert max(store.shard_sizes()) < 20                  # keys spread across shards
    assert store.get("g3").name == "Game 3"
    assert store.get("missing") is None
    assert "g3" in store
    assert len(store.by_type("sports_game")) == 20
    assert store.delete("g3") is True
    assert store.delete("g3") is False
    with pytest.raises(LiveGraphError):
        GraphKVStore(num_shards=0)


def test_kv_store_put_merges_same_entity():
    store = GraphKVStore()
    store.put(doc("g1", "Game 1", facts={"home_score": [0]}))
    store.put(doc("g1", "Game 1", timestamp=2, facts={"home_score": [5]}))
    assert len(store) == 1
    assert store.get("g1").value("home_score") == 5


def test_kv_store_replication():
    store = GraphKVStore()
    store.put(doc("g1", "Game 1"))
    replica = store.replicate()
    replica.put(doc("g2", "Game 2"))
    assert len(store) == 1 and len(replica) == 2
    assert replica.get("g1").name == "Game 1"


def test_inverted_index_name_and_value_lookup():
    index = InvertedGraphIndex()
    index.index_document(doc("g1", "Springfield Wolves vs Hanover Hawks",
                             facts={"game_status": ["final"]},
                             refs={"home_team": "kg:t1"}))
    index.index_document(doc("t1", "Springfield Wolves", entity_type="sports_team"))
    assert index.lookup_name("Springfield Wolves") == {"t1"}
    assert index.search_name_tokens("springfield wolves") == {"g1", "t1"}
    assert index.search_name_tokens("hanover hawks") == {"g1"}
    assert index.search_name_tokens("unknown tokens") == set()
    assert index.lookup_value("game_status", "FINAL") == {"g1"}
    assert index.lookup_value("home_team", "kg:t1") == {"g1"}
    index.remove("g1")
    assert index.search_name_tokens("hanover hawks") == set()


def test_live_index_maintains_both_structures():
    live = LiveIndex(num_shards=2)
    live.upsert(doc("g1", "Madison Arena game", facts={"home_score": [1]}))
    assert len(live) == 1
    assert live.get("g1").value("home_score") == 1
    assert live.inverted.search_name_tokens("madison arena") == {"g1"}
    # Updates re-index the merged document.
    live.upsert(doc("g1", "Madison Arena game", timestamp=2, facts={"home_score": [9]}))
    assert live.get("g1").value("home_score") == 9
    assert live.delete("g1") is True
    assert live.get("g1") is None
    assert live.inverted.search_name_tokens("madison arena") == set()
    assert live.upsert_many([doc("a", "A"), doc("b", "B")]) == 2

def test_kv_store_shard_layout_is_process_stable():
    """Shard placement must not depend on PYTHONHASHSEED.

    The store used the builtin ``hash`` for shard placement, which Python
    randomizes per process: two interpreters disagreed on which shard holds
    which key, so any layout shipped across processes (replica hand-off,
    serialized shard manifests) silently aliased.  Placement now goes through
    :func:`repro.hashing.stable_hash` — two fresh interpreters launched with
    *different* hash seeds must produce byte-identical layouts, matching the
    in-process store.
    """
    import json
    import os
    import pathlib
    import subprocess
    import sys

    import repro

    snippet = (
        "import json\n"
        "from repro.live.index import GraphKVStore, LiveEntityDocument\n"
        "store = GraphKVStore(num_shards=8)\n"
        "for i in range(64):\n"
        "    store.put(LiveEntityDocument(\n"
        "        entity_id=f'entity:{i:03d}', entity_type='thing', name=f'Entity {i}',\n"
        "        facts={}, references={}, timestamp=1, is_live=True))\n"
        "print(json.dumps([sorted(shard) for shard in store._shards]))\n"
    )
    src_dir = str(pathlib.Path(repro.__file__).resolve().parents[1])
    layouts = []
    for hash_seed in ("0", "12345"):
        env = dict(os.environ, PYTHONPATH=src_dir, PYTHONHASHSEED=hash_seed)
        output = subprocess.run(
            [sys.executable, "-c", snippet],
            env=env, capture_output=True, text=True, check=True,
        ).stdout
        layouts.append(json.loads(output))
    assert layouts[0] == layouts[1]

    store = GraphKVStore(num_shards=8)
    for i in range(64):
        store.put(doc(f"entity:{i:03d}", f"Entity {i}", entity_type="thing"))
    assert [sorted(shard) for shard in store._shards] == layouts[0]


def test_kv_store_get_many_and_type_partitions():
    store = GraphKVStore(num_shards=4)
    store.put(doc("g1", "Game 1"))
    store.put(doc("g2", "Game 2"))
    store.put(doc("t1", "Team 1", entity_type="sports_team"))
    store.put(doc("u1", "Untyped", entity_type=""))
    fetched = store.get_many(["g2", "missing", "g1", "g2"])
    assert sorted(fetched) == ["g1", "g2"]
    assert fetched["g2"].name == "Game 2"
    assert store.ids_by_type("sports_game") == {"g1", "g2"}
    assert store.ids_by_type("") == {"u1"}
    assert store.ids_by_type("absent") == frozenset()
    assert [d.entity_id for d in store.by_type("sports_game")] == ["g1", "g2"]
    # get_many counts one batched read, not one per id.
    reads_before = store.reads
    store.get_many(["g1", "g2", "t1"])
    assert store.reads == reads_before + 1


def test_kv_store_type_change_moves_partition():
    store = GraphKVStore()
    store.put(doc("x1", "Thing", entity_type="draft"))
    assert store.ids_by_type("draft") == {"x1"}
    store.put(doc("x1", "Thing", entity_type="published", timestamp=2))
    assert store.ids_by_type("draft") == frozenset()     # empty partition pruned
    assert store.ids_by_type("published") == {"x1"}
    assert [d.entity_id for d in store.by_type("published")] == ["x1"]
    store.delete("x1")
    assert store.ids_by_type("published") == frozenset()


def test_live_index_seed_selectivity_reports_postings_sizes():
    live = LiveIndex()
    live.upsert(doc("g1", "Alpha", facts={"status": ["final"]}))
    live.upsert(doc("g2", "Alpha", facts={"status": ["final"]}))
    live.upsert(doc("g3", "Beta", facts={"status": ["live"]}))
    assert live.seed_selectivity("status", "FINAL") == 2
    assert live.seed_selectivity("status", "live") == 1
    assert live.seed_selectivity("name", "alpha") == 2
    assert live.seed_selectivity("name", "Beta") == 1
    assert live.seed_selectivity("status", "unseen") == 0
