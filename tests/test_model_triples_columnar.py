"""Seeded equivalence suite: columnar TripleStore vs the frozen legacy store.

Random operation sequences (add / merge-provenance / discard / remove_subject /
remove_source / overwrite_source_partition / in-place fusion-style retracts /
snapshot) run against :class:`repro.model.triples.TripleStore` (columnar) and
:class:`repro.baselines.legacy_store.LegacyTripleStore` (the pre-refactor
implementation, kept verbatim), asserting ``canonical_rows()`` equality — the
single byte-level oracle — plus iteration order, serialized rows, and every
lookup surface.  The batch operators are additionally checked against their
row-at-a-time equivalents, and an end-to-end test publishes a columnar store
through the Graph Engine and cross-checks the primary store against a legacy
rebuild.

``store_seed`` is parametrized from the repo conftest: 25 sequences locally,
200 at the CI depth (``--runs-seeded``), 1000 in the nightly soak
(``--runs-seeded 1000``).
"""

import random

import pytest

from repro.baselines.legacy_store import LegacyTripleStore
from repro.model.provenance import Provenance
from repro.model.triples import ExtendedTriple, TripleStore

SUBJECTS = [f"kg:e{i}" for i in range(8)]
SIMPLE_PREDICATES = ["name", "genre", "popularity", "spouse"]
COMPOSITE_PREDICATE = "educated_at"
RELATIONSHIP_PREDICATES = ["school", "degree"]
RELATIONSHIP_IDS = [f"rel:{i}" for i in range(4)]
# Deliberate dict-equality colliders (1 == 1.0 == True, 0 == 0.0 == False):
# the legacy key dict conflates them and the columnar ObjectDict must too,
# while repr/serialization must preserve the value actually stored.
OBJECTS = ["X", "Y", "kg:e1", "kg:e3", 1, 1.0, True, 0, 0.0, False, 3.5, "Z"]
SOURCES = [f"src{i}" for i in range(5)]
LOCALES = ["en", "fr"]
TRUSTS = [0.2, 0.5, 0.8, 0.9]


def random_triple(rng: random.Random) -> ExtendedTriple:
    composite = rng.random() < 0.3
    if composite:
        predicate = COMPOSITE_PREDICATE
        relationship_id = rng.choice(RELATIONSHIP_IDS)
        relationship_predicate = rng.choice(RELATIONSHIP_PREDICATES)
    else:
        predicate = rng.choice(SIMPLE_PREDICATES)
        relationship_id = relationship_predicate = None
    return ExtendedTriple(
        subject=rng.choice(SUBJECTS),
        predicate=predicate,
        obj=rng.choice(OBJECTS),
        relationship_id=relationship_id,
        relationship_predicate=relationship_predicate,
        locale=rng.choice(LOCALES),
        provenance=Provenance.from_source(rng.choice(SOURCES), rng.choice(TRUSTS)),
    )


def assert_equivalent(columnar: TripleStore, legacy: LegacyTripleStore) -> None:
    """Every observable surface of the two stores must agree."""
    assert columnar.canonical_rows() == legacy.canonical_rows()
    assert columnar.fact_count() == legacy.fact_count()
    assert columnar.entity_count() == legacy.entity_count()
    assert len(columnar) == len(legacy)
    assert columnar.subjects() == legacy.subjects()
    assert columnar.predicates() == legacy.predicates()
    # Insertion order and serialization are part of the contract.
    assert columnar.to_rows() == legacy.to_rows()
    for subject in SUBJECTS:
        col_facts = columnar.facts_about(subject)
        leg_facts = legacy.facts_about(subject)
        assert [t.key() for t in col_facts] == [t.key() for t in leg_facts]
        assert [t.sources for t in col_facts] == [t.sources for t in leg_facts]
        assert columnar.rows_about(subject) == [t.to_row() for t in leg_facts]
        for predicate in SIMPLE_PREDICATES:
            assert columnar.value_of(subject, predicate) == legacy.value_of(
                subject, predicate
            )
            assert columnar.values_of(subject, predicate) == legacy.values_of(
                subject, predicate
            )
        col_rel = columnar.relationship_facts(subject, COMPOSITE_PREDICATE)
        leg_rel = legacy.relationship_facts(subject, COMPOSITE_PREDICATE)
        assert {k: [t.key() for t in v] for k, v in col_rel.items()} == {
            k: [t.key() for t in v] for k, v in leg_rel.items()
        }
    for predicate in [*SIMPLE_PREDICATES, COMPOSITE_PREDICATE]:
        assert [t.key() for t in columnar.facts_with_predicate(predicate)] == [
            t.key() for t in legacy.facts_with_predicate(predicate)
        ]
    for obj in OBJECTS:
        assert [t.key() for t in columnar.facts_with_object(obj)] == [
            t.key() for t in legacy.facts_with_object(obj)
        ]


def apply_random_op(rng: random.Random, columnar: TripleStore, legacy: LegacyTripleStore):
    """Apply one random mutation to both stores; returns new stores when the
    op swaps the active pair to a snapshot."""
    op = rng.choice(
        [
            "add",
            "add",
            "add",
            "add",
            "merge",
            "discard",
            "remove_subject",
            "remove_source",
            "overwrite_source_partition",
            "inplace_retract",
            "snapshot",
        ]
    )
    if op == "add":
        triple = random_triple(rng)
        columnar.add(triple.copy())
        legacy.add(triple.copy())
    elif op == "merge":
        # Re-assert an existing fact from another source: provenance merge.
        facts = legacy.facts_about(rng.choice(SUBJECTS))
        if facts:
            target = rng.choice(facts)
            reasserted = target.copy()
            reasserted.provenance = Provenance.from_source(
                rng.choice(SOURCES), rng.choice(TRUSTS)
            )
            columnar.add(reasserted.copy())
            legacy.add(reasserted.copy())
    elif op == "discard":
        facts = legacy.facts_about(rng.choice(SUBJECTS))
        if facts:
            target = rng.choice(facts).copy()
            assert columnar.discard(target) == legacy.discard(target)
    elif op == "remove_subject":
        subject = rng.choice(SUBJECTS)
        assert columnar.remove_subject(subject) == legacy.remove_subject(subject)
    elif op == "remove_source":
        source = rng.choice(SOURCES)
        assert columnar.remove_source(source) == legacy.remove_source(source)
    elif op == "overwrite_source_partition":
        source = rng.choice(SOURCES)
        replacement = [random_triple(rng) for _ in range(rng.randrange(3))]
        for triple in replacement:
            triple.provenance = Provenance.from_source(source, rng.choice(TRUSTS))
        col_counts = columnar.overwrite_source_partition(
            source, [t.copy() for t in replacement]
        )
        leg_counts = legacy.overwrite_source_partition(
            source, [t.copy() for t in replacement]
        )
        assert col_counts == leg_counts
    elif op == "inplace_retract":
        # The fusion retract pattern: mutate provenance in place through
        # materialized views, then discard facts left unsupported.  This is
        # the path that bypasses the store's mutators and makes the source
        # index a superset.
        subject = rng.choice(SUBJECTS)
        source = rng.choice(SOURCES)
        for store in (columnar, legacy):
            for triple in store.facts_about(subject):
                if source in triple.provenance:
                    triple.provenance.remove_source(source)
                    if triple.provenance.is_empty():
                        store.discard(triple)
    elif op == "snapshot":
        col_snap, leg_snap = columnar.snapshot(), legacy.snapshot()
        if rng.random() < 0.5:
            # Continue mutating the snapshots; the originals must stay frozen
            # (checked by the caller holding them).
            return col_snap, leg_snap
        assert col_snap.canonical_rows() == leg_snap.canonical_rows()
    return None


def test_random_op_sequences_match_legacy(store_seed):
    rng = random.Random(9000 + store_seed)
    columnar, legacy = TripleStore(), LegacyTripleStore()
    frozen: list[tuple[TripleStore, LegacyTripleStore]] = []
    for step in range(rng.randrange(20, 45)):
        swapped = apply_random_op(rng, columnar, legacy)
        if swapped is not None:
            # The pre-snapshot pair must stay byte-identical while the
            # snapshots are mutated from here on (copy-on-write isolation).
            frozen.append((columnar, legacy))
            columnar, legacy = swapped
        if step % 5 == 0:
            assert columnar.canonical_rows() == legacy.canonical_rows()
    assert_equivalent(columnar, legacy)
    for col_frozen, leg_frozen in frozen:
        assert col_frozen.canonical_rows() == leg_frozen.canonical_rows()


def test_batch_operators_match_rowwise(store_seed):
    rng = random.Random(31000 + store_seed)
    triples = [random_triple(rng) for _ in range(60)]
    extra = [random_triple(rng) for _ in range(25)]

    legacy = LegacyTripleStore()
    added_rowwise = legacy.add_all(t.copy() for t in triples)

    batch = TripleStore()
    assert batch.add_batch(t.copy() for t in triples) == added_rowwise
    assert batch.canonical_rows() == legacy.canonical_rows()

    via_rows = TripleStore()
    assert via_rows.add_rows(legacy.to_rows()) == added_rowwise
    assert via_rows.canonical_rows() == legacy.canonical_rows()
    assert via_rows.to_rows() == legacy.to_rows()

    other = TripleStore(t.copy() for t in extra)
    merged = TripleStore(t.copy() for t in triples)
    assert merged.merge_from(other) == legacy.add_all(t.copy() for t in extra)
    assert merged.canonical_rows() == legacy.canonical_rows()

    # Merging into an empty store takes the copy-on-write adopt fast path;
    # it must be observationally identical and fully isolated afterwards.
    adopted = TripleStore()
    assert adopted.merge_from(merged) == merged.fact_count()
    assert adopted.canonical_rows() == merged.canonical_rows()
    assert adopted.to_rows() == merged.to_rows()
    before = merged.canonical_rows()
    adopted.remove_subject(SUBJECTS[0])
    adopted.add(random_triple(rng))
    assert merged.canonical_rows() == before

    # project == filter by subject/predicate membership
    keep_subjects = set(SUBJECTS[:3])
    keep_predicates = {"name", COMPOSITE_PREDICATE}
    projected = merged.project(subjects=keep_subjects, predicates=keep_predicates)
    filtered = legacy.filter(
        lambda t: t.subject in keep_subjects and t.predicate in keep_predicates
    )
    assert projected.canonical_rows() == filtered.canonical_rows()
    only_predicates = merged.project(predicates={"genre"})
    assert only_predicates.canonical_rows() == legacy.filter(
        lambda t: t.predicate == "genre"
    ).canonical_rows()

    # remove_subjects_batch == per-subject remove_subject
    doomed = SUBJECTS[2:5]
    assert merged.remove_subjects_batch(doomed) == sum(
        legacy.remove_subject(s) for s in doomed
    )
    assert merged.canonical_rows() == legacy.canonical_rows()

    # retract_source_from_subjects == the fusion retract loop
    source = rng.choice(SOURCES)
    skip = {"name"}
    expected_removed = 0
    for subject in SUBJECTS:
        for triple in legacy.facts_about(subject):
            if source not in triple.provenance or triple.predicate in skip:
                continue
            triple.provenance.remove_source(source)
            if triple.provenance.is_empty():
                legacy.discard(triple)
                expected_removed += 1
    removed = merged.retract_source_from_subjects(
        source, SUBJECTS, skip_predicates=skip
    )
    assert removed == expected_removed
    assert merged.canonical_rows() == legacy.canonical_rows()


def test_snapshot_is_copy_on_write_and_isolated():
    store = TripleStore()
    t1 = ExtendedTriple(
        subject="kg:e1", predicate="name", obj="A",
        provenance=Provenance.from_source("src0", 0.9),
    )
    t2 = ExtendedTriple(
        subject="kg:e2", predicate="name", obj="B",
        provenance=Provenance.from_source("src1", 0.8),
    )
    store.add(t1)
    store.add(t2)
    snapshot = store.snapshot()
    before = store.canonical_rows()
    assert snapshot.canonical_rows() == before

    # Mutations on either side must not leak to the other.
    store.add(
        ExtendedTriple(
            subject="kg:e3", predicate="name", obj="C",
            provenance=Provenance.from_source("src2", 0.7),
        )
    )
    snapshot.remove_subject("kg:e1")
    assert snapshot.fact_count() == 1
    assert store.fact_count() == 3
    assert [t.key() for t in store.facts_about("kg:e1")] == [t1.key()]

    # In-place provenance mutation through a materialized view (the fusion
    # pattern) must not reach into the snapshot retroactively.
    second = store.snapshot()
    fact = store.facts_about("kg:e2")[0]
    fact.provenance.remove_source("src1")
    store.discard(fact)
    assert store.value_of("kg:e2", "name") is None
    assert second.value_of("kg:e2", "name") == "B"
    assert second.facts_about("kg:e2")[0].sources == ["src1"]


def test_source_index_survives_inplace_retracts():
    """The fusion pattern leaves the source index a superset; later
    governance deletes must still be exact."""
    store = TripleStore()
    shared = ExtendedTriple(
        subject="kg:e1", predicate="name", obj="A",
        provenance=Provenance.from_mapping({"keep": 0.9, "gone": 0.5}),
    )
    solo = ExtendedTriple(
        subject="kg:e1", predicate="genre", obj="pop",
        provenance=Provenance.from_source("gone", 0.6),
    )
    store.add(shared)
    store.add(solo)
    # In-place removal through the materialized view, no store mutator call.
    view = store.facts_about("kg:e1")[0]
    assert view.predicate == "genre" or view.predicate == "name"
    for triple in store.facts_about("kg:e1"):
        if triple.predicate == "name":
            triple.provenance.remove_source("gone")
    # The store-level delete re-checks provenance: only the solo fact counts.
    assert store.remove_source("gone") == 1
    assert store.fact_count() == 1
    assert store.facts_about("kg:e1")[0].sources == ["keep"]


def test_unhashable_objects_raise_like_legacy():
    bad = ExtendedTriple(subject="kg:e1", predicate="name", obj=["un", "hashable"])
    columnar, legacy = TripleStore(), LegacyTripleStore()
    with pytest.raises(TypeError):
        legacy.add(bad)
    with pytest.raises(TypeError):
        columnar.add(bad)
    with pytest.raises(TypeError):
        bad in columnar
    assert columnar.facts_with_object(["un", "hashable"]) == []


def test_object_collision_values_survive_roundtrip():
    """1, 1.0, and True are one fact key, but the stored value is whichever
    was added first — and stays exact across discard / re-add."""
    for first, second in [(1, 1.0), (1.0, True), (True, 1), (0, False)]:
        columnar, legacy = TripleStore(), LegacyTripleStore()
        for store in (columnar, legacy):
            store.add(
                ExtendedTriple(
                    subject="kg:e1", predicate="popularity", obj=first,
                    provenance=Provenance.from_source("a", 0.5),
                )
            )
            store.add(
                ExtendedTriple(
                    subject="kg:e1", predicate="popularity", obj=second,
                    provenance=Provenance.from_source("b", 0.5),
                )
            )
        assert columnar.fact_count() == legacy.fact_count() == 1
        assert columnar.canonical_rows() == legacy.canonical_rows()
        assert columnar.to_rows() == legacy.to_rows()
        # Discard then re-add the dict-equal twin: the stored value must be
        # the new one, not a resurrected intern of the old.
        twin = ExtendedTriple(
            subject="kg:e1", predicate="popularity", obj=second,
            provenance=Provenance.from_source("c", 0.5),
        )
        for store in (columnar, legacy):
            store.discard(twin)
            store.add(twin.copy())
        assert columnar.canonical_rows() == legacy.canonical_rows()
        assert columnar.to_rows() == legacy.to_rows()


def test_engine_publish_matches_legacy_rebuild(ontology, store_seed):
    """End to end: a columnar construction store published through the Graph
    Engine yields a primary store byte-identical to a legacy rebuild of the
    same rows, and identical materialized entities."""
    if store_seed >= 25:  # the engine path is heavier; cap soak depth
        pytest.skip("engine equivalence runs at base depth")
    from repro.engine.graph_engine import GraphEngine
    from repro.model.entity import materialize_entities

    rng = random.Random(71000 + store_seed)
    construction = TripleStore(random_triple(rng) for _ in range(50))
    legacy = LegacyTripleStore.from_rows(construction.to_rows())
    assert construction.canonical_rows() == legacy.canonical_rows()

    engine = GraphEngine(ontology)
    engine.publish_store(construction, source_id="construction")
    assert engine.triples.canonical_rows() == legacy.canonical_rows()

    col_entities = materialize_entities(construction)
    leg_entities = materialize_entities(legacy)
    assert sorted(col_entities) == sorted(leg_entities)
    for entity_id, entity in col_entities.items():
        twin = leg_entities[entity_id]
        assert entity.names == twin.names
        assert entity.facts == twin.facts
        assert sorted(entity.relationships) == sorted(twin.relationships)

    # Incremental churn through the engine stays equivalent.
    doomed = rng.choice(SUBJECTS)
    construction.remove_subject(doomed)
    fresh = [random_triple(rng) for _ in range(10)]
    construction.add_batch(fresh)
    changed = sorted({t.subject for t in fresh})
    engine.publish_subjects(construction, changed, deleted_subjects=[doomed])
    rebuilt = LegacyTripleStore()
    for subject in sorted(engine.triples.subjects()):
        for row in engine.triples.rows_about(subject):
            rebuilt.add(ExtendedTriple.from_row(row))
    assert engine.triples.canonical_rows() == rebuilt.canonical_rows()
