"""Tests for the ingestion pipeline, delta computer, and export stage."""

import pytest

from repro.errors import IngestionError
from repro.ingestion.delta import DeltaComputer
from repro.ingestion.export import export_delta, export_entities
from repro.ingestion.importers import InMemoryImporter
from repro.ingestion.pipeline import IngestionHub, IngestionPipeline
from repro.ingestion.transform import EntityTransformer
from repro.model.delta import SourceDelta
from repro.model.entity import SourceEntity


def artist(entity_id, name, popularity=0.5):
    return SourceEntity(
        entity_id=entity_id,
        entity_type="music_artist",
        properties={"name": name, "popularity": popularity},
        source_id="musicdb",
        trust=0.8,
    )


# --------------------------------------------------------------------- #
# DeltaComputer
# --------------------------------------------------------------------- #
def test_delta_computer_tracks_snapshots(ontology):
    computer = DeltaComputer(ontology=ontology)
    first = computer.compute("musicdb", [artist("musicdb:1", "A")])
    assert len(first.added) == 1
    assert computer.has_snapshot("musicdb")
    second = computer.compute("musicdb", [artist("musicdb:1", "A"), artist("musicdb:2", "B")])
    assert [e.entity_id for e in second.added] == ["musicdb:2"]
    assert second.updated == [] and second.deleted == []
    assert computer.last_timestamp("musicdb") == 2


def test_delta_computer_routes_volatile_predicates(ontology):
    computer = DeltaComputer(ontology=ontology)
    computer.compute("musicdb", [artist("musicdb:1", "A", popularity=0.5)])
    delta = computer.compute("musicdb", [artist("musicdb:1", "A", popularity=0.99)])
    assert delta.updated == []
    assert len(delta.volatile) == 1


def test_delta_computer_peek_does_not_advance(ontology):
    computer = DeltaComputer(ontology=ontology)
    computer.compute("musicdb", [artist("musicdb:1", "A")])
    peeked = computer.peek("musicdb", [])
    assert len(peeked.deleted) == 1
    again = computer.peek("musicdb", [])
    assert len(again.deleted) == 1        # snapshot unchanged


def test_delta_computer_forget(ontology):
    computer = DeltaComputer(ontology=ontology)
    computer.compute("musicdb", [artist("musicdb:1", "A")])
    computer.forget("musicdb")
    delta = computer.compute("musicdb", [artist("musicdb:1", "A")])
    assert len(delta.added) == 1


# --------------------------------------------------------------------- #
# export
# --------------------------------------------------------------------- #
def test_export_entities_keys_by_entity_id():
    exported = export_entities([artist("musicdb:1", "A")])
    assert set(exported) == {"musicdb:1"}
    assert all(t.subject == "musicdb:1" for t in exported["musicdb:1"])


def test_export_delta_counts_triples():
    delta = SourceDelta.initial("musicdb", [artist("musicdb:1", "A"), artist("musicdb:2", "B")])
    exported = export_delta(delta)
    assert exported.source_id == "musicdb"
    assert set(exported.added) == {"musicdb:1", "musicdb:2"}
    assert exported.deleted == []
    assert exported.triple_count() > 0


# --------------------------------------------------------------------- #
# IngestionPipeline / IngestionHub
# --------------------------------------------------------------------- #
def test_pipeline_runs_rows_through_all_stages(ontology):
    transformer = EntityTransformer(source_id="musicdb", id_column="id",
                                    default_type="music_artist")
    pipeline = IngestionPipeline("musicdb", ontology, transformer=transformer)
    importer = InMemoryImporter([
        {"id": "a1", "name": "Artist A", "genre": "pop"},
        {"id": "a2", "name": "Artist B", "genre": "rock"},
    ])
    result = pipeline.run(importer)
    assert result.integrity.passed == 2
    assert len(result.delta.added) == 2
    assert result.exported.triple_count() > 0
    summary = result.summary()
    assert summary["entities"] == 2
    assert summary["delta"]["added"] == 2


def test_pipeline_incremental_runs_produce_deltas(ontology):
    pipeline = IngestionPipeline("musicdb", ontology)
    first = pipeline.run_entities([artist("musicdb:1", "A")])
    assert len(first.delta.added) == 1
    second = pipeline.run_entities([artist("musicdb:1", "A"), artist("musicdb:2", "B")])
    assert len(second.delta.added) == 1
    assert second.delta.added[0].entity_id == "musicdb:2"
    third = pipeline.run_entities([artist("musicdb:2", "B")])
    assert len(third.delta.deleted) == 1


def test_pipeline_raises_when_every_entity_is_rejected(ontology):
    transformer = EntityTransformer(source_id="musicdb", id_column="id")
    pipeline = IngestionPipeline("musicdb", ontology, transformer=transformer)
    with pytest.raises(IngestionError):
        pipeline.run_rows([{"name": "no id"}])


def test_hub_registers_and_runs_sources(ontology):
    hub = IngestionHub(ontology)
    hub.register_source("musicdb")
    hub.register_source("wiki")
    with pytest.raises(IngestionError):
        hub.get("unknown")
    results = hub.run_all({
        "musicdb": [artist("musicdb:1", "A")],
        "wiki": [SourceEntity(entity_id="wiki:p1", entity_type="person",
                              properties={"name": "P"}, source_id="wiki")],
    })
    assert {result.source_id for result in results} == {"musicdb", "wiki"}
