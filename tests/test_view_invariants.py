"""Property-based view-invariant suite (seeded operation sequences).

Random interleavings of enqueue / flush / delete / drop / re-register /
re-materialize are replayed against a model store, and after every flush the
suite asserts the four core invariants of incremental view maintenance:

1. **Equivalence** — every materialized artifact equals a from-scratch
   rebuild from current store state, whether it was maintained through
   ``apply_delta``, ``update``, or ``create``.
2. **Monotonicity** — ``built_at_lsn`` never moves backwards within one state
   lineage (a drop / re-registration starts a new revision).
3. **No ghosts** — no view serves rows for deleted entities.
4. **Accounting** — skip counters plus rebuild counters sum to the total
   maintenance decisions the flushes made.

The sequence count is controlled by ``--runs-seeded`` (default 25; the bare
flag, as used in CI, runs 200).  The same module hosts the concurrency tests
for parallel branch flushing and the no-op-deletion regression tests.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.engine.graph_engine import GraphEngine
from repro.engine.metadata import MetadataStore
from repro.engine.views import (
    DeltaJournal,
    ViewCatalog,
    ViewDefinition,
    ViewDelta,
    ViewManager,
)
from repro.errors import StaleReadError
from repro.live.engine import LiveGraphEngine
from repro.model.provenance import Provenance
from repro.model.triples import ExtendedTriple, TripleStore
from repro.serving import Consistency, InMemoryJournalBackend, JournalStore, ServingFleet


# The op_seed / live_seed / fleet_seed fixtures are parametrized by the
# repo-level conftest.py from --runs-seeded (with proportional caps on the
# heavyweight suites).

# ------------------------------------------------------------------ #
# model harness
# ------------------------------------------------------------------ #
TYPES = ("alpha", "beta", "gamma")


class ModelStore:
    """Tiny mutable entity store the harness views read from."""

    def __init__(self):
        self.entities: dict[str, dict] = {}   # id -> {"type": str, "value": int}

    def subjects(self):
        return list(self.entities)

    def of_type(self, entity_type):
        return sorted(
            eid for eid, fields in self.entities.items()
            if fields["type"] == entity_type
        )


def _row(store: ModelStore, eid: str) -> dict:
    return {"subject": eid, "value": store.entities[eid]["value"]}


def _typed_rows(store: ModelStore, entity_type: str) -> dict:
    return {eid: _row(store, eid) for eid in store.of_type(entity_type)}


def build_harness(store: ModelStore, max_workers=None, with_unscoped=False):
    """Register the harness views and return (catalog, manager).

    ``alpha_rows`` maintains through ``apply_delta`` (journal append path),
    ``beta_rows`` through ``update`` (journal append path), ``gamma_rows``
    through ``create`` only (journal truncate path), and ``pair_index``
    depends on the first two with an always-false scope (transitive path).
    """
    catalog = ViewCatalog()

    def scope_for(entity_type):
        def scope(eid, entity_type=entity_type):
            fields = store.entities.get(eid)
            return fields is not None and fields["type"] == entity_type
        return scope

    def alpha_create(context):
        return _typed_rows(store, "alpha")

    def alpha_apply(context, delta: ViewDelta):
        artifact = dict(context.artifact("alpha_rows"))
        for eid in delta.changed:
            artifact[eid] = _row(store, eid)
        for eid in delta.deleted:
            artifact.pop(eid, None)
        return artifact

    catalog.register(ViewDefinition(
        "alpha_rows", "analytics", create=alpha_create, apply_delta=alpha_apply,
        scope=scope_for("alpha"),
    ))

    def beta_create(context):
        return _typed_rows(store, "beta")

    def beta_update(context, changed):
        artifact = dict(context.artifact("beta_rows"))
        for eid in changed:
            fields = store.entities.get(eid)
            if fields is not None and fields["type"] == "beta":
                artifact[eid] = _row(store, eid)
            else:
                artifact.pop(eid, None)
        return artifact

    catalog.register(ViewDefinition(
        "beta_rows", "analytics", create=beta_create, update=beta_update,
        scope=scope_for("beta"),
    ))

    catalog.register(ViewDefinition(
        "gamma_rows", "analytics",
        create=lambda ctx: _typed_rows(store, "gamma"),
        scope=scope_for("gamma"),
    ))

    catalog.register(ViewDefinition(
        "pair_index", "analytics",
        create=lambda ctx: {
            "alpha": sorted(ctx.artifact("alpha_rows")),
            "beta": sorted(ctx.artifact("beta_rows")),
        },
        dependencies=("alpha_rows", "beta_rows"),
        scope=lambda eid: False,
    ))

    if with_unscoped:
        catalog.register(ViewDefinition(
            "total_count", "analytics",
            create=lambda ctx: len(store.entities),
        ))

    clock = {"lsn": 0}
    manager = ViewManager(
        catalog, engines={}, metadata=MetadataStore(),
        lsn_source=lambda: clock["lsn"],
        entity_source=store.subjects,
        max_workers=max_workers,
        journal_limit=4,            # tiny, so sequences exercise compaction
    )
    return catalog, manager, clock


def expected_artifact(store: ModelStore, name: str):
    if name == "alpha_rows":
        return _typed_rows(store, "alpha")
    if name == "beta_rows":
        return _typed_rows(store, "beta")
    if name == "gamma_rows":
        return _typed_rows(store, "gamma")
    if name == "pair_index":
        return {"alpha": store.of_type("alpha"), "beta": store.of_type("beta")}
    if name == "total_count":
        return len(store.entities)
    raise AssertionError(f"no expectation for view {name!r}")


def check_invariants(store, catalog, manager, watermark_history):
    for name in catalog.names():
        if not manager.is_materialized(name):
            continue
        state = manager.states[name]
        # 1. incremental artifact ≡ from-scratch rebuild
        assert manager.artifact(name) == expected_artifact(store, name), name
        # 3. no view serves rows for deleted entities
        if name.endswith("_rows"):
            assert set(manager.artifact(name)) <= set(store.entities), name
        # 2. built_at_lsn monotone within one state lineage
        key = (name, state.revision)
        assert state.built_at_lsn >= watermark_history.get(key, 0), name
        watermark_history[key] = state.built_at_lsn
        assert state.journal.floor_lsn <= state.built_at_lsn, name
    # 4. skip + rebuild counters account for every maintenance decision
    assert manager.maintenance_decisions == (
        manager.maintenance_skips + manager.maintenance_rebuilds
    )


# ------------------------------------------------------------------ #
# the seeded property suite
# ------------------------------------------------------------------ #
def test_random_op_sequences_preserve_view_invariants(op_seed):
    rng = random.Random(op_seed)
    store = ModelStore()
    catalog, manager, clock = build_harness(
        store,
        max_workers=2 if op_seed % 3 == 0 else None,
        with_unscoped=op_seed % 2 == 1,
    )
    counter = 0
    graveyard: list[str] = []               # deleted ids eligible for revival
    for _ in range(rng.randint(3, 8)):      # initial population
        counter += 1
        store.entities[f"e{counter}"] = {"type": rng.choice(TYPES), "value": counter}
    manager.materialize()
    watermark_history: dict[tuple, int] = {}
    expected_decisions = 0

    def any_materialized():
        return any(manager.is_materialized(n) for n in catalog.names())

    def enqueue(changed=(), deleted=(), added=()):
        clock["lsn"] += 1
        manager.enqueue(changed, lsn=clock["lsn"], deleted_entity_ids=deleted,
                        added_entity_ids=added)

    for _ in range(rng.randint(25, 45)):
        op = rng.choices(
            ["add", "update", "retype", "delete", "revive", "flush", "drop",
             "rematerialize", "reregister"],
            weights=[18, 18, 10, 15, 8, 25, 4, 8, 3],
        )[0]
        if op == "add":
            counter += 1
            eid = f"e{counter}"
            store.entities[eid] = {"type": rng.choice(TYPES), "value": counter}
            enqueue([eid], added=[eid])
        elif op == "revive" and graveyard:
            # re-add a previously deleted id, possibly within the same batch
            # as its deletion — the pending fold must net it to "added"
            eid = graveyard.pop(rng.randrange(len(graveyard)))
            counter += 1
            store.entities[eid] = {"type": rng.choice(TYPES), "value": counter}
            enqueue([eid], added=[eid])
        elif op == "update" and store.entities:
            eid = rng.choice(sorted(store.entities))
            store.entities[eid]["value"] += 1
            enqueue([eid])
        elif op == "retype" and store.entities:
            eid = rng.choice(sorted(store.entities))
            store.entities[eid]["type"] = rng.choice(TYPES)
            enqueue([eid])
        elif op == "delete" and store.entities:
            eid = rng.choice(sorted(store.entities))
            del store.entities[eid]
            graveyard.append(eid)
            enqueue(deleted=[eid])
        elif op == "flush":
            if manager.pending_changes():
                expected_decisions += sum(
                    1 for n in catalog.names() if manager.is_materialized(n)
                )
            manager.flush()
            check_invariants(store, catalog, manager, watermark_history)
        elif op == "drop":
            name = rng.choice(catalog.names())
            if manager.is_materialized(name):
                manager.drop(name)
        elif op == "rematerialize":
            manager.materialize()
            check_invariants(store, catalog, manager, watermark_history)
        elif op == "reregister":
            # swap in an equivalent definition: resets the view + dependents
            fresh_catalog, _, _ = build_harness(store)
            name = rng.choice(["alpha_rows", "beta_rows", "gamma_rows"])
            catalog.register(fresh_catalog.get(name))

    # drain whatever is still pending, then check everything one last time
    if manager.pending_changes():
        expected_decisions += sum(
            1 for n in catalog.names() if manager.is_materialized(n)
        )
    manager.flush()
    manager.materialize()
    check_invariants(store, catalog, manager, watermark_history)
    assert manager.maintenance_decisions == expected_decisions


def test_delete_then_readd_in_one_batch_nets_to_added():
    """Regression: the pending fold must resurrect a deleted-then-re-added
    entity as net-added, not drop it as net-deleted (which made apply_delta
    views lose the re-added row)."""
    store = ModelStore()
    store.entities["x"] = {"type": "alpha", "value": 1}
    store.entities["y"] = {"type": "alpha", "value": 2}
    catalog, manager, clock = build_harness(store)
    manager.materialize()
    del store.entities["x"]
    clock["lsn"] = 2
    manager.enqueue([], lsn=2, deleted_entity_ids=["x"])
    store.entities["x"] = {"type": "alpha", "value": 99}     # re-ingested
    clock["lsn"] = 3
    manager.enqueue(["x"], lsn=3, added_entity_ids=["x"])
    manager.flush()
    assert manager.artifact("alpha_rows") == _typed_rows(store, "alpha")
    assert manager.artifact("alpha_rows")["x"]["value"] == 99
    # the journal reports it as net-changed for serving-layer consumers (the
    # projection calls it "updated": the un-flushed delete means the view's
    # artifact still held x's row, so the serving copy sees a replace)
    delta = manager.view_deltas_since("alpha_rows", 1)
    assert delta is not None and "x" in delta.changed and "x" not in delta.deleted


def test_mis_scoped_apply_delta_dependent_rebuilds_instead_of_going_stale():
    """A transitively affected apply_delta view whose own projection is empty
    must fall back to create: an empty-delta apply would silently keep a
    stale artifact while the watermark advances."""
    store = ModelStore()
    store.entities["a1"] = {"type": "alpha", "value": 1}
    catalog = ViewCatalog()
    clock = {"lsn": 1}

    def scope_alpha(eid):
        fields = store.entities.get(eid)
        return fields is not None and fields["type"] == "alpha"

    catalog.register(ViewDefinition(
        "alpha_rows", "analytics",
        create=lambda ctx: _typed_rows(store, "alpha"), scope=scope_alpha,
    ))
    def total(ctx):
        return sum(r["value"] for r in ctx.artifact("alpha_rows").values())

    catalog.register(ViewDefinition(
        "alpha_total", "analytics", create=total,
        # deliberately mis-scoped: its rows derive from alpha entities but
        # the scope admits nothing, so projections are always empty
        apply_delta=lambda ctx, delta: ctx.artifact("alpha_total"),
        dependencies=("alpha_rows",), scope=lambda eid: False,
    ))
    # same hazard through the legacy update procedure: it recomputes the
    # artifact, but an empty projection would journal "nothing changed"
    catalog.register(ViewDefinition(
        "alpha_total_upd", "analytics", create=total,
        update=lambda ctx, changed: total(ctx),
        dependencies=("alpha_rows",), scope=lambda eid: False,
    ))
    manager = ViewManager(catalog, engines={}, lsn_source=lambda: clock["lsn"],
                          entity_source=store.subjects)
    manager.materialize()
    assert manager.artifact("alpha_total") == 1
    store.entities["a1"]["value"] = 100
    clock["lsn"] = 2
    manager.enqueue(["a1"], lsn=2)
    manager.flush()
    for name in ("alpha_total", "alpha_total_upd"):
        assert manager.artifact(name) == 100                 # rebuilt, not stale
        assert manager.states[name].builds == 2
        assert manager.states[name].delta_applies == 0
        assert manager.states[name].incremental_updates == 0
        # the journal refuses an incremental answer rather than lying
        assert manager.view_deltas_since(name, 1) is None


def test_failed_flush_restore_respects_reentrant_readds():
    """A reentrant re-add observed during a failing flush must survive the
    delta restore as net-added — not be clobbered back to net-deleted."""
    store = ModelStore()
    store.entities["x"] = {"type": "alpha", "value": 1}
    catalog, manager, clock = build_harness(store)
    trap = {"armed": False}

    def booby_trapped_create(context):
        if trap["armed"]:
            trap["armed"] = False
            # a reentrant observer re-ingests the entity mid-flush...
            store.entities["x"] = {"type": "alpha", "value": 99}
            clock["lsn"] += 1
            manager.enqueue(["x"], lsn=clock["lsn"], added_entity_ids=["x"])
            raise RuntimeError("store hiccup")
        return len(store.entities)

    catalog.register(ViewDefinition("trap", "analytics", create=booby_trapped_create))
    manager.materialize()
    del store.entities["x"]
    clock["lsn"] += 1
    manager.enqueue([], lsn=clock["lsn"], deleted_entity_ids=["x"])
    trap["armed"] = True
    with pytest.raises(RuntimeError, match="store hiccup"):
        manager.flush()
    assert "x" in manager.pending_changes()
    manager.flush()
    assert manager.artifact("alpha_rows") == _typed_rows(store, "alpha")
    assert manager.artifact("alpha_rows")["x"]["value"] == 99


def test_delta_journal_merge_and_compaction_semantics():
    journal = DeltaJournal(max_entries=4)
    for lsn in range(1, 8):
        journal.append(ViewDelta(
            added=frozenset({f"e{lsn}"}),
            deleted=frozenset({f"e{lsn - 1}"}) if lsn > 1 else frozenset(),
            first_lsn=lsn, last_lsn=lsn,
        ))
    assert journal.compactions >= 1
    assert len(journal.entries) <= 4 + 1
    merged = journal.since(0)
    # net effect: only the last added entity survives, everything prior deleted
    assert merged is not None
    assert merged.added == frozenset({"e7"})
    assert merged.deleted == frozenset({f"e{i}" for i in range(1, 7)})
    # history below the floor is refused after truncation
    journal.truncate(10)
    assert journal.since(9) is None
    assert journal.since(10) is not None and journal.since(10).is_empty()
    assert journal.high_water_mark() == 10


# ------------------------------------------------------------------ #
# end-to-end: live serving consumes per-view journal deltas
# ------------------------------------------------------------------ #
def _triple(subject, predicate, obj, source="wiki"):
    return ExtendedTriple(subject=subject, predicate=predicate, obj=obj,
                          provenance=Provenance.from_source(source, 0.9))


def _register_song_rows(engine: GraphEngine) -> None:
    def rows_for(subjects):
        rows = []
        for subject in subjects:
            rows.append({
                "subject": subject,
                "name": str(engine.triples.value_of(subject, "name") or ""),
                "plays": engine.triples.value_of(subject, "plays") or 0,
            })
        return rows

    def create(context):
        subjects = [s for s in engine.triples.subjects()
                    if engine.triples.value_of(s, "type") == "song"]
        return sorted(rows_for(subjects), key=lambda row: row["subject"])

    def apply_delta(context, delta: ViewDelta):
        by_subject = {row["subject"]: row for row in context.artifact("song_rows")}
        for subject, row in zip(sorted(delta.changed), rows_for(sorted(delta.changed))):
            by_subject[subject] = row
        for subject in delta.deleted:
            by_subject.pop(subject, None)
        return [by_subject[s] for s in sorted(by_subject)]

    engine.register_view(ViewDefinition(
        "song_rows", "analytics", create=create, apply_delta=apply_delta,
        scope=lambda eid: engine.triples.value_of(eid, "type") == "song",
    ))


def _served_docs(live: LiveGraphEngine, feed_ids) -> dict:
    return {
        doc_id: (doc.name, {k: list(v) for k, v in sorted(doc.facts.items())})
        for doc_id in sorted(feed_ids)
        for doc in [live.index.get(doc_id)]
        if doc is not None
    }


def test_live_delta_consumption_matches_full_reload(live_seed, ontology):
    rng = random.Random(1000 + live_seed)
    source = TripleStore()
    engine = GraphEngine(ontology)
    _register_song_rows(engine)
    live = LiveGraphEngine()

    songs: list[str] = []
    counter = 0

    def add_song():
        nonlocal counter
        counter += 1
        subject = f"kg:s{counter}"
        source.add(_triple(subject, "type", "song"))
        source.add(_triple(subject, "name", f"Song {counter}"))
        source.add(_triple(subject, "plays", counter))
        songs.append(subject)
        engine.publish_subjects(source, [subject])

    def update_song():
        subject = rng.choice(songs)
        source.remove_subject(subject)
        source.add(_triple(subject, "type", "song"))
        source.add(_triple(subject, "name", f"Song {subject[-1]}*"))
        source.add(_triple(subject, "plays", rng.randint(1, 100)))
        engine.publish_subjects(source, [subject])

    def delete_song():
        subject = songs.pop(rng.randrange(len(songs)))
        source.remove_subject(subject)
        engine.publish_subjects(source, [], deleted_subjects=[subject])

    def add_other():
        nonlocal counter
        counter += 1
        subject = f"kg:x{counter}"
        source.add(_triple(subject, "type", "label"))
        source.add(_triple(subject, "name", f"Label {counter}"))
        engine.publish_subjects(source, [subject])

    for _ in range(rng.randint(2, 4)):
        add_song()
    add_other()
    engine.materialize_views()
    assert live.load_view_artifact(engine, "song_rows") == len(songs)

    for _ in range(rng.randint(6, 12)):
        op = rng.choices(["add", "update", "delete", "other"],
                         weights=[30, 35, 20, 15])[0]
        if op == "add":
            add_song()
        elif op == "update" and songs:
            update_song()
        elif op == "delete" and songs:
            delete_song()
        else:
            add_other()
        if rng.random() < 0.6:
            engine.update_views()
            live.load_view_artifact(engine, "song_rows")
            # a fresh consumer full-loading the artifact must agree exactly
            reference = LiveGraphEngine()
            reference.load_view_artifact(engine, "song_rows")
            feed = "view:song_rows"
            assert _served_docs(live, live.index.feed_documents(feed)) == (
                _served_docs(reference, reference.index.feed_documents(feed))
            )
            assert set(live.index.feed_documents(feed)) == {
                f"song_rows:{s}" for s in songs
            }

    engine.update_views()
    loaded = live.load_view_artifact(engine, "song_rows")
    assert loaded <= len(songs)
    # the apply_delta view was never rebuilt wholesale after materialization,
    # so every catch-up after the first load rode the journal
    assert engine.view_manager.states["song_rows"].builds == 1
    assert live.view_feed_full_loads == 1
    assert live.view_feed_incremental_loads >= 1


# ------------------------------------------------------------------ #
# concurrency: parallel branch flushing
# ------------------------------------------------------------------ #
def _branch_catalog(events, barrier=None, fail_on=()):
    """Two independent branches: (a_root -> a_child) and (b_root -> b_child)."""
    catalog = ViewCatalog()

    def recording(name, result, wait=False):
        def run(context, changed=None):
            events.append((name, "start", time.monotonic()))
            if name in fail_on:
                events.append((name, "fail", time.monotonic()))
                raise RuntimeError(f"{name} branch down")
            if wait and barrier is not None:
                barrier.wait(timeout=10)
            events.append((name, "end", time.monotonic()))
            return result
        return run

    def child_create(branch):
        def create(context):
            events.append((f"{branch}_child", "start", time.monotonic()))
            artifact = context.artifact(f"{branch}_root") + "/child"
            events.append((f"{branch}_child", "end", time.monotonic()))
            return artifact
        return create

    for branch in ("a", "b"):
        catalog.register(ViewDefinition(
            f"{branch}_root", "analytics",
            create=lambda ctx, branch=branch: f"{branch}0",
            update=recording(f"{branch}_root", f"{branch}1", wait=True),
            scope=lambda eid, branch=branch: eid.startswith(f"{branch}:"),
        ))
        catalog.register(ViewDefinition(
            f"{branch}_child", "analytics",
            create=child_create(branch),
            dependencies=(f"{branch}_root",),
            scope=lambda eid: False,
        ))
    return catalog


def test_parallel_flush_overlaps_branches_without_reordering_dependencies():
    events: list = []
    barrier = threading.Barrier(2)    # both roots must be in flight at once
    catalog = _branch_catalog(events, barrier=barrier)
    clock = {"lsn": 1}
    manager = ViewManager(catalog, engines={}, lsn_source=lambda: clock["lsn"],
                          max_workers=2)
    manager.materialize()
    clock["lsn"] = 2
    manager.enqueue(["a:1", "b:1"], lsn=2)
    timings = manager.flush()   # would raise BrokenBarrierError if serial
    assert set(timings) == {"a_root", "a_child", "b_root", "b_child"}
    stamps = {(name, phase): stamp for name, phase, stamp in events}
    for branch in ("a", "b"):
        # a dependent never starts before its dependency committed
        assert stamps[(f"{branch}_root", "end")] <= stamps[(f"{branch}_child", "start")]
    assert manager.artifact("a_child") == "a1/child"
    assert manager.artifact("b_child") == "b1/child"


def test_failing_branch_restores_delta_without_corrupting_sibling_journal():
    events: list = []
    fail_on = {"a_root"}                     # mutable: healed mid-test
    catalog = _branch_catalog(events, fail_on=fail_on)
    clock = {"lsn": 1}
    manager = ViewManager(catalog, engines={}, lsn_source=lambda: clock["lsn"],
                          max_workers=2)
    manager.materialize()
    clock["lsn"] = 2
    manager.enqueue(["a:1", "b:1"], lsn=2)
    with pytest.raises(RuntimeError, match="a_root branch down"):
        manager.flush()
    # the failing branch restored the whole pending delta...
    assert manager.pending_changes() == ["a:1", "b:1"]
    assert manager.built_at_lsn("a_root") == 1
    assert manager.states["a_child"].builds == 1            # blocked, never ran
    # ...while the sibling branch committed atomically: artifact, journal,
    # and watermark all advanced together
    assert manager.artifact("b_root") == "b1"
    assert manager.built_at_lsn("b_root") == 2
    sibling_delta = manager.view_deltas_since("b_root", 1)
    assert sibling_delta is not None and sibling_delta.changed == frozenset({"b:1"})
    # the retry maintains only the failed branch; the sibling skips by watermark
    fail_on.clear()
    retry = manager.flush()
    assert set(retry) == {"a_root", "a_child"}
    assert manager.pending_changes() == []
    assert manager.artifact("a_child") == "a1/child"
    assert manager.built_at_lsn("a_root") == 2
    assert manager.states["b_root"].skipped_updates == 1
    assert manager.maintenance_decisions == (
        manager.maintenance_skips + manager.maintenance_rebuilds
    )


# ------------------------------------------------------------------ #
# regression: deletions resolve through pre-delete scope snapshots
# ------------------------------------------------------------------ #
def test_deletion_outside_every_scope_is_a_noop_flush():
    store = ModelStore()
    store.entities["a1"] = {"type": "alpha", "value": 1}
    store.entities["g1"] = {"type": "gamma", "value": 2}
    catalog = ViewCatalog()
    clock = {"lsn": 1}

    def scope_alpha(eid):
        fields = store.entities.get(eid)
        return fields is not None and fields["type"] == "alpha"

    catalog.register(ViewDefinition(
        "alpha_rows", "analytics",
        create=lambda ctx: _typed_rows(store, "alpha"), scope=scope_alpha,
    ))
    catalog.register(ViewDefinition(
        "alpha_index", "analytics",
        create=lambda ctx: sorted(ctx.artifact("alpha_rows")),
        dependencies=("alpha_rows",), scope=lambda eid: False,
    ))
    manager = ViewManager(catalog, engines={}, lsn_source=lambda: clock["lsn"],
                          entity_source=store.subjects)
    manager.materialize()
    # delete the gamma entity: it sits in no view's scope snapshot
    del store.entities["g1"]
    clock["lsn"] = 2
    manager.enqueue([], lsn=2, deleted_entity_ids=["g1"])
    timings = manager.flush()
    assert timings == {}                                     # the no-op, proven...
    assert manager.states["alpha_rows"].skipped_updates == 1   # ...by the skip
    assert manager.states["alpha_index"].skipped_updates == 1  # counters
    assert manager.maintenance_skips == 2
    assert manager.maintenance_rebuilds == 0
    assert manager.flushes == 1
    assert manager.built_at_lsn("alpha_rows") == 2           # watermark advanced
    # deleting a snapshot member, by contrast, maintains exactly that branch
    del store.entities["a1"]
    clock["lsn"] = 3
    manager.enqueue([], lsn=3, deleted_entity_ids=["a1"])
    timings = manager.flush()
    assert set(timings) == {"alpha_rows", "alpha_index"}
    assert manager.artifact("alpha_rows") == {}


# ------------------------------------------------------------------ #
# regression: flush executor lifecycle is deterministic
# ------------------------------------------------------------------ #
def _flush_threads():
    return {t for t in threading.enumerate() if t.name.startswith("view-flush")}


def test_repeated_failing_flushes_do_not_leak_executor_threads():
    """Regression: a failing parallel flush must shut its executor down —
    repeated failures (or an abandoned manager after one) used to leave the
    worker threads alive until garbage collection.  Thread accounting is
    relative to a baseline: other managers in the process may hold pools."""
    events: list = []
    fail_on = {"a_root", "b_root"}          # both branches fail in parallel
    catalog = _branch_catalog(events, fail_on=fail_on)
    clock = {"lsn": 1}
    manager = ViewManager(catalog, engines={}, lsn_source=lambda: clock["lsn"],
                          max_workers=4)
    manager.materialize()
    baseline = _flush_threads()             # pool is lazy: none of ours yet
    for round_ in range(2, 7):
        clock["lsn"] = round_
        manager.enqueue(["a:1", "b:1"], lsn=round_)
        with pytest.raises(RuntimeError, match="branch down"):
            manager.flush()
        assert _flush_threads() <= baseline  # failure path reaped our pool
    # the retry after healing recreates the pool and still succeeds
    fail_on.clear()
    timings = manager.flush()
    assert set(timings) == {"a_root", "a_child", "b_root", "b_child"}
    manager.close()
    assert _flush_threads() <= baseline


def test_view_manager_context_manager_reaps_flush_pool():
    events: list = []
    catalog = _branch_catalog(events, barrier=threading.Barrier(2))
    clock = {"lsn": 1}
    baseline = _flush_threads()
    with ViewManager(catalog, engines={}, lsn_source=lambda: clock["lsn"],
                     max_workers=2) as manager:
        manager.materialize()
        clock["lsn"] = 2
        manager.enqueue(["a:1", "b:1"], lsn=2)
        manager.flush()
        assert _flush_threads() - baseline   # pool alive between flushes
    assert _flush_threads() <= baseline


# ------------------------------------------------------------------ #
# replicated mode: seeded sequences over a serving fleet
# ------------------------------------------------------------------ #
def _alpha_feed_converged(manager, fleet) -> None:
    """Every live replica serves exactly the primary's current artifact.

    The artifact — not the raw model store — is the replication contract:
    changes enqueued but not yet flushed are invisible to the primary's own
    artifact and must be invisible to replicas too (the core invariant suite
    separately proves artifact ≡ store at every flush).
    """
    artifact = manager.artifact("alpha_rows")
    expected_ids = {f"alpha_rows:{eid}" for eid in artifact}
    target_lsn = manager.built_at_lsn("alpha_rows")
    for node in fleet.replicas.values():
        if not node.alive:
            continue
        assert node.index.feed_documents("view:alpha_rows") == expected_ids
        for eid, row in artifact.items():
            document = node.get("alpha_rows", eid)
            assert document is not None
            assert document.value("value") == row["value"]
        assert node.applied_lsn("alpha_rows") == target_lsn


def test_replicated_fleet_sequences_converge_and_honor_consistency(fleet_seed):
    """Random add/update/retype/delete/kill/restart interleavings: after every
    drained flush the fleet converges on the primary's rows, read-your-writes
    at the primary watermark always succeeds, and a crashed replica restarted
    from the persisted journal catches up without a primary-side rebuild."""
    rng = random.Random(9000 + fleet_seed)
    store = ModelStore()
    catalog, manager, clock = build_harness(store)
    counter = 0
    for _ in range(rng.randint(3, 6)):
        counter += 1
        store.entities[f"e{counter}"] = {"type": rng.choice(TYPES), "value": counter}
    manager.materialize()
    journal = JournalStore(InMemoryJournalBackend())
    fleet = ServingFleet(manager, num_replicas=3, journal_store=journal).start()
    fleet.serve_view("alpha_rows")
    assert fleet.drain()
    builds_baseline = manager.states["alpha_rows"].builds
    killed: list[str] = []

    def enqueue(changed=(), deleted=(), added=()):
        clock["lsn"] += 1
        manager.enqueue(changed, lsn=clock["lsn"], deleted_entity_ids=deleted,
                        added_entity_ids=added)

    try:
        for _ in range(rng.randint(15, 30)):
            op = rng.choices(
                ["add", "update", "retype", "delete", "flush", "kill", "restart"],
                weights=[20, 20, 10, 12, 25, 6, 7],
            )[0]
            if op == "add":
                counter += 1
                eid = f"e{counter}"
                store.entities[eid] = {"type": rng.choice(TYPES), "value": counter}
                enqueue([eid], added=[eid])
            elif op == "update" and store.entities:
                eid = rng.choice(sorted(store.entities))
                store.entities[eid]["value"] += 100
                enqueue([eid])
            elif op == "retype" and store.entities:
                eid = rng.choice(sorted(store.entities))
                store.entities[eid]["type"] = rng.choice(TYPES)
                enqueue([eid])
            elif op == "delete" and store.entities:
                eid = rng.choice(sorted(store.entities))
                del store.entities[eid]
                enqueue(deleted=[eid])
            elif op == "flush":
                manager.flush()
                assert fleet.drain()
                _alpha_feed_converged(manager, fleet)
            elif op == "kill" and len(killed) < 2:      # keep one replica alive
                name = rng.choice(sorted(set(fleet.replicas) - set(killed)))
                fleet.kill_replica(name)
                killed.append(name)
            elif op == "restart" and killed:
                name = killed.pop(rng.randrange(len(killed)))
                fleet.restart_replica(name)
                _alpha_feed_converged(manager, fleet)

        # drain everything and bring crashed replicas back
        manager.flush()
        assert fleet.drain()
        while killed:
            fleet.restart_replica(killed.pop())
        _alpha_feed_converged(manager, fleet)

        # catch-up never forced a primary-side rebuild: create ran only once
        assert manager.states["alpha_rows"].builds == builds_baseline == 1

        # read-your-writes at the primary watermark holds on every entity
        watermark = manager.built_at_lsn("alpha_rows")
        for eid in store.of_type("alpha"):
            document = fleet.read(
                "alpha_rows", eid, Consistency.read_your_writes(watermark)
            )
            assert document is not None
            assert document.value("value") == store.entities[eid]["value"]

        # bounded staleness: zero lag is satisfiable after a drained flush...
        if store.of_type("alpha"):
            eid = store.of_type("alpha")[0]
            assert fleet.read(
                "alpha_rows", eid, Consistency.bounded_staleness(0)
            ) is not None
            # ...and unsatisfiable while an un-flushed delta lags every replica
            store.entities[eid]["value"] += 1
            enqueue([eid])
            with pytest.raises(StaleReadError):
                fleet.read("alpha_rows", eid, Consistency.bounded_staleness(0))
            assert fleet.read(
                "alpha_rows", eid,
                Consistency.bounded_staleness(clock["lsn"]),
            ) is not None
            manager.flush()
            assert fleet.drain()
            assert fleet.read(
                "alpha_rows", eid, Consistency.bounded_staleness(0)
            ).value("value") == store.entities[eid]["value"]
    finally:
        fleet.stop()


def test_engine_deletion_outside_scopes_skips_all_views(ontology):
    source = TripleStore([
        _triple("kg:s1", "type", "song"),
        _triple("kg:s1", "name", "First Song"),
        _triple("kg:l1", "type", "label"),
        _triple("kg:l1", "name", "Apex"),
    ])
    engine = GraphEngine(ontology)
    engine.publish_store(source, source_id="construction")
    engine.register_view(ViewDefinition(
        "song_list", "analytics",
        create=lambda ctx: sorted(
            s for s in engine.triples.subjects()
            if engine.triples.value_of(s, "type") == "song"
        ),
        scope=lambda eid: engine.triples.value_of(eid, "type") == "song",
    ))
    engine.materialize_views()
    source.remove_subject("kg:l1")
    engine.publish_subjects(source, [], deleted_subjects=["kg:l1"],
                            source_id="construction")
    timings = engine.update_views()
    assert timings == {}                       # before snapshots: widened flush
    assert engine.view_manager.states["song_list"].skipped_updates == 1
    assert engine.view_freshness() == {}       # watermark still advanced
    assert engine.view_artifact("song_list") == ["kg:s1"]
