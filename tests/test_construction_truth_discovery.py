"""Tests for truth discovery and source reliability estimation."""


from repro.construction.truth_discovery import (
    Claim,
    TruthDiscovery,
    TruthDiscoveryConfig,
)


def claims_for_conflict():
    """Three sources agree on one value, one unreliable source disagrees."""
    item = ("kg:e1", "birth_date")
    return [
        Claim(item, "1980-01-01", "wiki", 0.9),
        Claim(item, "1980-01-01", "musicdb", 0.8),
        Claim(item, "1980-01-01", "moviedb", 0.7),
        Claim(item, "1999-12-31", "fanwiki", 0.4),
        # fanwiki also asserts facts that everyone agrees on elsewhere
        Claim(("kg:e2", "name"), "Echo Valley", "fanwiki", 0.4),
        Claim(("kg:e2", "name"), "Echo Valley", "wiki", 0.9),
    ]


def test_empty_claims_produce_empty_result():
    result = TruthDiscovery().run([])
    assert result.value_confidence == {}
    assert result.source_reliability == {}


def test_majority_value_wins_conflict():
    result = TruthDiscovery().run(claims_for_conflict())
    item = ("kg:e1", "birth_date")
    assert result.best_value(item) == "1980-01-01"
    assert result.confidence_of(item, "1980-01-01") > result.confidence_of(item, "1999-12-31")


def test_source_reliability_reflects_agreement():
    result = TruthDiscovery().run(claims_for_conflict())
    assert result.source_reliability["wiki"] > result.source_reliability["fanwiki"]
    assert all(0.0 < value < 1.0 for value in result.source_reliability.values())


def test_single_source_claims_keep_prior_influence():
    claims = [Claim(("kg:e1", "name"), "Solo Value", "onlysource", 0.8)]
    result = TruthDiscovery().run(claims)
    assert result.best_value(("kg:e1", "name")) == "Solo Value"
    assert result.confidence_of(("kg:e1", "name"), "Solo Value") > 0.4


def test_unknown_item_and_value_accessors():
    result = TruthDiscovery().run(claims_for_conflict())
    assert result.best_value(("missing", "item")) is None
    assert result.confidence_of(("missing", "item"), "x") == 0.0


def test_iterations_respect_config():
    config = TruthDiscoveryConfig(max_iterations=1)
    result = TruthDiscovery(config).run(claims_for_conflict())
    assert result.iterations == 1
    long_config = TruthDiscoveryConfig(max_iterations=50, tolerance=0.0)
    long_result = TruthDiscovery(long_config).run(claims_for_conflict())
    assert long_result.iterations == 50


def test_reliability_is_bounded():
    config = TruthDiscoveryConfig(min_reliability=0.1, max_reliability=0.9)
    claims = [
        Claim(("i", "p"), "v", "always_right", 0.99),
        Claim(("i2", "p"), "v2", "always_right", 0.99),
        Claim(("i", "p"), "wrong", "always_wrong", 0.01),
    ]
    result = TruthDiscovery(config).run(claims)
    assert result.source_reliability["always_right"] <= 0.9
    assert result.source_reliability["always_wrong"] >= 0.1


def test_conflicting_two_way_tie_prefers_more_reliable_source():
    claims = [
        Claim(("kg:e1", "capital"), "City A", "trusted", 0.95),
        Claim(("kg:e1", "capital"), "City B", "untrusted", 0.2),
    ]
    result = TruthDiscovery().run(claims)
    assert result.best_value(("kg:e1", "capital")) == "City A"
