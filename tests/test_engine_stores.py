"""Tests for the entity store, text index, vector DB, and entity importance."""

import numpy as np
import pytest

from repro.engine.entity_store import EntityDocument, EntityStore
from repro.engine.importance import EntityImportance, ImportanceConfig, importance_view_rows
from repro.engine.text_index import InvertedTextIndex, TextDocument
from repro.engine.vector_db import VectorDB
from repro.errors import StoreError
from repro.model.entity import KGEntity
from repro.model.provenance import Provenance
from repro.model.triples import ExtendedTriple, TripleStore


def triple(subject, predicate, obj, source="wiki"):
    return ExtendedTriple(subject=subject, predicate=predicate, obj=obj,
                          provenance=Provenance.from_source(source, 0.9))


# --------------------------------------------------------------------- #
# EntityStore
# --------------------------------------------------------------------- #
def test_entity_store_update_from_triple_store():
    store = TripleStore([
        triple("kg:e1", "name", "Echo Valley"),
        triple("kg:e1", "type", "music_artist"),
        triple("kg:e2", "name", "Apex Records"),
    ])
    entity_store = EntityStore()
    refreshed = entity_store.update_from_store(store)
    assert refreshed == 2
    document = entity_store.get("kg:e1")
    assert document.name == "Echo Valley"
    assert document.types == ["music_artist"]
    assert "kg:e1" in entity_store and len(entity_store) == 2
    assert entity_store.get_many(["kg:e1", "kg:missing"])[0].entity_id == "kg:e1"

    # Incremental update for a deleted subject removes the document.
    store.remove_subject("kg:e2")
    entity_store.update_from_store(store, ["kg:e2"])
    assert entity_store.get("kg:e2") is None


def test_entity_store_importance_and_errors():
    entity_store = EntityStore()
    entity_store.put(EntityDocument.from_entity(KGEntity("kg:e1", names=["X"]), importance=0.2))
    entity_store.set_importance("kg:e1", 0.9)
    assert entity_store.get("kg:e1").importance == 0.9
    with pytest.raises(StoreError):
        entity_store.set_importance("kg:missing", 0.5)


# --------------------------------------------------------------------- #
# InvertedTextIndex
# --------------------------------------------------------------------- #
def test_text_index_ranks_relevant_documents_first():
    index = InvertedTextIndex()
    index.index_many([
        TextDocument("kg:e1", "Echo Valley pop music artist"),
        TextDocument("kg:e2", "Crimson Skies rock band"),
        TextDocument("kg:e3", "Echo chamber effects pedal"),
    ])
    hits = index.search("Echo Valley", k=3)
    assert hits[0].doc_id == "kg:e1"
    assert len(index) == 3
    assert index.search("zzz nonexistent") == []
    assert index.search("", k=5) == []


def test_text_index_boost_and_incremental_updates():
    index = InvertedTextIndex()
    index.index(TextDocument("a", "madison concert", boost=1.0))
    index.index(TextDocument("b", "madison concert", boost=3.0))
    assert index.search("madison")[0].doc_id == "b"
    index.index(TextDocument("a", "completely different now"))
    assert all(hit.doc_id != "a" for hit in index.search("madison"))
    assert index.remove("b") is True
    assert index.remove("b") is False
    assert "b" not in index


# --------------------------------------------------------------------- #
# VectorDB
# --------------------------------------------------------------------- #
def test_vector_db_knn_and_filters():
    db = VectorDB(dimension=3)
    db.upsert("a", [1.0, 0.0, 0.0], {"type": "person"})
    db.upsert("b", [0.9, 0.1, 0.0], {"type": "person"})
    db.upsert("c", [0.0, 0.0, 1.0], {"type": "song"})
    hits = db.search([1.0, 0.0, 0.0], k=2)
    assert [hit.key for hit in hits] == ["a", "b"]
    filtered = db.search([1.0, 0.0, 0.0], k=3, attribute_filter={"type": "song"})
    assert [hit.key for hit in filtered] == ["c"]
    excluded = db.search([1.0, 0.0, 0.0], k=2, exclude=["a"])
    assert excluded[0].key == "b"
    people_view = db.filtered_view({"type": "person"})
    assert len(people_view) == 2


def test_vector_db_upsert_delete_and_validation():
    db = VectorDB(dimension=2)
    db.upsert("a", [1.0, 0.0])
    db.upsert("a", [0.0, 1.0])                      # replace
    assert np.allclose(db.get("a"), [0.0, 1.0])
    assert db.delete("a") is True
    assert db.delete("a") is False
    assert db.get("a") is None
    with pytest.raises(StoreError):
        db.upsert("bad", [1.0, 2.0, 3.0])
    with pytest.raises(StoreError):
        db.search([1.0, 2.0, 3.0])
    with pytest.raises(StoreError):
        VectorDB(dimension=0)
    with pytest.raises(StoreError):
        VectorDB(dimension=2, metric="manhattan")


def test_vector_db_delete_renumbers_rows():
    db = VectorDB(dimension=2)
    db.upsert("a", [1.0, 0.0])
    db.upsert("b", [0.0, 1.0])
    db.upsert("c", [1.0, 1.0])
    db.delete("b")
    assert [hit.key for hit in db.search([0.9, 0.1], k=1)] == ["a"]
    assert "c" in db and len(db) == 2


# --------------------------------------------------------------------- #
# EntityImportance
# --------------------------------------------------------------------- #
@pytest.fixture
def linked_store():
    store = TripleStore()
    # hub entity referenced by three others; all from two sources
    for index in range(1, 4):
        store.add(triple(f"kg:e{index}", "name", f"Entity {index}", source="wiki"))
        store.add(triple(f"kg:e{index}", "spouse", "kg:hub", source="wiki"))
    store.add(triple("kg:hub", "name", "Hub Entity", source="wiki"))
    store.add(triple("kg:hub", "name", "Hub Entity", source="musicdb"))
    store.add(triple("kg:isolated", "name", "Nobody", source="wiki"))
    return store


def test_importance_favours_connected_multi_source_entities(linked_store):
    importance = EntityImportance()
    scores = importance.compute(linked_store)
    assert scores["kg:hub"].in_degree == 3
    assert scores["kg:hub"].identity_count == 2
    assert scores["kg:hub"].score > scores["kg:isolated"].score
    top = importance.top_entities(linked_store, k=1)
    assert top[0].entity_id == "kg:hub"


def test_importance_rows_and_weights(linked_store):
    config = ImportanceConfig(weight_in_degree=1.0, weight_out_degree=0.0,
                              weight_identities=0.0, weight_pagerank=0.0)
    scores = EntityImportance(config).compute(linked_store)
    assert scores["kg:hub"].score == pytest.approx(1.0)
    rows = importance_view_rows(scores.values())
    assert rows[0]["subject"] == "kg:hub"
    assert set(rows[0]) == {"subject", "in_degree", "out_degree", "identity_count",
                            "pagerank", "importance"}


def test_importance_of_empty_store():
    assert EntityImportance().compute(TripleStore()) == {}
