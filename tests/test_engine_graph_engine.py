"""Tests for the GraphEngine facade: polystore consistency, freshness, views."""

import pytest

from repro.engine.analytics import EntityViewSpec
from repro.engine.graph_engine import GraphEngine
from repro.engine.agents import OrchestrationAgent
from repro.errors import EngineError
from repro.model.provenance import Provenance
from repro.model.triples import ExtendedTriple, TripleStore


def triple(subject, predicate, obj, source="wiki"):
    return ExtendedTriple(subject=subject, predicate=predicate, obj=obj,
                          provenance=Provenance.from_source(source, 0.9))


@pytest.fixture
def construction_store():
    store = TripleStore([
        triple("kg:a1", "type", "music_artist"),
        triple("kg:a1", "name", "Echo Valley"),
        triple("kg:a1", "genre", "pop"),
        triple("kg:a1", "record_label", "kg:l1"),
        triple("kg:l1", "type", "record_label"),
        triple("kg:l1", "name", "Apex Records"),
        triple("kg:p1", "type", "person", source="fanwiki"),
        triple("kg:p1", "name", "Fan Person", source="fanwiki"),
    ])
    return store


@pytest.fixture
def engine(ontology, construction_store):
    engine = GraphEngine(ontology)
    engine.publish_store(construction_store, source_id="construction")
    return engine


def test_publish_keeps_all_stores_consistent(engine, construction_store):
    assert engine.triples.fact_count() == construction_store.fact_count()
    assert engine.analytics.triple_count() == construction_store.fact_count()
    assert len(engine.entity_store) == construction_store.entity_count()
    assert engine.entity("kg:a1").name == "Echo Valley"
    hits = engine.search("Echo Valley")
    assert hits and hits[0].doc_id == "kg:a1"
    assert engine.freshness() == {"primary": 0, "analytics": 0, "entity_store": 0,
                                  "text_index": 0}
    assert engine.minimum_version() == engine.log.head_lsn()


def test_incremental_publish_updates_only_changed_subjects(engine, construction_store):
    construction_store.add(triple("kg:a1", "genre", "indie", source="musicdb"))
    construction_store.add(triple("kg:a2", "type", "music_artist", source="musicdb"))
    construction_store.add(triple("kg:a2", "name", "Crimson Skies", source="musicdb"))
    engine.publish_subjects(construction_store, ["kg:a1", "kg:a2"], source_id="musicdb")
    assert engine.entity("kg:a2").name == "Crimson Skies"
    assert sorted(engine.triples.values_of("kg:a1", "genre")) == ["indie", "pop"]
    assert engine.search("Crimson")[0].doc_id == "kg:a2"


def test_deleted_subjects_are_removed_everywhere(engine, construction_store):
    construction_store.remove_subject("kg:p1")
    engine.publish_subjects(construction_store, [], deleted_subjects=["kg:p1"],
                            source_id="construction")
    assert engine.triples.facts_about("kg:p1") == []
    assert engine.entity("kg:p1") is None
    assert all(hit.doc_id != "kg:p1" for hit in engine.search("Fan Person"))


def test_remove_source_operation(engine):
    assert engine.triples.facts_about("kg:p1")
    engine.remove_source("fanwiki")
    assert engine.triples.facts_about("kg:p1") == []


def test_deferred_replay_and_lag(ontology, construction_store):
    engine = GraphEngine(ontology)
    engine.publish_store(construction_store, replay=False)
    lag = engine.freshness()
    assert all(value == 1 for value in lag.values())
    engine.replay()
    assert all(value == 0 for value in engine.freshness().values())


def test_entity_view_and_importance(engine):
    view = engine.entity_view(EntityViewSpec(
        name="artists", entity_type="music_artist",
        predicates=("genre",), reference_joins={"label": "record_label"},
    ))
    row = view.rows[0]
    assert row["label"] == "Apex Records"
    scores = engine.importance_scores()
    assert "kg:l1" in scores
    assert engine.entity("kg:l1").importance == scores["kg:l1"].score


def test_standard_views_dependency_graph(engine):
    names = engine.register_standard_views()
    assert set(names) == {"entity_importance", "entity_features", "ranked_entity_index",
                          "entity_neighbourhood"}
    timings = engine.materialize_views(reuse_shared=True)
    assert set(timings) == set(names)
    features = engine.view_artifact("entity_features")
    assert any(row["subject"] == "kg:a1" for row in features)
    ranked_hits = engine.search("Echo Valley")
    assert any(hit.doc_id.startswith("ranked:") or hit.doc_id == "kg:a1" for hit in ranked_hits)
    neighbourhood = engine.view_artifact("entity_neighbourhood")
    assert any(edge["source"] == "kg:a1" and edge["target"] == "kg:l1" for edge in neighbourhood)
    # registering twice is a no-op
    assert engine.register_standard_views() == names
    engine.update_views(["kg:a1"])


def test_register_agent_rejects_duplicates(engine):
    class NullAgent(OrchestrationAgent):
        def apply(self, record, payload):
            pass

    engine.register_agent(NullAgent("extra_store"))
    with pytest.raises(EngineError):
        engine.register_agent(NullAgent("extra_store"))


def test_log_durability_via_graph_engine(ontology, construction_store, tmp_path):
    path = tmp_path / "engine.log"
    engine = GraphEngine(ontology, log_path=str(path))
    engine.publish_store(construction_store)
    assert path.exists()
    assert engine.log.head_lsn() == 1
