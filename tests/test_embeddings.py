"""Tests for KG embeddings: models, trainers, partition buffer, and tasks."""

import numpy as np
import pytest

from repro.engine.vector_db import VectorDB
from repro.errors import EmbeddingError
from repro.ml.embeddings import (
    EmbeddingConfig,
    EmbeddingTasks,
    InMemoryTrainer,
    PartitionBufferTrainer,
    PartitionConfig,
    TrainerConfig,
    TransE,
    evaluate_link_prediction,
    extract_edges,
    make_model,
    sample_negatives,
)
from repro.model.triples import TripleStore


@pytest.fixture(scope="module")
def edge_list(reference_store):
    return extract_edges(reference_store)


@pytest.fixture(scope="module")
def trained(edge_list):
    trainer = InMemoryTrainer(
        "transe",
        EmbeddingConfig(dimension=16, seed=3),
        TrainerConfig(epochs=8, batch_size=128, seed=3),
    )
    report = trainer.train(edge_list)
    return trainer.model, report


# --------------------------------------------------------------------- #
# edge extraction
# --------------------------------------------------------------------- #
def test_extract_edges_filters_metadata(reference_store, edge_list):
    assert edge_list.num_edges > 0
    assert edge_list.num_entities > 0
    assert "name" not in edge_list.relation_ids
    assert "type" not in edge_list.relation_ids
    assert "performed_by" in edge_list.relation_ids or "birth_place" in edge_list.relation_ids
    assert edge_list.edges.max() < edge_list.num_entities


def test_extract_edges_requires_relationship_facts():
    with pytest.raises(EmbeddingError):
        extract_edges(TripleStore())


def test_edge_list_split_shares_vocabulary(edge_list):
    train, test = edge_list.split(test_fraction=0.2, seed=1)
    assert train.num_edges + test.num_edges == edge_list.num_edges
    assert train.entity_index is edge_list.entity_index
    assert test.num_edges >= 1


def test_sample_negatives_corrupts_one_side(edge_list):
    rng = np.random.default_rng(0)
    positives = edge_list.edges[:50]
    negatives = sample_negatives(positives, edge_list.num_entities, rng)
    assert negatives.shape == positives.shape
    changed = (negatives != positives).any(axis=1)
    assert changed.mean() > 0.5
    # relations are never corrupted
    assert (negatives[:, 1] == positives[:, 1]).all()


# --------------------------------------------------------------------- #
# models
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("model_name", ["transe", "distmult"])
def test_models_score_and_train_step(model_name, edge_list):
    model = make_model(model_name, edge_list.num_entities, edge_list.num_relations,
                       EmbeddingConfig(dimension=8, seed=1))
    positives = edge_list.edges[:32]
    rng = np.random.default_rng(1)
    negatives = sample_negatives(positives, edge_list.num_entities, rng)
    scores = model.score(positives[:, 0], positives[:, 1], positives[:, 2])
    assert scores.shape == (32,)
    loss = model.train_step(positives, negatives)
    assert loss >= 0.0
    all_scores = model.score_all_objects(0, 0)
    assert all_scores.shape == (edge_list.num_entities,)
    assert model.predicted_object_vector(0, 0).shape == (8,)


def test_make_model_rejects_unknown_name(edge_list):
    with pytest.raises(EmbeddingError):
        make_model("complex", 10, 2)
    with pytest.raises(EmbeddingError):
        TransE(0, 1, EmbeddingConfig())


def test_training_improves_link_prediction_over_random(edge_list, trained):
    model, report = trained
    assert report.final_loss <= report.loss_history[0]
    train, test = edge_list.split(test_fraction=0.1, seed=2)
    untrained = make_model("transe", edge_list.num_entities, edge_list.num_relations,
                           EmbeddingConfig(dimension=16, seed=99))
    trained_metrics = evaluate_link_prediction(model, test.edges[:60])
    untrained_metrics = evaluate_link_prediction(untrained, test.edges[:60])
    assert trained_metrics["mrr"] > untrained_metrics["mrr"]
    assert 0.0 <= trained_metrics["hits@10"] <= 1.0


def test_distmult_training_reduces_loss(edge_list):
    trainer = InMemoryTrainer("distmult", EmbeddingConfig(dimension=8, seed=2),
                              TrainerConfig(epochs=4, batch_size=128, seed=2))
    report = trainer.train(edge_list)
    assert report.model_name == "distmult"
    assert report.final_loss <= report.loss_history[0]
    assert report.peak_memory_bytes > 0


# --------------------------------------------------------------------- #
# partition-buffer (Marius-style) training
# --------------------------------------------------------------------- #
def test_partition_buffer_training_bounds_memory(edge_list):
    full = InMemoryTrainer("transe", EmbeddingConfig(dimension=16, seed=4),
                           TrainerConfig(epochs=2, seed=4))
    full_report = full.train(edge_list)
    partitioned = PartitionBufferTrainer(
        "transe",
        EmbeddingConfig(dimension=16, seed=4),
        TrainerConfig(epochs=2, seed=4),
        PartitionConfig(num_partitions=8, buffer_partitions=2),
    )
    partition_report = partitioned.train(edge_list)
    assert partition_report.peak_memory_bytes < full_report.peak_memory_bytes
    assert partition_report.partition_swaps > 0
    assert partition_report.extra["buffer_partitions"] == 2
    # quality remains usable despite the bounded buffer
    _, test = edge_list.split(test_fraction=0.1, seed=5)
    metrics = evaluate_link_prediction(partitioned.model, test.edges[:40])
    assert metrics["mrr"] > 0.0


def test_partition_config_validation():
    with pytest.raises(EmbeddingError):
        PartitionConfig(num_partitions=2, buffer_partitions=1)
    with pytest.raises(EmbeddingError):
        PartitionConfig(num_partitions=2, buffer_partitions=4)


# --------------------------------------------------------------------- #
# downstream tasks
# --------------------------------------------------------------------- #
def test_fact_ranking_and_verification(trained, edge_list, world):
    model, _ = trained
    tasks = EmbeddingTasks(model, edge_list)
    artist = next(a for a in world.of_type("music_artist")
                  if a.truth_id in edge_list.entity_index
                  and a.facts.get("record_label") in edge_list.entity_index)
    true_label = artist.facts["record_label"]
    other_labels = [l.truth_id for l in world.of_type("record_label")
                    if l.truth_id in edge_list.entity_index][:3]
    ranked = tasks.rank_facts(artist.truth_id, "record_label",
                              [true_label, *[l for l in other_labels if l != true_label]])
    assert ranked[0].rank == 1
    assert len({fact.rank for fact in ranked}) == len(ranked)

    facts = [(artist.truth_id, "record_label", label) for label in other_labels]
    all_facts = facts + [(artist.truth_id, "record_label", true_label)]
    findings = tasks.verify_facts(all_facts, zscore_threshold=-10.0)
    assert findings == []                                 # nothing is 10 sigmas below the mean
    loose = tasks.verify_facts(all_facts, zscore_threshold=0.0)
    assert all(finding.zscore <= 0.0 for finding in loose)
    assert tasks.verify_facts([]) == []


def test_missing_fact_imputation_and_vector_db(trained, edge_list):
    model, _ = trained
    tasks = EmbeddingTasks(model, edge_list)
    subject, relation, obj = edge_list.edges[0]
    subject_id = edge_list.entity_ids[subject]
    relation_id = edge_list.relation_ids[relation]
    candidates = tasks.impute_missing(subject_id, relation_id, k=5)
    assert len(candidates) == 5
    assert all(c.subject == subject_id for c in candidates)
    assert subject_id not in [c.candidate for c in candidates]

    vector_db = VectorDB(dimension=model.entity_embeddings.shape[1])
    exported = tasks.export_to_vector_db(vector_db)
    assert exported == edge_list.num_entities
    via_db = tasks.impute_with_vector_db(vector_db, subject_id, relation_id, k=3)
    assert len(via_db) == 3


def test_tasks_error_on_unknown_entities(trained, edge_list):
    model, _ = trained
    tasks = EmbeddingTasks(model, edge_list)
    with pytest.raises(EmbeddingError):
        tasks.fact_score("truth:unknown", "performed_by", edge_list.entity_ids[0])
    with pytest.raises(EmbeddingError):
        tasks.impute_missing(edge_list.entity_ids[0], "not_a_relation")
