"""Tests for ontology alignment and PGFs (repro.ingestion.alignment)."""

import pytest

from repro.errors import AlignmentError
from repro.ingestion.alignment import (
    PGF,
    AlignmentConfig,
    OntologyAligner,
    join_title,
    split_list,
    to_int,
)
from repro.model.entity import SourceEntity
from repro.model.ontology import default_ontology


@pytest.fixture
def movie_entity():
    return SourceEntity(
        entity_id="moviedb:m1",
        entity_type="film",
        properties={
            "title": "The Lost Kingdom",
            "sequel_number": "II",
            "category": "adventure",
            "director": "R. Smith",
            "year": "2009",
            "internal_code": "zzz",
        },
        source_id="moviedb",
        trust=0.7,
    )


@pytest.fixture
def movie_config():
    config = AlignmentConfig(
        source_id="moviedb",
        type_map={"film": "movie"},
        drop_predicates=("internal_code",),
    )
    config.pgfs.extend([
        PGF("name", ("title",)),
        PGF("full_title", ("title", "sequel_number"), combine=join_title),
        PGF("genre", ("category",)),
        PGF("directed_by", ("director",)),
        PGF("release_date", ("year",), transform=to_int),
    ])
    return config


def test_pgf_validates_inputs():
    with pytest.raises(AlignmentError):
        PGF("", ("a",))
    with pytest.raises(AlignmentError):
        PGF("target", ())


def test_pgf_single_source_copy_and_transform():
    pgf = PGF("release_date", ("year",), transform=to_int)
    assert pgf.apply({"year": "1999"}) == 1999
    assert pgf.apply({"year": None}) is None


def test_pgf_combines_multiple_sources():
    pgf = PGF("full_title", ("title", "sequel_number"), combine=join_title)
    assert pgf.apply({"title": "Movie", "sequel_number": "II"}) == "Movie II"
    assert pgf.apply({"title": "Movie"}) == "Movie"
    assert pgf.apply({}) is None


def test_pgf_default_combination_joins_with_space():
    pgf = PGF("name", ("first", "last"))
    assert pgf.apply({"first": "Ada", "last": "Lovelace"}) == "Ada Lovelace"


def test_pgf_transform_applies_to_list_values():
    pgf = PGF("genre", ("categories",), transform=split_list("|"))
    assert pgf.apply({"categories": "pop|rock"}) == ["pop", "rock"]


def test_aligner_maps_schema_and_type(movie_entity, movie_config):
    aligner = OntologyAligner(default_ontology(), movie_config)
    aligned, report = aligner.align([movie_entity])
    entity = aligned[0]
    assert entity.entity_type == "movie"
    assert entity.properties["name"] == "The Lost Kingdom"
    assert entity.properties["full_title"] == "The Lost Kingdom II"
    assert entity.properties["genre"] == "adventure"
    assert entity.properties["release_date"] == 2009
    assert "internal_code" not in entity.properties
    assert report.aligned == 1
    assert report.unknown_types == {}


def test_aligner_passthrough_of_ontology_predicates(movie_config):
    entity = SourceEntity(
        entity_id="moviedb:m2",
        entity_type="film",
        properties={"title": "X", "popularity": 0.4, "unmapped_column": "noise"},
        source_id="moviedb",
    )
    aligner = OntologyAligner(default_ontology(), movie_config)
    aligned, report = aligner.align([entity])
    assert aligned[0].properties["popularity"] == 0.4            # already in ontology
    assert "unmapped_column" not in aligned[0].properties
    assert "unmapped_column" in report.unknown_predicates


def test_aligner_reports_missing_required_predicates():
    config = AlignmentConfig(source_id="src")
    config.pgfs.append(PGF("name", ("title",), required=True))
    aligner = OntologyAligner(default_ontology(), config)
    entity = SourceEntity(entity_id="src:1", properties={"other": "x"}, source_id="src")
    _, report = aligner.align([entity])
    assert report.missing_required == ["src:1:name"]


def test_aligner_reports_unknown_entity_type():
    config = AlignmentConfig(source_id="src", default_type="person")
    aligner = OntologyAligner(default_ontology(), config)
    entity = SourceEntity(entity_id="src:1", entity_type="martian",
                          properties={"name": "Zork"}, source_id="src")
    aligned, report = aligner.align([entity])
    assert "martian" in report.unknown_types
    assert aligned[0].entity_type == "person"


def test_add_rename_convenience():
    config = AlignmentConfig(source_id="src").add_rename("category", "genre")
    assert config.pgfs[0].target_predicate == "genre"
    assert config.mapped_source_predicates() == {"category"}
