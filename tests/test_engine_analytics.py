"""Tests for the analytics warehouse and Relation operators."""

import pytest

from repro.engine.analytics import AnalyticsStore, EntityViewSpec, Relation
from repro.errors import StoreError
from repro.model.provenance import Provenance
from repro.model.triples import ExtendedTriple


def triple(subject, predicate, obj, r_id=None, r_pred=None):
    return ExtendedTriple(subject=subject, predicate=predicate, obj=obj,
                          relationship_id=r_id, relationship_predicate=r_pred,
                          provenance=Provenance.from_source("src", 0.9))


@pytest.fixture
def warehouse():
    store = AnalyticsStore()
    store.ingest([
        triple("kg:a1", "type", "music_artist"),
        triple("kg:a1", "name", "Echo Valley"),
        triple("kg:a1", "genre", "pop"),
        triple("kg:a1", "record_label", "kg:l1"),
        triple("kg:a2", "type", "music_artist"),
        triple("kg:a2", "name", "Crimson Skies"),
        triple("kg:a2", "genre", "rock"),
        triple("kg:l1", "type", "record_label"),
        triple("kg:l1", "name", "Apex Records"),
        triple("kg:l1", "headquarters", "kg:c1"),
        triple("kg:c1", "type", "city"),
        triple("kg:c1", "name", "Springfield"),
        triple("kg:s1", "type", "song"),
        triple("kg:s1", "name", "Night Drive"),
        triple("kg:s1", "performed_by", "kg:a1"),
    ])
    return store


# --------------------------------------------------------------------- #
# Relation operators
# --------------------------------------------------------------------- #
def test_relation_filter_project_rename_distinct():
    relation = Relation("r", [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}, {"a": 1, "b": "x"}])
    assert len(relation.filter(lambda row: row["a"] == 1)) == 2
    assert relation.project(["a"]).columns() == ["a"]
    assert relation.rename({"a": "alpha"}).columns() == ["alpha", "b"]
    assert len(relation.distinct()) == 2


def test_relation_hash_join_inner_and_left():
    left = Relation("l", [{"id": 1, "x": "a"}, {"id": 2, "x": "b"}])
    right = Relation("r", [{"ref": 1, "y": "A"}])
    inner = left.hash_join(right, "id", "ref")
    assert len(inner) == 1 and inner.rows[0]["y"] == "A"
    outer = left.hash_join(right, "id", "ref", how="left")
    assert len(outer) == 2
    missing = [row for row in outer.rows if row["id"] == 2][0]
    assert "y" not in missing
    with pytest.raises(StoreError):
        left.hash_join(right, "id", "ref", how="full")


def test_relation_group_by():
    relation = Relation("r", [{"k": "a", "v": 1}, {"k": "a", "v": 3}, {"k": "b", "v": 5}])
    grouped = relation.group_by(["k"], {"total": lambda rows: sum(r["v"] for r in rows)})
    totals = {row["k"]: row["total"] for row in grouped.rows}
    assert totals == {"a": 4, "b": 5}


# --------------------------------------------------------------------- #
# AnalyticsStore
# --------------------------------------------------------------------- #
def test_ingest_and_basic_lookups(warehouse):
    assert warehouse.triple_count() == 15
    assert warehouse.subjects_of_type("music_artist") == ["kg:a1", "kg:a2"]
    assert "record_label" in warehouse.entity_types()
    assert warehouse.display_name("kg:a1") == "Echo Valley"
    assert warehouse.display_name("kg:unknown") == "kg:unknown"
    assert len(warehouse.predicate_relation("genre")) == 2
    assert len(warehouse.full_relation()) == 15


def test_entity_view_with_reference_join(warehouse):
    spec = EntityViewSpec(
        name="artists",
        entity_type="music_artist",
        predicates=("genre",),
        reference_joins={"label_name": "record_label"},
    )
    view = warehouse.entity_view(spec)
    rows = {row["subject"]: row for row in view.rows}
    assert rows["kg:a1"]["genre"] == "pop"
    assert rows["kg:a1"]["label_name"] == "Apex Records"
    assert rows["kg:a2"].get("label_name") is None
    assert warehouse.joins_executed > 0


def test_entity_view_with_nested_join(warehouse):
    spec = EntityViewSpec(
        name="artist_label_city",
        entity_type="music_artist",
        nested_joins={"label_city": ("record_label", "headquarters")},
    )
    view = warehouse.entity_view(spec)
    rows = {row["subject"]: row for row in view.rows}
    assert rows["kg:a1"]["label_city"] == "Springfield"


def test_remove_and_refresh_subjects(warehouse):
    removed = warehouse.remove_subjects(["kg:a2"])
    assert removed == 3
    assert warehouse.subjects_of_type("music_artist") == ["kg:a1"]
    warehouse.refresh_subjects(
        ["kg:a1"],
        [triple("kg:a1", "type", "music_artist"), triple("kg:a1", "name", "Echo Valley (new)"),
         triple("kg:a1", "genre", "indie")],
    )
    assert warehouse.display_name("kg:a1") == "Echo Valley (new)"
    rows = warehouse.predicate_relation("genre").rows
    assert [row["object"] for row in rows if row["subject"] == "kg:a1"] == ["indie"]


def test_composite_triples_index_under_relationship_predicate(warehouse):
    warehouse.ingest([
        triple("kg:a1", "educated_at", "UW", r_id="rel:1", r_pred="school"),
    ])
    assert len(warehouse.predicate_relation("school")) == 1
    assert len(warehouse.predicate_relation("educated_at")) == 0
