"""Tests for the extended-triples model and TripleStore (repro.model.triples)."""

import pytest

from repro.errors import DataModelError
from repro.model.provenance import Provenance
from repro.model.triples import ExtendedTriple, TripleStore


def make_triple(subject="kg:e1", predicate="name", obj="J. Smith", source="src1", trust=0.9,
                relationship_id=None, relationship_predicate=None):
    return ExtendedTriple(
        subject=subject,
        predicate=predicate,
        obj=obj,
        relationship_id=relationship_id,
        relationship_predicate=relationship_predicate,
        provenance=Provenance.from_source(source, trust),
    )


# --------------------------------------------------------------------- #
# ExtendedTriple
# --------------------------------------------------------------------- #
def test_triple_requires_subject_and_predicate():
    with pytest.raises(DataModelError):
        ExtendedTriple(subject="", predicate="name", obj="x")
    with pytest.raises(DataModelError):
        ExtendedTriple(subject="kg:e1", predicate="", obj="x")


def test_relationship_fields_must_be_set_together():
    with pytest.raises(DataModelError):
        ExtendedTriple(subject="kg:e1", predicate="educated_at", obj="UW",
                       relationship_id="rel:1", relationship_predicate=None)


def test_composite_flag_and_key():
    simple = make_triple()
    composite = make_triple(predicate="educated_at", obj="UW",
                            relationship_id="rel:1", relationship_predicate="school")
    assert not simple.is_composite
    assert composite.is_composite
    assert simple.key() != composite.key()


def test_to_row_from_row_roundtrip():
    triple = make_triple(predicate="educated_at", obj="UW",
                         relationship_id="rel:1", relationship_predicate="school")
    row = triple.to_row()
    assert row["r_id"] == "rel:1"
    restored = ExtendedTriple.from_row(row)
    assert restored.key() == triple.key()
    assert restored.sources == triple.sources
    assert restored.trust == triple.trust


def test_with_subject_and_with_object_do_not_share_provenance():
    triple = make_triple()
    relinked = triple.with_subject("kg:e2")
    relinked.provenance.add("src2")
    assert triple.sources == ["src1"]
    assert relinked.subject == "kg:e2"
    resolved = triple.with_object("kg:e3")
    assert resolved.obj == "kg:e3"
    assert triple.obj == "J. Smith"


# --------------------------------------------------------------------- #
# TripleStore
# --------------------------------------------------------------------- #
def test_store_add_merges_provenance_of_equal_facts():
    store = TripleStore()
    store.add(make_triple(source="src1"))
    store.add(make_triple(source="src2"))
    assert store.fact_count() == 1
    stored = store.facts_about("kg:e1")[0]
    assert sorted(stored.sources) == ["src1", "src2"]


def test_store_indexes_and_lookups():
    store = TripleStore([
        make_triple(),
        make_triple(predicate="birth_date", obj="1980-01-01"),
        make_triple(subject="kg:e2", predicate="name", obj="A. Jones"),
        make_triple(subject="kg:e2", predicate="spouse", obj="kg:e1"),
    ])
    assert store.entity_count() == 2
    assert store.fact_count() == 4
    assert store.value_of("kg:e1", "birth_date") == "1980-01-01"
    assert store.values_of("kg:e1", "name") == ["J. Smith"]
    assert {t.subject for t in store.facts_with_predicate("name")} == {"kg:e1", "kg:e2"}
    assert [t.subject for t in store.facts_with_object("kg:e1")] == ["kg:e2"]
    assert store.predicates() == {"name", "birth_date", "spouse"}


def test_store_relationship_facts_grouping():
    store = TripleStore([
        make_triple(predicate="educated_at", obj="UW",
                    relationship_id="rel:1", relationship_predicate="school"),
        make_triple(predicate="educated_at", obj="PhD",
                    relationship_id="rel:1", relationship_predicate="degree"),
        make_triple(predicate="educated_at", obj="MIT",
                    relationship_id="rel:2", relationship_predicate="school"),
    ])
    grouped = store.relationship_facts("kg:e1", "educated_at")
    assert set(grouped) == {"rel:1", "rel:2"}
    assert len(grouped["rel:1"]) == 2


def test_remove_subject_and_discard():
    store = TripleStore([make_triple(), make_triple(subject="kg:e2")])
    assert store.remove_subject("kg:e1") == 1
    assert store.entity_count() == 1
    assert store.discard(make_triple(subject="kg:e2")) is True
    assert store.fact_count() == 0


def test_remove_source_purges_unsupported_facts():
    store = TripleStore()
    store.add(make_triple(source="a"))
    store.add(make_triple(source="b"))               # same fact, second source
    store.add(make_triple(predicate="birth_date", obj="1980", source="a"))
    removed = store.remove_source("a")
    assert removed == 1                              # only the single-source fact vanishes
    assert store.fact_count() == 1
    assert store.facts_about("kg:e1")[0].sources == ["b"]


def test_overwrite_source_partition_replaces_only_that_source():
    store = TripleStore()
    store.add(make_triple(predicate="popularity", obj=0.5, source="musicdb"))
    store.add(make_triple(predicate="name", obj="X", source="wiki"))
    removed, added = store.overwrite_source_partition(
        "musicdb", [make_triple(predicate="popularity", obj=0.9, source="musicdb")]
    )
    assert removed == 1
    assert added == 1
    assert store.value_of("kg:e1", "popularity") == 0.9
    assert store.value_of("kg:e1", "name") == "X"


def test_snapshot_is_independent():
    store = TripleStore([make_triple()])
    snapshot = store.snapshot()
    store.add(make_triple(predicate="birth_date", obj="1980"))
    assert snapshot.fact_count() == 1
    assert store.fact_count() == 2


def test_filter_and_rows_roundtrip():
    store = TripleStore([make_triple(), make_triple(predicate="birth_date", obj="1980")])
    names_only = store.filter(lambda t: t.predicate == "name")
    assert names_only.fact_count() == 1
    restored = TripleStore.from_rows(store.to_rows())
    assert restored.fact_count() == store.fact_count()


def test_contains_and_iteration():
    triple = make_triple()
    store = TripleStore([triple])
    assert triple in store
    assert make_triple(predicate="other") not in store
    assert len(list(store)) == 1
