"""The multi-tenant front door: admission, isolation, deadlines, metrics.

The admission contract: every refusal is typed and carries ``retry_after``
— the token bucket refuses sustained overrate (boundaries tested on a fake
clock), the bounded queue sheds lowest-priority-first (never anything more
important than the arrival), and deadlines are honored at arrival, while
queued, and at dispatch.  Queue depth never exceeds its capacity.

The isolation contract, property-tested over seeded two-tenant sequences on
a live fleet: a tenant only ever receives rows from its own KG slice, a
query outside the slice or against a forbidden view is refused at *plan*
time, and result caches are per-tenant objects — the same query text cached
by one tenant never produces a cache hit for another.  Shipped deltas
invalidate exactly the affected view's caches.

Sequence counts follow ``--runs-seeded`` (``fd_seed``, capped like the
other fleet-backed suites — see ``conftest.py``).
"""

from __future__ import annotations

import asyncio
import random
import threading

import pytest

from repro.engine.metadata import MetadataStore
from repro.engine.views import ViewCatalog, ViewDefinition, ViewDelta, ViewManager
from repro.errors import (
    DeadlineExceededError,
    FrontDoorError,
    LiveGraphError,
    OverloadedError,
    TenantIsolationError,
)
from repro.live.executor import QueryCache, QueryResult, QueryResultRow
from repro.live.planner import QueryPlanner
from repro.serving import (
    AdmissionQueue,
    FrontDoor,
    InMemoryJournalBackend,
    JournalStore,
    Priority,
    ServingFleet,
    TokenBucket,
)
from repro.serving.frontdoor.admission import Waiter


# ------------------------------------------------------------------ #
# harness: a typed row view over a mutable model, served by a fleet
# ------------------------------------------------------------------ #
TYPES = ("alpha", "beta")


class QueryModel:
    """Mutable entity store whose rows carry names, values, and types."""

    def __init__(self):
        self.entities: dict[str, dict] = {}

    def row(self, eid: str) -> dict:
        fields = self.entities[eid]
        return {
            "subject": eid,
            "name": f"Entity {eid}",
            "value": fields["value"],
            "types": [fields["type"]],
        }

    def subjects(self):
        return list(self.entities)


def build_query_harness(model: QueryModel):
    """One apply_delta-maintained row view over *model* plus its manager."""
    catalog = ViewCatalog()

    def create(context):
        return {eid: model.row(eid) for eid in sorted(model.entities)}

    def apply_delta(context, delta: ViewDelta):
        artifact = dict(context.artifact("profile_rows"))
        for eid in delta.changed:
            artifact[eid] = model.row(eid)
        for eid in delta.deleted:
            artifact.pop(eid, None)
        return artifact

    catalog.register(ViewDefinition(
        "profile_rows", "analytics", create=create, apply_delta=apply_delta,
    ))
    clock = {"lsn": 1}
    manager = ViewManager(
        catalog, engines={}, metadata=MetadataStore(),
        lsn_source=lambda: clock["lsn"], entity_source=model.subjects,
    )
    return catalog, manager, clock


def start_fleet(manager, num_replicas=3):
    fleet = ServingFleet(
        manager, num_replicas=num_replicas,
        journal_store=JournalStore(InMemoryJournalBackend()),
    ).start()
    fleet.serve_view("profile_rows")
    assert fleet.drain()
    return fleet


def seed_model(model: QueryModel, rng: random.Random, prefix_types=True, count=None):
    """Populate *model*; subjects carry their type's initial as a prefix."""
    n = count if count is not None else rng.randint(8, 20)
    for i in range(n):
        kind = rng.choice(TYPES)
        eid = f"{kind[0]}{i:02d}" if prefix_types else f"e{i:02d}"
        model.entities[eid] = {"type": kind, "value": rng.randint(0, 99)}
    return n


class FakeClock:
    """A hand-cranked monotonic clock for refill/deadline boundary tests."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ------------------------------------------------------------------ #
# stubs: a blockable single-view "fleet" for deterministic admission tests
# ------------------------------------------------------------------ #
class StubQueryRouter:
    """Executes instantly (or blocks on *gate*) and records dispatch order."""

    def __init__(self, gate: threading.Event | None = None):
        self.planner = QueryPlanner()
        self.gate = gate
        self.executed: list[str] = []
        self._lock = threading.Lock()

    def execute(self, plan, view_name, consistency, use_cache=True, vectorized=None):
        if self.gate is not None:
            assert self.gate.wait(timeout=10.0), "stub gate never opened"
        with self._lock:
            self.executed.append(plan.query.render())
        return QueryResult(rows=[QueryResultRow("view:v:e1", {"name": "Entity e1"})])

    def stats(self):
        return {"queries_routed": float(len(self.executed))}


class StubManager:
    def __init__(self):
        self.listeners = []

    def add_journal_listener(self, listener):
        self.listeners.append(listener)

    def remove_journal_listener(self, listener):
        self.listeners.remove(listener)


class StubFleet:
    """Just enough fleet surface for the FrontDoor: router, manager, metadata."""

    def __init__(self, gate: threading.Event | None = None):
        self.query_router = StubQueryRouter(gate)
        self.manager = StubManager()
        self.metadata = None


def make_door(gate=None, **kwargs) -> FrontDoor:
    door = FrontDoor(StubFleet(gate), **kwargs)
    door.registry.register("acme", views={"profile_rows"}, entity_types={"alpha"})
    return door


# ------------------------------------------------------------------ #
# token bucket: refill boundaries on a fake clock
# ------------------------------------------------------------------ #
def test_token_bucket_refill_boundaries():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
    # the burst drains exactly, then refusal quotes the next-token time
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == pytest.approx(0.5)
    # partial refill is still a refusal, with a shrunken retry_after
    clock.advance(0.25)
    assert bucket.try_acquire() == pytest.approx(0.25)
    assert bucket.tokens == pytest.approx(0.5)
    # crossing the one-token boundary exactly admits
    clock.advance(0.25)
    assert bucket.try_acquire() == 0.0
    assert bucket.tokens == pytest.approx(0.0)
    # refill is capped at the burst no matter how long the idle gap
    clock.advance(3600.0)
    assert bucket.tokens == pytest.approx(2.0)
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() > 0.0
    assert bucket.acquired == 5 and bucket.rejected == 3


def test_token_bucket_validation():
    with pytest.raises(FrontDoorError):
        TokenBucket(rate=0.0, burst=5)
    with pytest.raises(FrontDoorError):
        TokenBucket(rate=1.0, burst=0)


# ------------------------------------------------------------------ #
# admission queue: bounded, lowest-priority-first shedding
# ------------------------------------------------------------------ #
def test_admission_queue_sheds_lowest_priority_first():
    clock = FakeClock()
    queue = AdmissionQueue(capacity=2, clock=clock)
    batch = Waiter(priority=int(Priority.BATCH), seq=1, tenant_id="t")
    normal = Waiter(priority=int(Priority.NORMAL), seq=2, tenant_id="t")
    assert queue.offer(batch, 0.1) is None
    assert queue.offer(normal, 0.1) is None
    assert queue.depth == 2
    # an INTERACTIVE arrival displaces the BATCH waiter, not the NORMAL one
    interactive = Waiter(priority=int(Priority.INTERACTIVE), seq=3, tenant_id="t")
    displaced = queue.offer(interactive, 0.1)
    assert displaced is batch and batch.shed
    assert queue.depth == 2
    # an equal-priority arrival cannot displace anything: typed refusal
    late_normal = Waiter(priority=int(Priority.NORMAL), seq=4, tenant_id="t")
    with pytest.raises(OverloadedError) as excinfo:
        queue.offer(late_normal, 0.37)
    assert excinfo.value.retry_after == pytest.approx(0.37)
    # pop order is priority-then-arrival, tombstones are skipped silently
    first, expired = queue.pop_ready()
    assert first is interactive and expired == []
    second, _ = queue.pop_ready()
    assert second is normal
    assert queue.pop_ready() == (None, [])
    assert queue.stats()["sheds"] == 1
    assert queue.max_depth == 2     # boundedness held throughout


def test_admission_queue_expires_stale_waiters_on_pop():
    clock = FakeClock()
    queue = AdmissionQueue(capacity=4, clock=clock)
    stale = Waiter(priority=0, seq=1, tenant_id="t", deadline=1.0)
    fresh = Waiter(priority=1, seq=2, tenant_id="t", deadline=10.0)
    queue.offer(stale, 0.1)
    queue.offer(fresh, 0.1)
    clock.advance(2.0)
    waiter, expired = queue.pop_ready()
    assert waiter is fresh
    assert expired == [stale] and stale.expired
    assert queue.expirations == 1
    with pytest.raises(FrontDoorError):
        AdmissionQueue(capacity=0)


# ------------------------------------------------------------------ #
# the request path: deadlines, rate limits, shed ordering
# ------------------------------------------------------------------ #
def test_deadline_already_expired_on_arrival_burns_no_token():
    door = make_door()
    try:
        async def scenario():
            with pytest.raises(DeadlineExceededError):
                await door.query("acme", "MATCH alpha RETURN name",
                                 "profile_rows", deadline=0.0)
            with pytest.raises(DeadlineExceededError):
                await door.query("acme", "MATCH alpha RETURN name",
                                 "profile_rows", deadline=-5.0)
        asyncio.run(scenario())
        state = door.registry.get("acme")
        # the deadline gate precedes the bucket: no token was spent or refused
        assert state.bucket.acquired == 0 and state.bucket.rejected == 0
        snapshot = door.metrics.tenant_snapshot("acme")
        assert snapshot["deadline_exceeded"] == 2
        assert snapshot["admitted"] == 0
    finally:
        door.close()


def test_rate_limit_refusal_is_typed_and_quotes_retry_after():
    door = FrontDoor(StubFleet())
    door.registry.register("busy", views={"profile_rows"}, rate=1.0, burst=1)
    try:
        async def scenario():
            result = await door.query("busy", "MATCH alpha RETURN name", "profile_rows")
            assert not result.from_cache
            with pytest.raises(OverloadedError) as excinfo:
                await door.query("busy", "MATCH alpha RETURN value", "profile_rows")
            assert excinfo.value.retry_after > 0.0
        asyncio.run(scenario())
        snapshot = door.metrics.tenant_snapshot("busy")
        assert snapshot["rate_limited"] == 1
        assert snapshot["completed"] == 1
    finally:
        door.close()


def test_shed_ordering_under_mixed_priorities():
    """With one worker and a 2-deep queue: BATCH is displaced by INTERACTIVE,
    an equal-priority arrival is refused, and the queue drains in priority
    order once the slot frees."""
    gate = threading.Event()
    door = make_door(gate, max_concurrency=1, queue_capacity=2)
    q_running = "MATCH alpha RETURN name"
    q_batch = "MATCH alpha RETURN value"
    q_batch2 = "MATCH alpha RETURN name, value"
    q_interactive = "MATCH alpha RETURN *"
    q_refused = "MATCH alpha RETURN name LIMIT 1"
    try:
        async def scenario():
            running = asyncio.create_task(door.query(
                "acme", q_running, "profile_rows", use_cache=False))
            await asyncio.sleep(0.05)       # occupies the only worker (gated)
            batch = asyncio.create_task(door.query(
                "acme", q_batch, "profile_rows",
                priority=Priority.BATCH, use_cache=False))
            await asyncio.sleep(0.05)
            batch2 = asyncio.create_task(door.query(
                "acme", q_batch2, "profile_rows",
                priority=Priority.BATCH, use_cache=False))
            await asyncio.sleep(0.05)
            assert door.queue.depth == 2
            # arrival 1: INTERACTIVE displaces the newest BATCH waiter
            interactive = asyncio.create_task(door.query(
                "acme", q_interactive, "profile_rows",
                priority=Priority.INTERACTIVE, use_cache=False))
            await asyncio.sleep(0.05)
            assert door.queue.depth == 2    # bounded: still at capacity
            # arrival 2: BATCH cannot displace NORMAL-or-better -> refused
            with pytest.raises(OverloadedError) as refusal:
                await door.query("acme", q_refused, "profile_rows",
                                 priority=Priority.BATCH, use_cache=False)
            assert refusal.value.retry_after > 0.0
            shed_result = await asyncio.gather(batch2, return_exceptions=True)
            assert isinstance(shed_result[0], OverloadedError)
            gate.set()
            results = await asyncio.gather(running, batch, interactive)
            assert all(isinstance(r, QueryResult) for r in results)
        asyncio.run(scenario())
        # dispatch order: the running query, then INTERACTIVE before BATCH
        assert door.fleet.query_router.executed == [
            "MATCH alpha RETURN name",
            "MATCH alpha RETURN *",
            "MATCH alpha RETURN value",
        ]
        snapshot = door.metrics.tenant_snapshot("acme")
        assert snapshot["shed"] == 2            # one displaced + one refused
        assert snapshot["completed"] == 3
        assert door.queue.max_depth <= door.queue.capacity
    finally:
        gate.set()
        door.close()


def test_deadline_while_queued_is_refused_and_slot_not_leaked():
    gate = threading.Event()
    door = make_door(gate, max_concurrency=1, queue_capacity=4)
    try:
        async def scenario():
            running = asyncio.create_task(door.query(
                "acme", "MATCH alpha RETURN name", "profile_rows", use_cache=False))
            await asyncio.sleep(0.05)
            with pytest.raises(DeadlineExceededError):
                await door.query("acme", "MATCH alpha RETURN value",
                                 "profile_rows", deadline=0.1, use_cache=False)
            gate.set()
            await running
            # the freed slot was retired, not leaked to the dead waiter
            follow_up = await door.query(
                "acme", "MATCH alpha RETURN *", "profile_rows", use_cache=False)
            assert not follow_up.from_cache
        asyncio.run(scenario())
        snapshot = door.metrics.tenant_snapshot("acme")
        assert snapshot["deadline_exceeded"] == 1
        assert snapshot["completed"] == 2
        assert door._in_flight == 0
    finally:
        gate.set()
        door.close()


def test_front_door_constructor_and_registry_validation():
    with pytest.raises(FrontDoorError):
        FrontDoor(StubFleet(), max_concurrency=0)
    with pytest.raises(FrontDoorError):
        FrontDoor(StubFleet(), default_deadline=0.0)
    door = FrontDoor(StubFleet())
    try:
        door.registry.register("acme", views={"v"})
        with pytest.raises(FrontDoorError):
            door.registry.register("acme", views={"v"})     # duplicate
        with pytest.raises(FrontDoorError):
            door.registry.register("", views={"v"})
        with pytest.raises(FrontDoorError):
            door.registry.register("bad", views={"v"}, plan_cache_size=0)
        with pytest.raises(FrontDoorError):
            door.registry.register("bad", views={"v"}, result_cache_size=0)
        with pytest.raises(FrontDoorError):
            door.registry.get("nobody")
        async def scenario():
            with pytest.raises(FrontDoorError):
                await door.query("nobody", "MATCH alpha RETURN name", "v")
        asyncio.run(scenario())
    finally:
        door.close()


# ------------------------------------------------------------------ #
# tenant isolation: plan-time enforcement and per-tenant caches
# ------------------------------------------------------------------ #
def test_isolation_enforced_at_plan_time():
    door = make_door()     # tenant "acme": view profile_rows, types {alpha}
    try:
        async def scenario():
            # a view outside the allowed set is a hard boundary
            with pytest.raises(TenantIsolationError):
                await door.query("acme", "MATCH alpha RETURN name", "secret_view")
            # an entity type outside the slice is refused at compile time
            with pytest.raises(TenantIsolationError):
                await door.query("acme", "MATCH beta RETURN name", "profile_rows")
        asyncio.run(scenario())
        # nothing was dispatched to the fleet
        assert door.fleet.query_router.executed == []
        snapshot = door.metrics.tenant_snapshot("acme")
        assert snapshot["isolation_rejections"] == 2
        assert door.registry.stats()["acme"]["isolation_rejections"] == 2
    finally:
        door.close()


def test_result_caches_never_hit_across_tenants():
    """Two tenants sharing a view and a slice run the *same* query text; each
    tenant's first execution is a miss — the other's cached rows are
    unreachable."""
    door = FrontDoor(StubFleet())
    door.registry.register("one", views={"profile_rows"}, entity_types={"alpha"})
    door.registry.register("two", views={"profile_rows"}, entity_types={"alpha"})
    text = "MATCH alpha RETURN name"
    try:
        async def scenario():
            first = await door.query("one", text, "profile_rows")
            repeat = await door.query("one", text, "profile_rows")
            other = await door.query("two", text, "profile_rows")
            assert not first.from_cache
            assert repeat.from_cache
            assert not other.from_cache     # no cross-tenant cache hit
        asyncio.run(scenario())
        assert len(door.fleet.query_router.executed) == 2   # one per tenant
        assert door.metrics.tenant_snapshot("one")["cache_hits"] == 1
        assert door.metrics.tenant_snapshot("two")["cache_hits"] == 0
    finally:
        door.close()


def test_consistency_level_is_part_of_the_result_cache_key():
    from repro.serving import Consistency

    door = make_door()
    text = "MATCH alpha RETURN name"
    try:
        async def scenario():
            await door.query("acme", text, "profile_rows")
            bounded = await door.query(
                "acme", text, "profile_rows",
                consistency=Consistency.bounded_staleness(0))
            assert not bounded.from_cache   # stricter level must re-execute
        asyncio.run(scenario())
        assert len(door.fleet.query_router.executed) == 2
    finally:
        door.close()


def test_journal_events_invalidate_only_the_affected_view():
    class Event:
        def __init__(self, kind, view_name):
            self.kind = kind
            self.view_name = view_name

    door = FrontDoor(StubFleet())
    door.registry.register("acme", views={"profile_rows", "other_view"},
                           entity_types={"alpha"})
    text = "MATCH alpha RETURN name"
    (listener,) = door.manager.listeners
    try:
        async def warm(view):
            await door.query("acme", text, view)

        asyncio.run(warm("profile_rows"))
        asyncio.run(warm("other_view"))
        # a watermark-only advance invalidates nothing
        listener(Event("advance", "profile_rows"))
        assert door.view_invalidations == 0
        # an append drops exactly the affected view's caches
        listener(Event("append", "profile_rows"))
        assert door.view_invalidations == 1

        async def recheck():
            stale = await door.query("acme", text, "profile_rows")
            fresh = await door.query("acme", text, "other_view")
            assert not stale.from_cache     # invalidated
            assert fresh.from_cache         # untouched view kept serving
        asyncio.run(recheck())
        assert door.registry.stats()["acme"]["result_invalidations"] == 1
    finally:
        door.close()
    # close() detached the listener
    assert door.manager.listeners == []


# ------------------------------------------------------------------ #
# seeded property: two tenants on a live fleet, zero leaks
# ------------------------------------------------------------------ #
def test_two_tenant_isolation_over_seeded_sequences(fd_seed):
    """Over random mutate/flush/query interleavings on a real fleet, every
    row a tenant receives belongs to its own slice, cross-slice queries are
    refused at plan time, and the front door's answers match direct fleet
    execution."""
    rng = random.Random(47000 + fd_seed)
    model = QueryModel()
    counter = seed_model(model, rng)
    _, manager, clock = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager)
    door = FrontDoor(fleet, max_concurrency=4)
    door.registry.register("team-alpha", views={"profile_rows"},
                           entity_types={"alpha"})
    door.registry.register("team-beta", views={"profile_rows"},
                           entity_types={"beta"})
    batteries = {
        "team-alpha": (
            "MATCH alpha RETURN name, value",
            "MATCH alpha WHERE value > 5 RETURN name, value",
            'MATCH alpha WHERE name CONTAINS "1" RETURN *',
        ),
        "team-beta": (
            "MATCH beta RETURN name, value",
            "MATCH beta WHERE value < 50 RETURN value LIMIT 3",
            "MATCH beta WHERE value != 2 RETURN name LIMIT 4",
        ),
    }
    slices = {"team-alpha": "alpha", "team-beta": "beta"}

    def enqueue(changed=(), deleted=(), added=()):
        clock["lsn"] += 1
        manager.enqueue(changed, lsn=clock["lsn"], deleted_entity_ids=deleted,
                        added_entity_ids=added)

    async def scenario():
        nonlocal counter
        for _ in range(rng.randint(6, 12)):
            op = rng.choices(["add", "update", "delete", "serve"],
                             weights=[15, 20, 10, 55])[0]
            if op == "add":
                counter += 1
                kind = rng.choice(TYPES)
                eid = f"{kind[0]}{counter:02d}"
                model.entities[eid] = {"type": kind, "value": rng.randint(0, 99)}
                enqueue([eid], added=[eid])
            elif op == "update" and model.entities:
                eid = rng.choice(sorted(model.entities))
                model.entities[eid]["value"] += 100
                enqueue([eid])
            elif op == "delete" and model.entities:
                eid = rng.choice(sorted(model.entities))
                del model.entities[eid]
                enqueue(deleted=[eid])
            if op != "serve":
                manager.flush()
                assert fleet.drain()
                continue
            tenant = rng.choice(sorted(batteries))
            text = rng.choice(batteries[tenant])
            result = await door.query(tenant, text, "profile_rows")
            # every returned row lives inside the tenant's KG slice
            kind = slices[tenant]
            for row in result.rows:
                subject = row.entity_id.rsplit(":", 1)[-1]
                assert model.entities[subject]["type"] == kind, (tenant, text)
                assert subject.startswith(kind[0])
            # the front door answers exactly what the fleet answers
            direct = fleet.query(text, "profile_rows")
            assert [(r.entity_id, r.values) for r in result.rows] == \
                   [(r.entity_id, r.values) for r in direct.rows], (tenant, text)
            # the other tenant's battery is refused at plan time
            other = next(t for t in batteries if t != tenant)
            with pytest.raises(TenantIsolationError):
                await door.query(tenant, rng.choice(batteries[other]),
                                 "profile_rows")

    try:
        asyncio.run(scenario())
        snapshot = door.stats()
        assert snapshot["shed"] == 0 and snapshot["rate_limited"] == 0
        assert snapshot["completed"] == snapshot["admitted"]
        assert door.queue.max_depth <= door.queue.capacity
        # cross-tenant cache hits are structurally impossible: each tenant's
        # hit count never exceeds its own completions
        for tenant, tenant_stats in snapshot["tenants"].items():
            assert tenant_stats["cache_hits"] <= tenant_stats["completed"]
    finally:
        door.close()
        fleet.stop()


# ------------------------------------------------------------------ #
# observability: stats shape and metadata mirroring
# ------------------------------------------------------------------ #
def test_stats_snapshot_and_metadata_mirroring():
    metadata = MetadataStore()
    door = FrontDoor(StubFleet(), metadata=metadata)
    door.registry.register("acme", views={"profile_rows"}, entity_types={"alpha"})
    try:
        async def scenario():
            await door.query("acme", "MATCH alpha RETURN name", "profile_rows")
            await door.query("acme", "MATCH alpha RETURN name", "profile_rows")
        asyncio.run(scenario())
        snapshot = door.stats()
        assert snapshot["requests"] == 2
        assert snapshot["completed"] == 2
        assert snapshot["cache_hits"] == 1
        assert snapshot["latency"]["count"] == 2
        assert snapshot["latency"]["p99_ms"] >= snapshot["latency"]["p50_ms"]
        assert snapshot["in_flight"] == 0
        assert snapshot["max_in_flight"] == 1
        assert snapshot["queue"]["depth"] == 0
        assert snapshot["tenants"]["acme"]["admitted"] == 2
        assert snapshot["tenant_caches"]["acme"]["plan_cache_hits"] == 1
        assert "queries_routed" in snapshot["query_router"]
        # the same snapshot is mirrored into the metadata store's namespace
        mirrored = metadata.serving_metrics("front_door")
        assert mirrored["requests"] == 2
        assert mirrored["latency"]["count"] == 2
        metadata.clear_serving_metrics("front_door")
        assert metadata.serving_metrics("front_door") == {}
    finally:
        door.close()


def test_latency_histogram_percentiles_are_monotone_and_bounded():
    from repro.serving import LatencyHistogram, ServingMetrics

    histogram = LatencyHistogram()
    assert histogram.percentile(99.0) == 0.0
    samples = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0]
    for value in samples:
        histogram.observe(value)
    p50 = histogram.percentile(50.0)
    p95 = histogram.percentile(95.0)
    p99 = histogram.percentile(99.0)
    assert 0.0 < p50 <= p95 <= p99 <= histogram.max_ms
    snapshot = histogram.snapshot()
    assert snapshot["count"] == 10
    assert snapshot["max_ms"] == pytest.approx(256.0)
    with pytest.raises(ValueError):
        ServingMetrics().count("t", "not_an_outcome")


# ------------------------------------------------------------------ #
# satellites: QueryCache validation + eviction accounting
# ------------------------------------------------------------------ #
def test_query_cache_rejects_nonpositive_capacity_and_counts_evictions():
    with pytest.raises(LiveGraphError):
        QueryCache(capacity=0)
    with pytest.raises(LiveGraphError):
        QueryCache(capacity=-3)
    cache = QueryCache(capacity=2)
    cache.put("a", [QueryResultRow("e1", {"v": 1})])
    cache.put("b", [QueryResultRow("e2", {"v": 2})])
    assert cache.evictions == 0
    cache.put("c", [QueryResultRow("e3", {"v": 3})])
    assert cache.evictions == 1
    assert cache.get("a") is None       # "a" was the LRU entry pushed out
    assert cache.get("c") is not None
