"""Smoke test: every examples/ script runs to a clean exit.

Each script is executed in a subprocess with ``PYTHONPATH=src`` (the same
way the README quickstart and the CI example steps invoke them), asserting
exit code 0.  This keeps the examples honest as the APIs they narrate
evolve — a signature change that breaks an example fails tier-1 instead of
rotting silently.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted(
    path.name for path in (REPO_ROOT / "examples").glob("*.py")
)


def test_examples_directory_is_nonempty():
    assert "quickstart.py" in EXAMPLES
    assert "provenance_paths.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / script)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"examples/{script} exited {result.returncode}:\n"
        f"{result.stdout[-2000:]}{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"examples/{script} printed nothing"
