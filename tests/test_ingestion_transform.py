"""Tests for the Entity Transform stage and its integrity checks."""

import pytest

from repro.errors import IntegrityError
from repro.ingestion.transform import EntityTransformer


def make_transformer(**kwargs):
    defaults = dict(source_id="musicdb", id_column="id", type_column="kind",
                    default_type="music_artist")
    defaults.update(kwargs)
    return EntityTransformer(**defaults)


def test_transform_produces_entity_centric_records():
    rows = [
        {"id": "a1", "kind": "music_artist", "name": "Artist A", "genre": "pop"},
        {"id": "a2", "kind": "music_artist", "name": "Artist B", "genre": "rock"},
    ]
    entities, report = make_transformer().transform(rows)
    assert report.total == 2
    assert report.passed == 2
    assert [e.entity_id for e in entities] == ["musicdb:a1", "musicdb:a2"]
    assert entities[0].entity_type == "music_artist"
    assert entities[0].properties["genre"] == "pop"
    assert entities[0].source_id == "musicdb"


def test_missing_id_is_rejected():
    rows = [{"id": "", "name": "No Id"}, {"name": "Still no id"}]
    entities, report = make_transformer().transform(rows)
    assert entities == []
    assert report.rejected == 2
    assert all("missing ID" in violation for violation in report.violations)


def test_duplicate_ids_are_rejected():
    rows = [{"id": "a1", "name": "X"}, {"id": "a1", "name": "Y"}]
    transformer = make_transformer(row_grouper=lambda row: id(row))  # defeat grouping
    entities, report = transformer.transform(rows)
    assert len(entities) == 1
    assert report.rejected == 1
    assert any("duplicate" in violation for violation in report.violations)


def test_entities_without_any_values_are_rejected():
    rows = [{"id": "a1", "name": "", "genre": None}]
    entities, report = make_transformer().transform(rows)
    assert entities == []
    assert any("no non-empty predicates" in violation for violation in report.violations)


def test_declared_schema_predicates_are_always_present():
    rows = [{"id": "a1", "name": "Artist A"}]
    transformer = make_transformer(schema=("name", "genre", "record_label"))
    entities, _ = transformer.transform(rows)
    assert set(("genre", "record_label")).issubset(entities[0].properties)
    assert entities[0].properties["genre"] is None


def test_rows_sharing_an_id_are_merged_into_one_entity():
    rows = [
        {"id": "a1", "name": "Artist A"},
        {"id": "a1", "genre": "pop"},
        {"id": "a1", "genre": "indie"},
    ]
    entities, report = make_transformer().transform(rows)
    assert report.total == 1
    assert entities[0].properties["name"] == "Artist A"
    assert sorted(entities[0].properties["genre"]) == ["indie", "pop"]


def test_strict_mode_raises_on_violation():
    transformer = make_transformer(strict=True)
    with pytest.raises(IntegrityError):
        transformer.transform([{"id": "", "name": "x"}])


def test_qualified_ids_are_not_double_prefixed():
    rows = [{"id": "musicdb:a1", "name": "Artist"}]
    entities, _ = make_transformer().transform(rows)
    assert entities[0].entity_id == "musicdb:a1"


def test_values_are_cleaned():
    rows = [{"id": "a1", "name": "  Artist  ", "tags": ["", " rock "]}]
    entities, _ = make_transformer().transform(rows)
    assert entities[0].properties["name"] == "Artist"
    assert entities[0].properties["tags"] == ["rock"]
