"""Tests for live construction, query execution, intents, context, and curation."""

import pytest

from repro.errors import IntentError
from repro.live import (
    CurationDecision,
    Intent,
    LiveGraphEngine,
)
from repro.live.curation import CurationPipeline, VandalismDetector
from repro.live.index import LiveEntityDocument
from repro.ml.nerd import NERDService


@pytest.fixture(scope="module")
def nerd_service(reference_store, ontology):
    return NERDService.from_store(reference_store, ontology)


@pytest.fixture()
def live_engine(reference_store, nerd_service, live_events):
    engine = LiveGraphEngine(resolution_service=nerd_service)
    engine.load_stable_view(reference_store)
    engine.ingest_events(live_events)
    return engine


# --------------------------------------------------------------------- #
# construction
# --------------------------------------------------------------------- #
def test_live_construction_resolves_references(live_engine, world):
    stats = live_engine.construction.stats
    assert stats.events_processed == len(set(e.timestamp for e in [])) or stats.events_processed > 0
    assert stats.references_resolved > 0
    resolution_rate = stats.references_resolved / max(
        stats.references_resolved + stats.references_unresolved, 1
    )
    assert resolution_rate > 0.8
    # a game document references the stable team entity by its truth id
    games = live_engine.index.kv.by_type("sports_game")
    assert games
    assert any(ref.startswith("truth:") for game in games for ref in game.references.values())


def test_live_and_stable_documents_coexist(live_engine, reference_store):
    stable_count = reference_store.entity_count()
    assert len(live_engine.index) > stable_count
    assert any(doc.is_live for doc in live_engine.index.kv)
    assert any(not doc.is_live for doc in live_engine.index.kv)


# --------------------------------------------------------------------- #
# querying
# --------------------------------------------------------------------- #
def test_kgq_query_answers_leader_of_country(live_engine, world):
    country = world.of_type("country")[0]
    leader = world.get(country.facts["head_of_state"])
    result = live_engine.query(
        f'MATCH country WHERE name = "{country.name}" RETURN head_of_state.name'
    )
    assert result.rows
    answer = result.rows[0].values["head_of_state.name"]
    assert answer in leader.all_names


def test_kgq_traversal_and_score_query(live_engine, world):
    games = live_engine.index.kv.by_type("sports_game")
    target = games[0]
    home_name = target.references["home_team"]
    home_doc = live_engine.index.get(home_name)
    display = home_doc.name if home_doc else home_name
    result = live_engine.query(
        f'MATCH sports_game WHERE home_team.name CONTAINS "{display}" '
        f"RETURN name, home_score, away_score, game_status"
    )
    assert any(row.entity_id == target.entity_id for row in result.rows)
    row = [r for r in result.rows if r.entity_id == target.entity_id][0]
    assert row.values["home_score"] == target.value("home_score")


def test_query_cache_hits_and_latency_tracking(live_engine, world):
    country = world.of_type("country")[0]
    text = f'MATCH country WHERE name = "{country.name}" RETURN head_of_state.name'
    first = live_engine.query(text)
    second = live_engine.query(text)
    assert not first.from_cache and second.from_cache
    assert live_engine.executor.cache.hits >= 1
    assert live_engine.latency_p95_ms() >= 0.0
    stats = live_engine.stats()
    assert stats["queries"] >= 2
    assert stats["documents"] == len(live_engine.index)


def test_virtual_operator_call_query(live_engine, world):
    country = world.of_type("country")[0]
    result = live_engine.query(f'CALL HeadOfState("{country.name}")')
    assert result.rows


def test_explain_shows_pushdown(live_engine):
    steps = live_engine.explain('MATCH city WHERE name = "Springfield" RETURN mayor.name')
    assert steps[0].startswith("IndexLookup")


# --------------------------------------------------------------------- #
# intents and context
# --------------------------------------------------------------------- #
def test_intent_routing_depends_on_argument_semantics(live_engine, world):
    country = world.of_type("country")[0]
    city = world.of_type("city")[0]
    country_answer = live_engine.answer_intent(Intent("LeaderOf", (country.name,)))
    city_answer = live_engine.answer_intent(Intent("LeaderOf", (city.name,)))
    assert country_answer.route_column == "head_of_state.name"
    assert city_answer.route_column == "mayor.name"
    assert country_answer.answer is not None
    assert city_answer.answer is not None


def test_intent_error_for_unknown_intent_or_argument(live_engine):
    with pytest.raises(IntentError):
        live_engine.answer_intent(Intent("UnknownIntent", ("x",)))
    with pytest.raises(IntentError):
        live_engine.answer_intent(Intent("LeaderOf", ("Completely Unknown Entity 123",)))


def test_multi_turn_follow_up_uses_previous_intent(live_engine, world):
    artists = [a for a in world.of_type("music_artist") if a.facts.get("spouse")]
    assert artists
    first_artist = artists[0]
    second_artist = artists[1] if len(artists) > 1 else artists[0]
    live_engine.answer_intent(Intent("SpouseOf", (first_artist.name,)))
    follow_up = live_engine.answer_follow_up(f"How about {second_artist.name}?")
    assert follow_up.intent.name == "SpouseOf"
    assert follow_up.intent.arguments == (second_artist.name,)
    expected = world.name_of(second_artist.facts["spouse"])
    assert follow_up.answer in (expected, *world.get(second_artist.facts["spouse"]).aliases)


def test_pronoun_follow_up_binds_previous_answer(live_engine, world):
    artists = [a for a in world.of_type("music_artist") if a.facts.get("spouse")]
    artist = artists[0]
    spouse = world.get(artist.facts["spouse"])
    live_engine.context.clear()
    live_engine.answer_intent(Intent("SpouseOf", (artist.name,)))
    answer = live_engine.answer_intent(Intent("Birthplace", ("she",)))
    birth_city = world.get(spouse.facts["birth_place"])
    assert answer.answer in birth_city.all_names
    with pytest.raises(IntentError):
        LiveGraphEngine().answer_follow_up("How about someone?")


# --------------------------------------------------------------------- #
# curation
# --------------------------------------------------------------------- #
def test_vandalism_detector_flags_outliers_and_suspicious_text():
    detector = VandalismDetector()
    bad_doc = LiveEntityDocument(
        entity_id="g1", entity_type="sports_game", name="Game",
        facts={"home_score": [9999], "description": ["totally fake!!! lol"]},
    )
    findings = detector.inspect(bad_doc)
    kinds = {finding.kind.value for finding in findings}
    assert "numeric_outlier" in kinds
    assert "suspicious_text" in kinds
    clean = LiveEntityDocument(entity_id="g2", entity_type="sports_game", name="Game",
                               facts={"home_score": [3]})
    assert detector.inspect(clean) == []


def test_curation_hotfix_edits_live_index(live_engine):
    game = live_engine.index.kv.by_type("sports_game")[0]
    live_engine.curation.report(game.entity_id, "home_score", game.value("home_score"))
    applied = live_engine.apply_curation_decision(
        CurationDecision(entity_id=game.entity_id, predicate="home_score",
                         action="edit", replacement=42)
    )
    assert applied == 1
    assert live_engine.index.get(game.entity_id).value("home_score") == 42


def test_curation_block_removes_entity(live_engine):
    game = live_engine.index.kv.by_type("sports_game")[-1]
    live_engine.curation.report(game.entity_id, "game_status", "vandalized")
    applied = live_engine.apply_curation_decision(
        CurationDecision(entity_id=game.entity_id, predicate="game_status", action="block")
    )
    assert applied == 1
    assert live_engine.index.get(game.entity_id) is None


def test_curation_pipeline_feeds_stable_construction():
    pipeline = CurationPipeline()
    pipeline.report("kg:e1", "population", -5)
    events = pipeline.decide(CurationDecision(entity_id="kg:e1", predicate="population",
                                              action="edit", replacement=1000))
    assert events and events[0].source_id == "curation"
    entities = pipeline.as_source_entities()
    assert entities[0].properties == {"population": 1000}
    assert entities[0].source_id == "curation"
    assert pipeline.pending() == []
