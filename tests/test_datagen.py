"""Tests for the synthetic world, noisy sources, streams, and text corpora."""

import numpy as np

from repro.datagen import (
    LiveStreamGenerator,
    SourceSpec,
    StreamConfig,
    TextCorpusConfig,
    TextCorpusGenerator,
    WorldConfig,
    evolve_source,
    generate_source,
    generate_world,
)
from repro.datagen.names import make_typo, person_aliases, synonym_lexicon


def test_world_is_deterministic_and_typed(world):
    again = generate_world(world.config)
    assert len(again) == len(world)
    assert again.of_type("music_artist")[0].name == world.of_type("music_artist")[0].name
    assert set(world.types()) >= {"music_artist", "song", "album", "movie", "city",
                                  "country", "sports_team"}
    artist = world.of_type("music_artist")[0]
    assert artist.facts["record_label"].startswith("truth:")
    assert artist.relationships["educated_at"]
    assert 0.0 <= artist.popularity <= 1.0


def test_world_contains_ambiguous_city_names(world):
    names = [city.name for city in world.of_type("city")]
    assert len(names) > len(set(names)), "some city names must be shared for NERD ambiguity"


def test_world_alias_groups_for_distant_supervision(world):
    groups = world.alias_groups()
    assert len(groups) == len(world)
    assert any(len(group) > 1 for group in groups)


def test_reference_store_matches_world(world, reference_store):
    assert reference_store.entity_count() == len(world)
    artist = world.of_type("music_artist")[0]
    assert reference_store.value_of(artist.truth_id, "name") == artist.name
    assert reference_store.value_of(artist.truth_id, "record_label") == artist.facts["record_label"]


def test_generated_source_covers_and_maps_truth(world):
    spec = SourceSpec(source_id="testsrc", entity_types=("music_artist",),
                      coverage=1.0, duplicate_rate=0.5, seed=3)
    source = generate_source(world, spec)
    artists = world.of_type("music_artist")
    assert len(source.entities) >= len(artists)
    assert set(source.truth_map.values()) <= {a.truth_id for a in artists}
    assert all(e.source_id == "testsrc" for e in source.entities)
    assert source.truth_of(source.entities[0].entity_id) is not None
    # references are rendered as names, not truth ids
    labels = [e.properties.get("record_label") for e in source.entities
              if "record_label" in e.properties]
    assert labels and all(not str(label).startswith("truth:") for label in labels)


def test_source_schema_map_renames_predicates(world):
    spec = SourceSpec(source_id="m", entity_types=("movie",),
                      schema_map={"name": "title", "genre": "category"}, seed=5)
    source = generate_source(world, spec)
    assert all("title" in e.properties for e in source.entities)
    assert all("name" not in e.properties for e in source.entities)


def test_evolve_source_produces_churn(world):
    spec = SourceSpec(source_id="evo", entity_types=("music_artist", "song"),
                      coverage=0.7, seed=11)
    first = generate_source(world, spec)
    second = evolve_source(world, first, added_fraction=0.5, updated_fraction=0.3,
                           deleted_fraction=0.1)
    assert second.snapshot == 1
    first_ids = {e.entity_id for e in first.entities}
    second_ids = {e.entity_id for e in second.entities}
    assert second_ids - first_ids, "some entities should be added"
    assert first_ids - second_ids, "some entities should be deleted"


def test_live_stream_generator_produces_ordered_referenced_events(world):
    generator = LiveStreamGenerator(world, StreamConfig(num_games=3, num_stocks=2,
                                                        num_flights=2, seed=1))
    events = generator.all_events()
    assert events
    timestamps = [e.timestamp for e in events]
    assert timestamps == sorted(timestamps)
    games = [e for e in events if e.entity_type == "sports_game"]
    assert games
    assert all(set(g.truth_references) >= {"home_team", "away_team"} for g in games)
    assert all(g.references["home_team"] for g in games)
    stocks = [e for e in events if e.entity_type == "stock"]
    assert all("stock_price" in s.payload for s in stocks)
    flights = [e for e in events if e.entity_type == "flight"]
    assert all("flight_status" in f.payload for f in flights)


def test_text_corpus_mentions_are_labelled_and_positioned(world):
    passages = TextCorpusGenerator(world, TextCorpusConfig(num_passages=30, seed=2)).generate()
    assert len(passages) == 30
    for passage in passages:
        mention = passage.mentions[0]
        assert passage.text[mention.start:mention.end] == mention.mention
        assert mention.truth_id in world.entities
    head_flags = {passage.mentions[0].is_head for passage in passages}
    assert head_flags == {True, False} or len(head_flags) == 1


def test_name_noise_helpers():
    rng = np.random.default_rng(0)
    assert make_typo("Washington", rng) != "Washington"
    assert make_typo("ab", rng) == "ab"
    aliases = person_aliases("Robert", "Smith", rng)
    assert any("Smith, Robert" == alias for alias in aliases)
    lexicon = synonym_lexicon()
    assert lexicon["bob"] == "robert"


def test_world_config_scaling():
    tiny = generate_world(WorldConfig(num_people=6, num_artists=2, num_actors=2,
                                      num_athletes=1, num_movies=2, num_cities=4,
                                      num_countries=2, seed=1))
    assert len(tiny) < 120
    assert tiny.of_type("music_artist")
