"""Tests for the view catalog, manager, dependencies, and incremental updates."""

import pytest

from repro.engine.views import ViewCatalog, ViewContext, ViewDefinition, ViewManager
from repro.errors import ViewError


def make_catalog_with_chain(calls):
    """base -> shared -> (left, right); every create appends to *calls*."""
    catalog = ViewCatalog()

    def make_create(name, value):
        def create(context):
            calls.append(name)
            return value
        return create

    catalog.register(ViewDefinition("base", "analytics", make_create("base", [1, 2, 3])))
    catalog.register(ViewDefinition(
        "shared", "analytics",
        create=lambda ctx: (calls.append("shared"), len(ctx.artifact("base")))[1],
        dependencies=("base",),
    ))
    catalog.register(ViewDefinition(
        "left", "text_index",
        create=lambda ctx: (calls.append("left"), ctx.artifact("shared") * 10)[1],
        dependencies=("shared",),
    ))
    catalog.register(ViewDefinition(
        "right", "vector_db",
        create=lambda ctx: (calls.append("right"), ctx.artifact("shared") + 1)[1],
        dependencies=("shared",),
    ))
    return catalog


def test_catalog_registration_validates_dependencies_and_names():
    catalog = ViewCatalog()
    with pytest.raises(ViewError):
        catalog.register(ViewDefinition("v", "analytics", lambda ctx: 1, dependencies=("missing",)))
    with pytest.raises(ViewError):
        ViewDefinition("", "analytics", lambda ctx: 1)
    with pytest.raises(ViewError):
        ViewDefinition("v", "analytics", create="not callable")  # type: ignore[arg-type]
    catalog.register(ViewDefinition("v", "analytics", lambda ctx: 1))
    assert "v" in catalog and len(catalog) == 1
    with pytest.raises(ViewError):
        catalog.get("other")


def test_execution_order_is_topological():
    calls = []
    catalog = make_catalog_with_chain(calls)
    order = catalog.execution_order()
    assert order.index("base") < order.index("shared") < order.index("left")
    targeted = catalog.execution_order(["left"])
    assert targeted == ["base", "shared", "left"]
    assert catalog.dependents_of("shared") == ["left", "right"]


def test_materialize_with_reuse_builds_shared_views_once():
    calls = []
    catalog = make_catalog_with_chain(calls)
    manager = ViewManager(catalog, engines={})
    timings = manager.materialize(["left", "right"], reuse_shared=True)
    assert calls.count("shared") == 1
    assert calls.count("base") == 1
    assert set(timings) == {"base", "shared", "left", "right"}
    assert manager.artifact("left") == 30
    assert manager.artifact("right") == 4


def test_materialize_without_reuse_rebuilds_dependencies_per_target():
    calls = []
    catalog = make_catalog_with_chain(calls)
    manager = ViewManager(catalog, engines={})
    manager.materialize(["left", "right"], reuse_shared=False)
    assert calls.count("shared") == 2
    assert calls.count("base") == 2


def test_incremental_update_prefers_update_procedure():
    catalog = ViewCatalog()
    update_calls = []
    catalog.register(ViewDefinition(
        "incremental", "analytics",
        create=lambda ctx: {"built": True},
        update=lambda ctx, changed: update_calls.append(list(changed)) or {"updated": True},
    ))
    rebuild_count = {"n": 0}

    def rebuild(ctx):
        rebuild_count["n"] += 1
        return rebuild_count["n"]

    catalog.register(ViewDefinition("full_rebuild", "analytics", create=rebuild))
    manager = ViewManager(catalog, engines={})
    manager.materialize()
    manager.update(["kg:e1", "kg:e2"])
    assert update_calls == [["kg:e1", "kg:e2"]]
    assert manager.artifact("incremental") == {"updated": True}
    assert rebuild_count["n"] == 2                      # no update proc -> rebuilt
    assert manager.states["incremental"].incremental_updates == 1


def test_artifact_of_unmaterialized_view_raises_and_drop_works():
    catalog = ViewCatalog()
    dropped = []
    catalog.register(ViewDefinition("v", "analytics", lambda ctx: 42,
                                    drop=lambda ctx: dropped.append("v")))
    manager = ViewManager(catalog, engines={})
    with pytest.raises(ViewError):
        manager.artifact("v")
    manager.materialize(["v"])
    assert manager.is_materialized("v")
    manager.drop("v")
    assert dropped == ["v"]
    assert not manager.is_materialized("v")


def test_cycle_detection():
    catalog = ViewCatalog()
    catalog.register(ViewDefinition("a", "analytics", lambda ctx: 1))
    catalog.register(ViewDefinition("b", "analytics", lambda ctx: 1, dependencies=("a",)))
    # introduce a cycle by hand (register would prevent it normally)
    catalog._definitions["a"] = ViewDefinition("a", "analytics", lambda ctx: 1, dependencies=("b",))
    with pytest.raises(ViewError):
        catalog.execution_order()


def test_freshness_sla_detection(monkeypatch):
    catalog = ViewCatalog()
    catalog.register(ViewDefinition("fresh", "analytics", lambda ctx: 1, freshness_sla=3600))
    catalog.register(ViewDefinition("no_sla", "analytics", lambda ctx: 1))
    manager = ViewManager(catalog, engines={})
    assert manager.stale_views() == ["fresh"]            # never materialized
    manager.materialize()
    assert manager.stale_views() == []
    state = manager.states["fresh"]
    assert manager.stale_views(now=state.last_built_at + 7200) == ["fresh"]


def test_injectable_clock_drives_staleness_without_wall_time():
    """Build stamps and SLA checks follow the injected monotonic clock, so
    freshness is immune to wall-clock jumps and testable without sleeping."""
    fake = {"now": 1000.0}
    catalog = ViewCatalog()
    catalog.register(ViewDefinition("fresh", "analytics", lambda ctx: 1, freshness_sla=60))
    manager = ViewManager(catalog, engines={}, clock=lambda: fake["now"])
    manager.materialize()
    assert manager.states["fresh"].last_built_at == 1000.0
    assert manager.stale_views() == []
    fake["now"] += 59.0
    assert manager.stale_views() == []      # within the SLA on the fake clock
    fake["now"] += 2.0
    assert manager.stale_views() == ["fresh"]
    fake["now"] += 100.0
    manager.update(["e:1"])                 # a rebuild re-stamps off the clock
    assert manager.states["fresh"].last_built_at == 1161.0
    assert manager.stale_views() == []
    with pytest.raises(ViewError):
        ViewManager(catalog, engines={}, clock="not-a-clock")  # type: ignore[arg-type]


def test_scope_must_be_callable_and_batch_size_positive():
    with pytest.raises(ViewError):
        ViewDefinition("v", "analytics", lambda ctx: 1, scope="a:*")  # type: ignore[arg-type]
    with pytest.raises(ViewError):
        ViewManager(ViewCatalog(), engines={}, batch_size=0)


def test_maintenance_stats_report_skips_and_builds():
    catalog = ViewCatalog()
    catalog.register(ViewDefinition("everything", "analytics", lambda ctx: 1))
    catalog.register(ViewDefinition(
        "scoped", "analytics", lambda ctx: 2,
        scope=lambda entity_id: entity_id.startswith("x:"),
    ))
    manager = ViewManager(catalog, engines={})
    manager.materialize()
    manager.update(["y:1"])
    stats = manager.maintenance_stats()
    assert stats["everything"]["builds"] == 2          # rebuilt: no scope
    assert stats["scoped"]["builds"] == 1
    assert stats["scoped"]["skipped_updates"] == 1     # out of scope: work avoided
    assert stats["scoped"]["materialized"] is True


def test_enqueue_before_any_materialization_is_dropped():
    catalog = ViewCatalog()
    catalog.register(ViewDefinition("v", "analytics", lambda ctx: 1))
    manager = ViewManager(catalog, engines={}, batch_size=1)
    assert manager.enqueue(["kg:e1"], lsn=5) == {}
    assert manager.pending_changes() == []
    assert manager.delta_lsn == 5                      # observation is still recorded
    assert manager.flush() == {}


def test_view_context_errors():
    context = ViewContext(engines={"analytics": object()})
    assert context.engine("analytics") is not None
    with pytest.raises(ViewError):
        context.engine("missing")
    with pytest.raises(ViewError):
        context.artifact("missing")
