"""Tests for incremental, delta-based construction and the multi-source pipeline."""

import pytest

from repro.construction.incremental import IncrementalConstructor
from repro.construction.pipeline import KnowledgeConstructionPipeline
from repro.model.delta import SourceDelta, compute_delta
from repro.model.entity import SourceEntity


def artist(entity_id, name, popularity=0.5, **props):
    properties = {"name": name, "popularity": popularity}
    properties.update(props)
    return SourceEntity(entity_id=entity_id, entity_type="music_artist",
                        properties=properties, source_id=entity_id.split(":")[0], trust=0.8)


@pytest.fixture
def constructor(ontology):
    return IncrementalConstructor(ontology)


def test_added_payload_creates_entities_and_links(constructor):
    delta = SourceDelta.initial("musicdb", [
        artist("musicdb:1", "Echo Valley", genre="pop"),
        artist("musicdb:2", "Crimson Skies", genre="rock"),
    ])
    report = constructor.consume(delta)
    assert report.linked_added == 2
    assert report.new_entities == 2
    assert constructor.entity_count() >= 2
    assert set(constructor.link_table) == {"musicdb:1", "musicdb:2"}


def test_second_source_links_to_existing_entities(constructor):
    constructor.consume(SourceDelta.initial("musicdb", [
        artist("musicdb:1", "Echo Valley", genre="pop"),
    ]))
    report = constructor.consume(SourceDelta.initial("wiki", [
        artist("wiki:1", "Echo Valley", genre="pop"),
    ]))
    assert report.new_entities == 0
    assert constructor.link_table["wiki:1"] == constructor.link_table["musicdb:1"]
    kg_id = constructor.link_table["musicdb:1"]
    name_fact = [t for t in constructor.store.facts_about(kg_id) if t.predicate == "name"][0]
    assert set(name_fact.sources) == {"musicdb", "wiki"}


def test_updated_payload_uses_id_lookup_not_relinking(constructor):
    constructor.consume(SourceDelta.initial("musicdb", [
        artist("musicdb:1", "Echo Valley", genre="pop"),
    ]))
    kg_id = constructor.link_table["musicdb:1"]
    update = SourceDelta(source_id="musicdb",
                         updated=[artist("musicdb:1", "Echo Valley", genre="indie")],
                         to_timestamp=2)
    report = constructor.consume(update)
    assert report.updated_entities == 1
    assert report.linked_added == 0
    assert constructor.link_table["musicdb:1"] == kg_id
    assert constructor.store.values_of(kg_id, "genre") == ["indie"]


def test_unknown_updated_entity_falls_back_to_linking(constructor):
    update = SourceDelta(source_id="musicdb",
                         updated=[artist("musicdb:99", "Never Seen Before")],
                         to_timestamp=1)
    report = constructor.consume(update)
    assert "musicdb:99" in constructor.link_table
    assert report.linked_added == 1


def test_deleted_payload_retracts_source_facts(constructor):
    constructor.consume(SourceDelta.initial("musicdb", [
        artist("musicdb:1", "Echo Valley", genre="pop"),
    ]))
    kg_id = constructor.link_table["musicdb:1"]
    before = constructor.fact_count()
    delete = SourceDelta(source_id="musicdb",
                         deleted=[artist("musicdb:1", "Echo Valley")],
                         to_timestamp=2)
    report = constructor.consume(delete)
    assert report.deleted_entities == 1
    assert constructor.fact_count() < before
    remaining = [t for t in constructor.store.facts_about(kg_id) if t.predicate != "same_as"]
    assert remaining == []


def test_volatile_payload_overwrites_popularity(constructor):
    constructor.consume(SourceDelta.initial("musicdb", [
        artist("musicdb:1", "Echo Valley", popularity=0.4),
    ]))
    kg_id = constructor.link_table["musicdb:1"]
    volatile_entity = SourceEntity(entity_id="musicdb:1", entity_type="music_artist",
                                   properties={"popularity": 0.95}, source_id="musicdb")
    report = constructor.consume(SourceDelta(source_id="musicdb",
                                             volatile=[volatile_entity], to_timestamp=2))
    assert report.volatile_entities == 1
    assert constructor.store.value_of(kg_id, "popularity") == 0.95


def test_object_resolution_rewrites_references(constructor, ontology):
    constructor.consume(SourceDelta.initial("wiki", [
        SourceEntity(entity_id="wiki:label1", entity_type="record_label",
                     properties={"name": "Apex Records"}, source_id="wiki", trust=0.9),
    ]))
    report = constructor.consume(SourceDelta.initial("musicdb", [
        artist("musicdb:1", "Echo Valley", record_label="Apex Records"),
    ]))
    kg_id = constructor.link_table["musicdb:1"]
    label_value = constructor.store.value_of(kg_id, "record_label")
    assert label_value == constructor.link_table["wiki:label1"]
    assert report.object_resolution.resolved >= 1


def test_kg_view_filters_by_type(constructor):
    constructor.consume(SourceDelta.initial("musicdb", [
        artist("musicdb:1", "Echo Valley"),
        SourceEntity(entity_id="musicdb:song1", entity_type="song",
                     properties={"name": "Night Drive"}, source_id="musicdb"),
    ]))
    artists_view = constructor.kg_view(("music_artist",))
    types = {t for e in artists_view for t in e.types}
    assert "music_artist" in types
    full_view = constructor.kg_view()
    assert len(full_view) >= len(artists_view)


def test_pipeline_tracks_growth_history(ontology):
    pipeline = KnowledgeConstructionPipeline(ontology)
    pipeline.consume_delta(SourceDelta.initial("musicdb", [artist("musicdb:1", "Echo Valley")]))
    pipeline.consume_delta(SourceDelta.initial("wiki", [
        artist("wiki:1", "Echo Valley"), artist("wiki:2", "Crimson Skies"),
    ]))
    metrics = pipeline.metrics()
    assert metrics["sources_consumed"] == 2
    assert metrics["payloads_consumed"] == 2
    assert metrics["facts"] == pipeline.store.fact_count()
    growth = pipeline.growth.relative_growth()
    assert growth["facts"] >= 1.0
    assert len(pipeline.growth.series()) == 2


def test_pipeline_consume_many_handles_deltas(ontology):
    pipeline = KnowledgeConstructionPipeline(ontology)
    deltas = [
        SourceDelta.initial("musicdb", [artist("musicdb:1", "Echo Valley")]),
        SourceDelta.initial("wiki", [artist("wiki:9", "Other Artist")]),
    ]
    reports = pipeline.consume_many(deltas)
    assert len(reports) == 2


def test_compute_delta_plus_constructor_round_trip(constructor, ontology):
    snapshot1 = [artist("musicdb:1", "Echo Valley", genre="pop"),
                 artist("musicdb:2", "Crimson Skies")]
    constructor.consume(SourceDelta.initial("musicdb", snapshot1))
    facts_before = constructor.fact_count()
    snapshot2 = [artist("musicdb:1", "Echo Valley", genre="pop"),
                 artist("musicdb:3", "New Arrival")]
    delta = compute_delta("musicdb", snapshot1, snapshot2,
                          volatile_predicates=ontology.volatile_predicates())
    report = constructor.consume(delta)
    assert report.linked_added == 1           # only the new arrival is linked
    assert report.deleted_entities == 1       # musicdb:2 retracted
    assert constructor.fact_count() != facts_before
