"""Replicated serving fleet: journals, shipping, replicas, routing.

Covers the serving subsystem end to end: durable segmented journal storage
(persistence, recovery, compaction-aware truncation, gap signalling),
journal shipping over the replication bus, asynchronous replica apply with
gap-triggered resync, crash/restart catch-up from persisted journals, and
LSN-aware consistent-hash read routing under the three consistency levels.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.metadata import MetadataStore
from repro.engine.views import ViewCatalog, ViewDefinition, ViewDelta, ViewManager
from repro.errors import (
    JournalGapError,
    ReplicaUnavailableError,
    ServingError,
    StaleReadError,
)
from repro.live.engine import LiveGraphEngine
from repro.serving import (
    Consistency,
    FileJournalBackend,
    InMemoryJournalBackend,
    JournalStore,
    ReplicaNode,
    ReplicationBus,
    ServingFleet,
    ShardRouter,
)


# ------------------------------------------------------------------ #
# harness: a tiny row view over a mutable model store
# ------------------------------------------------------------------ #
def make_primary(metadata=None, journal_limit=256):
    """A one-view primary: ``rows`` maintained through apply_delta."""
    store: dict[str, int] = {}
    clock = {"lsn": 1}
    catalog = ViewCatalog()

    def create(context):
        return {e: {"subject": e, "value": v} for e, v in store.items()}

    def apply_delta(context, delta: ViewDelta):
        artifact = dict(context.artifact("rows"))
        for eid in delta.changed:
            artifact[eid] = {"subject": eid, "value": store[eid]}
        for eid in delta.deleted:
            artifact.pop(eid, None)
        return artifact

    catalog.register(ViewDefinition(
        "rows", "analytics", create=create, apply_delta=apply_delta,
        scope=lambda eid: eid in store,
    ))
    manager = ViewManager(
        catalog, engines={}, metadata=metadata,
        lsn_source=lambda: clock["lsn"], entity_source=lambda: list(store),
        journal_limit=journal_limit,
    )
    return store, clock, manager


def put(store, clock, manager, eid, value, added=False):
    is_new = added or eid not in store
    store[eid] = value
    clock["lsn"] += 1
    manager.enqueue([eid], lsn=clock["lsn"], added_entity_ids=[eid] if is_new else [])


def remove(store, clock, manager, eid):
    store.pop(eid, None)
    clock["lsn"] += 1
    manager.enqueue([], lsn=clock["lsn"], deleted_entity_ids=[eid])


def delta(added=(), updated=(), deleted=(), first_lsn=1, last_lsn=1):
    return ViewDelta(
        added=frozenset(added), updated=frozenset(updated),
        deleted=frozenset(deleted), first_lsn=first_lsn, last_lsn=last_lsn,
    )


# ------------------------------------------------------------------ #
# journal store
# ------------------------------------------------------------------ #
class TestJournalStore:
    def test_append_and_deltas_since_merge(self):
        store = JournalStore()
        store.append_delta("v", 1, delta(added=["a"], first_lsn=1, last_lsn=1))
        store.append_delta("v", 1, delta(updated=["a"], added=["b"], first_lsn=2, last_lsn=2))
        store.append_delta("v", 1, delta(deleted=["b"], first_lsn=3, last_lsn=3))
        merged = store.deltas_since("v", 0)
        assert merged.added == frozenset({"a"})
        assert merged.deleted == frozenset({"b"})
        assert store.deltas_since("v", 2).deleted == frozenset({"b"})
        assert store.deltas_since("v", 3).is_empty()
        assert store.high_water_mark("v") == 3
        assert store.deltas_since("unknown", 0) is None

    def test_truncate_raises_gap_below_floor(self):
        store = JournalStore()
        store.append_delta("v", 1, delta(added=["a"], first_lsn=1, last_lsn=1))
        store.record_truncate("v", 1, lsn=5)
        with pytest.raises(JournalGapError) as excinfo:
            store.deltas_since("v", 3)
        assert excinfo.value.view_name == "v"
        assert excinfo.value.floor_lsn == 5
        assert store.deltas_since("v", 5).is_empty()

    def test_segment_rolling_and_compaction_aware_truncation(self):
        store = JournalStore(segment_records=2)
        for lsn in range(1, 8):
            store.append_delta("v", 1, delta(added=[f"e{lsn}"], first_lsn=lsn, last_lsn=lsn))
        assert store.stats()["v"]["segments"] == 4
        # every consumer reached LSN 4: the first two whole segments drop
        assert store.truncate_below("v", 4) == 2
        assert store.floor_lsn("v") == 4
        assert store.deltas_since("v", 4).added == frozenset({"e5", "e6", "e7"})
        with pytest.raises(JournalGapError):
            store.deltas_since("v", 3)
        # the active (last) segment is never dropped
        assert store.truncate_below("v", 100) == 1
        assert store.stats()["v"]["segments"] == 1

    def test_revision_change_drops_stale_history(self):
        store = JournalStore()
        store.append_delta("v", 1, delta(added=["a"], first_lsn=1, last_lsn=1))
        store.append_delta("v", 2, delta(added=["b"], first_lsn=2, last_lsn=2))
        assert store.revision_of("v") == 2
        assert store.deltas_since("v", 0).added == frozenset({"b"})

    def test_file_backend_recovery_across_restart(self, tmp_path):
        backend = FileJournalBackend(tmp_path, fsync=True)
        store = JournalStore(backend, segment_records=2)
        for lsn in range(1, 6):
            store.append_delta("song_rows", 3, delta(added=[f"e{lsn}"],
                                                     first_lsn=lsn, last_lsn=lsn))
        store.truncate_below("song_rows", 2)
        store.save_replica_checkpoint("replica-0", {"song_rows": 4}, {"song_rows": 3})

        # a new process: fresh store over the same directory
        recovered = JournalStore(FileJournalBackend(tmp_path), segment_records=2)
        assert recovered.recovered_records > 0
        assert recovered.revision_of("song_rows") == 3
        assert recovered.floor_lsn("song_rows") == 2
        assert recovered.deltas_since("song_rows", 4).added == frozenset({"e5"})
        with pytest.raises(JournalGapError):
            recovered.deltas_since("song_rows", 1)
        applied, revisions = recovered.load_replica_checkpoint("replica-0")
        assert applied == {"song_rows": 4}
        assert revisions == {"song_rows": 3}

    def test_file_backend_keeps_dot_prefixed_view_names_apart(self, tmp_path):
        """Regression: a view named 'a.b' must not shadow view 'a' in the
        segment-file namespace (the dot also separates the segment id)."""
        store = JournalStore(FileJournalBackend(tmp_path))
        store.append_delta("rows", 1, delta(added=["x"], first_lsn=1, last_lsn=1))
        store.append_delta("rows.v2", 1, delta(added=["y"], first_lsn=1, last_lsn=1))
        recovered = JournalStore(FileJournalBackend(tmp_path))
        assert recovered.view_names() == ["rows", "rows.v2"]
        assert recovered.deltas_since("rows", 0).added == frozenset({"x"})
        assert recovered.deltas_since("rows.v2", 0).added == frozenset({"y"})

    def test_in_memory_backend_survives_store_restart(self):
        backend = InMemoryJournalBackend()
        store = JournalStore(backend)
        store.append_delta("v", 1, delta(added=["a"], first_lsn=1, last_lsn=1))
        restarted = JournalStore(backend)
        assert restarted.deltas_since("v", 0).added == frozenset({"a"})

    def test_empty_delta_and_bad_segment_size_rejected(self):
        with pytest.raises(ServingError):
            JournalStore(segment_records=0)
        with pytest.raises(ServingError):
            JournalStore().append_delta("v", 1, delta())


# ------------------------------------------------------------------ #
# shipping and replicas
# ------------------------------------------------------------------ #
class TestShippingAndReplicas:
    def test_flush_ships_deltas_and_replicas_converge(self):
        store, clock, manager = make_primary()
        store.update({"a": 1, "b": 2})
        manager.materialize()
        fleet = ServingFleet(manager, num_replicas=3).start()
        assert fleet.serve_view("rows") == 2
        put(store, clock, manager, "a", 10)
        put(store, clock, manager, "c", 3, added=True)
        remove(store, clock, manager, "b")
        manager.flush()
        assert fleet.drain()
        for node in fleet.replicas.values():
            assert node.index.feed_documents("view:rows") == {"rows:a", "rows:c"}
            assert node.get("rows", "a").value("value") == 10
            assert node.get("rows", "b") is None
            assert node.applied_lsn("rows") == clock["lsn"]
            # catch-up rode the journal: exactly one snapshot (the initial ship)
            assert node.snapshot_resyncs == 0
        assert manager.states["rows"].builds == 1
        fleet.stop()

    def test_dead_replica_does_not_block_the_bus(self):
        store, clock, manager = make_primary()
        store["a"] = 1
        manager.materialize()
        fleet = ServingFleet(manager, num_replicas=2).start()
        fleet.serve_view("rows")
        fleet.kill_replica("replica-0")
        put(store, clock, manager, "a", 2)
        manager.flush()
        assert fleet.drain()
        assert fleet.replicas["replica-1"].get("rows", "a").value("value") == 2
        assert fleet.bus.delivery_errors   # the dead replica was counted, not fatal
        fleet.stop()

    def test_backpressure_drop_heals_through_gap_resync(self):
        store, clock, manager = make_primary()
        store["a"] = 1
        manager.materialize()
        bus = ReplicationBus()
        from repro.serving.shipping import JournalShipper
        shipper = JournalShipper(manager, bus, JournalStore())
        node = ReplicaNode("r0", queue_capacity=1, resync_source=shipper)
        bus.subscribe(node)
        node.start()
        shipper.ship_view("rows")
        # stall the worker so the tiny queue overflows
        node._apply_lock.acquire()
        try:
            for value in (2, 3, 4):
                put(store, clock, manager, "a", value)
                manager.flush()
        finally:
            node._apply_lock.release()
        assert node.backpressure_drops >= 1
        node.drain()                       # apply whatever survived the overflow
        assert node.applied_lsn("rows") < clock["lsn"]
        # the next shipped batch does not extend what the replica applied
        # (its predecessor was dropped): gap detection must trigger a resync
        put(store, clock, manager, "a", 5)
        manager.flush()
        node.drain()
        deadline = time.monotonic() + 5
        while node.applied_lsn("rows") < clock["lsn"] and time.monotonic() < deadline:
            time.sleep(0.005)
        assert node.gaps_detected >= 1
        assert node.get("rows", "a").value("value") == 5
        assert node.applied_lsn("rows") == clock["lsn"]
        node.stop()

    def test_rebuild_ships_snapshot_not_delta(self):
        store, clock, manager = make_primary()
        store["a"] = 1
        manager.materialize()
        fleet = ServingFleet(manager, num_replicas=1).start()
        fleet.serve_view("rows")
        snapshots_before = fleet.shipper.snapshots_shipped
        store["b"] = 2
        clock["lsn"] += 1
        manager.mark_full_refresh(lsn=clock["lsn"])    # unknown extent: rebuild
        manager.flush()
        assert fleet.drain()
        assert fleet.shipper.snapshots_shipped == snapshots_before + 1
        node = fleet.replicas["replica-0"]
        assert node.index.feed_documents("view:rows") == {"rows:a", "rows:b"}
        fleet.stop()

    def test_drop_unserves_the_view_on_replicas(self):
        store, clock, manager = make_primary()
        store["a"] = 1
        manager.materialize()
        fleet = ServingFleet(manager, num_replicas=1).start()
        fleet.serve_view("rows")
        assert fleet.drain()
        manager.drop("rows")
        assert fleet.drain()
        node = fleet.replicas["replica-0"]
        assert node.index.feed_documents("view:rows") == set()
        assert node.applied_lsn("rows") == 0
        fleet.stop()

    def test_crash_restart_catches_up_from_persisted_journal(self, tmp_path):
        journal = JournalStore(FileJournalBackend(tmp_path))
        store, clock, manager = make_primary()
        store.update({"a": 1, "b": 2})
        manager.materialize()
        fleet = ServingFleet(manager, num_replicas=3, journal_store=journal).start()
        fleet.serve_view("rows")
        assert fleet.drain()
        # crash replica-1, then keep flushing deltas it will miss
        fleet.kill_replica("replica-1")
        put(store, clock, manager, "a", 11)
        put(store, clock, manager, "c", 3, added=True)
        remove(store, clock, manager, "b")
        manager.flush()
        assert fleet.drain()
        builds_before = manager.states["rows"].builds
        caught_up = fleet.restart_replica("replica-1")
        assert caught_up == ["rows"]
        node = fleet.replicas["replica-1"]
        assert node.applied_lsn("rows") == clock["lsn"]
        assert node.index.feed_documents("view:rows") == {"rows:a", "rows:c"}
        assert node.get("rows", "a").value("value") == 11
        # journal replay, not artifact rebuild: no create ran, no snapshot shipped
        assert manager.states["rows"].builds == builds_before == 1
        assert node.snapshot_resyncs == 0
        fleet.stop()

    def test_restart_snapshot_resyncs_when_journal_compacted_past_checkpoint(self):
        journal = JournalStore(segment_records=1)
        store, clock, manager = make_primary()
        store["a"] = 1
        manager.materialize()
        fleet = ServingFleet(manager, num_replicas=2, journal_store=journal).start()
        fleet.serve_view("rows")
        assert fleet.drain()
        fleet.kill_replica("replica-1")
        for value in (2, 3, 4):
            put(store, clock, manager, "a", value)
            manager.flush()
        assert fleet.drain()
        # fleet.compact_journals() is checkpoint-safe: the crashed replica's
        # applied LSN floors it, so after compaction its catch-up delta is
        # still answerable (only the ship-time truncate marker may drop).
        fleet.compact_journals()
        applied = fleet.replicas["replica-1"].applied_lsn("rows")
        assert journal.deltas_since("rows", applied) is not None
        # force-truncate past its checkpoint to model an operator compacting
        # a long-dead replica away — the resulting staleness must surface as
        # an explicit gap, not a diff
        journal.truncate_below("rows", fleet.replicas["replica-0"].applied_lsn("rows"))
        with pytest.raises(JournalGapError):
            journal.deltas_since("rows", fleet.replicas["replica-1"].applied_lsn("rows"))
        fleet.restart_replica("replica-1")
        node = fleet.replicas["replica-1"]
        assert node.snapshot_resyncs == 1               # resynced, explicitly
        assert node.get("rows", "a").value("value") == 4
        assert node.applied_lsn("rows") == clock["lsn"]
        fleet.stop()

    def test_restart_after_view_drop_unserves_instead_of_crashing(self):
        """Regression: a dropped view must not abort a replica restart — the
        catch-up answers with a drop batch, not a ViewError from artifact()."""
        store, clock, manager = make_primary()
        store["a"] = 1
        manager.materialize()
        fleet = ServingFleet(manager, num_replicas=2).start()
        fleet.serve_view("rows")
        assert fleet.drain()
        fleet.kill_replica("replica-1")
        manager.drop("rows")
        caught_up = fleet.restart_replica("replica-1")
        assert caught_up == ["rows"]
        node = fleet.replicas["replica-1"]
        assert node.index.feed_documents("view:rows") == set()
        assert node.applied_lsn("rows") == 0
        fleet.stop()

    def test_stopped_fleet_detaches_from_the_manager(self):
        """Regression: stop() must detach the shipper — a stopped fleet kept
        persisting and publishing on every later flush."""
        store, clock, manager = make_primary()
        store["a"] = 1
        manager.materialize()
        fleet = ServingFleet(manager, num_replicas=1).start()
        fleet.serve_view("rows")
        assert fleet.drain()
        fleet.stop()
        published = fleet.bus.batches_published
        put(store, clock, manager, "a", 2)
        manager.flush()
        assert fleet.bus.batches_published == published
        assert not manager.journal_listeners
        assert not fleet.bus.delivery_errors

    def test_late_joining_replica_is_seeded_before_owning_reads(self):
        """Regression: a replica added after serve_view owns key ranges
        immediately — without seeding, its empty index answered routed reads
        with false misses until some future delta happened to ship."""
        store, clock, manager = make_primary()
        for i in range(10):
            store[f"e{i}"] = i
        manager.materialize()
        fleet = ServingFleet(manager, num_replicas=2).start()
        fleet.serve_view("rows")
        assert fleet.drain()
        fleet.add_replica("replica-9")
        for i in range(10):
            document = fleet.read("rows", f"e{i}", Consistency.any())
            assert document is not None, f"false miss for e{i}"
        assert fleet.replicas["replica-9"].serves_view("rows")
        fleet.stop()

    def test_reship_after_unship_window_forces_resync_not_stale_catchup(self):
        """Regression: deltas flushed while a view was unshipped are never
        persisted; re-shipping must re-baseline the journal so a restarting
        replica resyncs from the snapshot instead of catching up through the
        hole and certifying stale rows as fresh."""
        journal = JournalStore()
        store, clock, manager = make_primary()
        store["a"] = 2
        manager.materialize()
        fleet = ServingFleet(manager, num_replicas=2, journal_store=journal).start()
        fleet.serve_view("rows")
        assert fleet.drain()
        fleet.kill_replica("replica-0")
        fleet.shipper.unship_view("rows")
        put(store, clock, manager, "a", 99)       # falls into the unshipped hole
        manager.flush()
        fleet.serve_view("rows")                  # re-ship: snapshot baseline
        assert fleet.drain()
        fleet.restart_replica("replica-0")
        node = fleet.replicas["replica-0"]
        assert node.get("rows", "a").value("value") == 99
        assert node.applied_lsn("rows") == clock["lsn"]
        assert node.snapshot_resyncs == 1         # the hole forced a snapshot
        fleet.stop()

    def test_journal_persist_failure_resyncs_the_chain_via_snapshot(self):
        """Regression: a delta the store failed to persist must not be
        silently skipped on the bus — the chain would extend every replica's
        applied LSN past changes they never saw.  The shipper snapshots."""
        journal = JournalStore()
        store, clock, manager = make_primary()
        store["a"] = 1
        manager.materialize()
        fleet = ServingFleet(manager, num_replicas=1, journal_store=journal).start()
        fleet.serve_view("rows")
        assert fleet.drain()
        broken = {"armed": True}
        real_append = journal.append_delta

        def failing_append(view_name, revision, delta_):
            if broken["armed"]:
                broken["armed"] = False
                raise ServingError("disk full")
            return real_append(view_name, revision, delta_)

        journal.append_delta = failing_append
        put(store, clock, manager, "a", 2)
        manager.flush()                       # listener error is swallowed...
        assert manager.journal_listener_errors
        assert fleet.drain()
        node = fleet.replicas["replica-0"]
        # ...but the replica was resynced by snapshot, not silently skipped
        assert node.get("rows", "a").value("value") == 2
        assert node.applied_lsn("rows") == clock["lsn"]
        put(store, clock, manager, "a", 3)    # the healed chain keeps working
        manager.flush()
        assert fleet.drain()
        assert node.get("rows", "a").value("value") == 3
        fleet.stop()

    def test_remove_replica_forgets_checkpoint_and_watermarks(self):
        metadata = MetadataStore()
        store, clock, manager = make_primary(metadata=metadata)
        store["a"] = 1
        manager.materialize()
        fleet = ServingFleet(manager, num_replicas=2, metadata=metadata).start()
        fleet.serve_view("rows")
        assert fleet.drain()
        assert metadata.replica_watermark("replica-1/rows") > 0
        fleet.remove_replica("replica-1")
        assert "replica-1" not in fleet.replicas
        assert fleet.router.healthy_replicas() == ["replica-0"]
        assert metadata.replica_watermark("replica-1/rows") == 0
        assert fleet.journal_store.load_replica_checkpoint("replica-1") == ({}, {})
        put(store, clock, manager, "a", 2)    # shipping continues without it
        manager.flush()
        assert fleet.drain()
        assert fleet.replicas["replica-0"].get("rows", "a").value("value") == 2
        fleet.stop()

    def test_replica_watermarks_mirrored_into_metadata(self):
        metadata = MetadataStore()
        store, clock, manager = make_primary(metadata=metadata)
        store["a"] = 1
        manager.materialize()
        fleet = ServingFleet(manager, num_replicas=2, metadata=metadata).start()
        fleet.serve_view("rows")
        put(store, clock, manager, "a", 2)
        manager.flush()
        assert fleet.drain()
        for name in ("replica-0", "replica-1"):
            assert metadata.replica_watermark(f"{name}/rows") == clock["lsn"]
        assert metadata.lagging_replicas(clock["lsn"] + 2) == {
            "replica-0/rows": 2, "replica-1/rows": 2,
        }
        # replica marks live in their own namespace: store freshness unaffected
        assert metadata.minimum_watermark() == 0
        fleet.stop()


# ------------------------------------------------------------------ #
# routing
# ------------------------------------------------------------------ #
class FakeReplica:
    """A minimal routable node with a settable applied LSN."""

    def __init__(self, name, applied=0, alive=True):
        self.name = name
        self._applied = applied
        self.alive = alive
        self.docs = {}

    def applied_lsn(self, view_name):
        return self._applied

    def serves_view(self, view_name):
        return True

    def get(self, view_name, subject):
        return self.docs.get(f"{view_name}:{subject}")


class TestShardRouter:
    def test_owner_assignment_is_stable_and_balanced(self):
        router = ShardRouter(lambda: 0)
        nodes = [FakeReplica(f"r{i}") for i in range(3)]
        for node in nodes:
            router.add_replica(node)
        subjects = [f"kg:e{i}" for i in range(300)]
        owners = router.shard_map(subjects)
        assert owners == router.shard_map(subjects)        # deterministic
        counts = {name: 0 for name in router.replicas}
        for owner in owners.values():
            counts[owner] += 1
        assert all(count > 0 for count in counts.values())  # no empty shard

    def test_consistency_levels_gate_replicas(self):
        router = ShardRouter(lambda: 10)
        fresh = FakeReplica("fresh", applied=10)
        stale = FakeReplica("stale", applied=4)
        for node in (fresh, stale):
            node.docs["v:x"] = object()
            router.add_replica(node)
        assert router.satisfies(stale, "v", Consistency.any())
        assert not router.satisfies(stale, "v", Consistency.bounded_staleness(2))
        assert router.satisfies(stale, "v", Consistency.bounded_staleness(6))
        assert not router.satisfies(stale, "v", Consistency.read_your_writes(5))
        assert router.satisfies(fresh, "v", Consistency.read_your_writes(10))

    def test_read_falls_back_and_raises_honestly(self):
        router = ShardRouter(lambda: 10)
        fresh = FakeReplica("fresh", applied=10)
        stale = FakeReplica("stale", applied=4)
        fresh.docs["v:x"] = "fresh-doc"
        stale.docs["v:x"] = "stale-doc"
        router.add_replica(fresh)
        router.add_replica(stale)
        # read_your_writes(10): only the fresh replica qualifies, whoever owns x
        assert router.read("v", "x", Consistency.read_your_writes(10)) == "fresh-doc"
        with pytest.raises(StaleReadError):
            router.read("v", "x", Consistency.read_your_writes(11))
        fresh.alive = False
        stale.alive = False
        with pytest.raises(ReplicaUnavailableError):
            router.read("v", "x")
        router.remove_replica("fresh")
        router.remove_replica("stale")
        with pytest.raises(ReplicaUnavailableError):
            router.read("v", "x")

    def test_routed_reads_while_primary_flushes(self):
        """Acceptance: a 3-replica fleet serves reads during primary flushes."""
        store, clock, manager = make_primary()
        for i in range(20):
            store[f"e{i}"] = i
        manager.materialize()
        fleet = ServingFleet(manager, num_replicas=3).start()
        fleet.serve_view("rows")
        assert fleet.drain()
        stop = threading.Event()
        errors: list[Exception] = []

        def reader():
            while not stop.is_set():
                try:
                    fleet.read("rows", "e1", Consistency.any())
                except Exception as exc:  # noqa: BLE001 - collected for the assert
                    errors.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for round_ in range(15):
                put(store, clock, manager, f"e{round_ % 20}", 100 + round_)
                manager.flush()
        finally:
            stop.set()
            thread.join()
        assert fleet.drain()
        assert not errors
        assert fleet.read(
            "rows", "e1", Consistency.read_your_writes(manager.built_at_lsn("rows"))
        ).value("value") in (1, 101)  # e1 updated in round 1
        assert fleet.router.reads_routed > 0
        fleet.stop()


# ------------------------------------------------------------------ #
# live engine integration: explicit journal-gap resync
# ------------------------------------------------------------------ #
def test_live_view_feed_counts_journal_gap_resyncs():
    store, clock, manager = make_primary(journal_limit=2)
    store.update({"a": 1, "b": 2})
    manager.materialize()

    class EngineShim:
        view_manager = manager

        def view_artifact(self, name):
            return list(manager.artifact(name).values())

    shim = EngineShim()
    live = LiveGraphEngine()
    assert live.load_view_artifact(shim, "rows") == 2
    # a from-scratch rebuild truncates the journal past the feed's version
    store["c"] = 3
    clock["lsn"] += 1
    manager.mark_full_refresh(lsn=clock["lsn"])
    manager.flush()
    assert live.load_view_artifact(shim, "rows") == 3
    assert live.view_feed_journal_gaps == 1
    assert live.view_feed_full_loads == 2
    # while a journal-covered catch-up stays incremental
    put(store, clock, manager, "a", 9)
    manager.flush()
    assert live.load_view_artifact(shim, "rows") == 1
    assert live.view_feed_incremental_loads == 1
    assert live.view_feed_journal_gaps == 1
    assert live.stats()["view_feed_journal_gaps"] == 1
