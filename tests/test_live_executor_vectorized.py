"""Vectorized-vs-per-document executor equivalence, property-tested.

The executor's contract: its two strategies — postings-intersection /
batched-column evaluation and the per-document reference loop — return
**identical** rows, in identical order, with identical
``candidates_examined`` accounting, for every plan.  The seeded suite
(``kgq_seed``, parametrized from ``--runs-seeded`` like the columnar-store
suite) proves it over random document universes and random plans: index and
type-scan seeds, ``=`` / ``!=`` / ``<`` / ``>`` / CONTAINS filters over
one- and two-hop paths, multi-hop projections, ``RETURN *``, limits, and
scoped (fragment-style) execution — plus the same queries scattered through
a real ``QueryRouter`` fleet in both modes.

The fixed tests pin the cross-type equality semantics the postings probes
must preserve (``3`` vs ``3.0`` vs ``"3"`` vs ``True``, reference-by-name
matches), the result-cache aliasing regression, and the exact LIMIT
early-break ``candidates_examined`` counts.
"""

from __future__ import annotations

import random

from repro.hashing import stable_hash
from repro.live.executor import QueryExecutor
from repro.live.index import LiveEntityDocument, LiveIndex
from repro.live.kgq import Condition, Query, parse
from repro.live.planner import (
    FilterOp,
    PhysicalPlan,
    ProjectOp,
    QueryPlanner,
    TypeScan,
)
from repro.serving.query_router import QueryRouter
from repro.serving.replica import ReplicaNode
from repro.serving.router import ShardRouter
from repro.serving.shipping import ShipmentBatch

# ------------------------------------------------------------------ #
# random universes and random plans
# ------------------------------------------------------------------ #
TYPES = ("alpha", "beta", "gamma", "")
GENRES = ("pop", "rock", "jazz")
FIRST = ("Ada", "Grace", "Alan", "Edsger", "Barbara")
LAST = ("Lovelace", "Hopper", "Turing", "Dijkstra", "Liskov")
VALUE_POOL = (0, 1, 2, 3, 7, 2.5, 3.0, True, False, "3", "seven")


def build_universe(rng: random.Random) -> LiveIndex:
    """A random live index: typed/untyped docs, mixed-type facts, references."""
    index = LiveIndex(num_shards=4)
    count = rng.randint(25, 45)
    entity_ids = [f"e{i:02d}" for i in range(count)]
    for position, entity_id in enumerate(entity_ids):
        facts: dict[str, list[object]] = {}
        if rng.random() < 0.85:
            facts["value"] = [rng.choice(VALUE_POOL) for _ in range(rng.randint(1, 2))]
        if rng.random() < 0.7:
            facts["genre"] = [rng.choice(GENRES)]
        if rng.random() < 0.2:
            facts["alias"] = [f"{rng.choice(FIRST)} alias"]
        references: dict[str, str] = {}
        if rng.random() < 0.6:
            references["friend"] = (
                rng.choice(entity_ids) if rng.random() < 0.8 else f"missing:{position}"
            )
        if rng.random() < 0.3:
            references["team"] = rng.choice(entity_ids)
        index.upsert(
            LiveEntityDocument(
                entity_id=entity_id,
                entity_type=rng.choice(TYPES),
                name=f"{rng.choice(FIRST)} {rng.choice(LAST)}" if rng.random() < 0.75 else "",
                facts=facts,
                references=references,
                timestamp=1,
                is_live=True,
            )
        )
    return index


CONDITION_PATHS = (
    ("value",),
    ("genre",),
    ("name",),
    ("alias",),
    ("friend",),
    ("friend", "name"),
    ("friend", "value"),
    ("team", "genre"),
)
RETURN_CHOICES = (
    [()],
    [("name",)],
    [("value",)],
    [("genre",), ("friend", "name")],
    [("team", "genre")],
    [("friend", "value"), ("name",)],
)


def random_condition(rng: random.Random, index: LiveIndex) -> Condition:
    path = rng.choice(CONDITION_PATHS)
    operator = rng.choice(("=", "=", "=", "!=", "<", ">", "CONTAINS"))
    if operator in ("<", ">"):
        target: object = rng.choice((1, 2.5, 4, 7))
    elif operator == "CONTAINS":
        target = rng.choice(("ada", "ring", "3", "pop", "xyz"))
    elif path[-1] == "genre":
        target = rng.choice(GENRES + ("blues",))
    elif path[-1] in ("name", "alias"):
        target = rng.choice(
            (f"{rng.choice(FIRST)} {rng.choice(LAST)}", f"{rng.choice(FIRST)} alias")
        )
    elif path == ("friend",):
        # Equality against a reference: by raw entity id or by referent name.
        target = rng.choice((f"e{rng.randint(0, 44):02d}", f"{rng.choice(FIRST)} {rng.choice(LAST)}"))
    else:
        target = rng.choice(VALUE_POOL)
    return Condition(path, operator, target)


def random_query(rng: random.Random, index: LiveIndex) -> Query:
    return Query(
        entity_type=rng.choice(("alpha", "beta", "gamma")),
        conditions=[random_condition(rng, index) for _ in range(rng.randint(0, 2))],
        returns=list(rng.choice(RETURN_CHOICES)),
        limit=rng.randint(1, 6) if rng.random() < 0.4 else None,
    )


def rows_of(result):
    return [(row.entity_id, row.values) for row in result.rows]


def assert_modes_agree(executor: QueryExecutor, plan, scope=None):
    vectorized = executor.execute(plan, use_cache=False, scope=scope, vectorized=True)
    reference = executor.execute(plan, use_cache=False, scope=scope, vectorized=False)
    assert rows_of(vectorized) == rows_of(reference), plan.explain()
    assert vectorized.candidates_examined == reference.candidates_examined, plan.explain()


def test_vectorized_equivalence_seeded(kgq_seed):
    rng = random.Random(61_000 + kgq_seed)
    index = build_universe(rng)
    planner = QueryPlanner(selectivity=index.seed_selectivity)
    executor = QueryExecutor(index)
    for _ in range(8):
        plan = planner.plan(random_query(rng, index))
        assert_modes_agree(executor, plan)


def test_vectorized_equivalence_scoped_seeded(kgq_seed):
    """Fragment-style scoped execution agrees across modes too."""
    rng = random.Random(87_000 + kgq_seed)
    index = build_universe(rng)
    planner = QueryPlanner(selectivity=index.seed_selectivity)
    executor = QueryExecutor(index)
    modulus = rng.randint(2, 4)

    def scope(document):
        return stable_hash(document.entity_id) % modulus != 0

    for _ in range(6):
        plan = planner.plan(random_query(rng, index))
        assert_modes_agree(executor, plan, scope=scope)


# ------------------------------------------------------------------ #
# fixed cross-type equality semantics the postings probes must cover
# ------------------------------------------------------------------ #
def make_index(documents):
    index = LiveIndex()
    for document in documents:
        index.upsert(document)
    return index


def doc(entity_id, entity_type="thing", name="", facts=None, refs=None):
    return LiveEntityDocument(
        entity_id=entity_id, entity_type=entity_type, name=name,
        facts=facts or {}, references=refs or {}, timestamp=1, is_live=True,
    )


def filter_plan(entity_type, condition, returns=(("value",),)):
    """A TypeScan plan keeping *condition* as a FilterOp — the planner would
    otherwise push a single-hop equality into the (exact-normalized) seed."""
    query = Query(
        entity_type=entity_type, conditions=[condition], returns=list(returns)
    )
    return PhysicalPlan(
        query=query,
        seed=TypeScan(entity_type),
        filters=[FilterOp(condition)],
        project=ProjectOp(tuple(query.returns)),
        limit=None,
    )


def test_vectorized_equality_matches_cross_type_values():
    index = make_index([
        doc("e1", facts={"value": [3]}),
        doc("e2", facts={"value": [3.0]}),
        doc("e3", facts={"value": ["3"]}),
        doc("e4", facts={"value": [True]}),
        doc("e5", facts={"value": [1]}),
        doc("e6", facts={"value": ["three"]}),
    ])
    planner = QueryPlanner(selectivity=index.seed_selectivity)
    executor = QueryExecutor(index)
    for target, expected in (
        # int 3 matches 3.0 numerically and "3" by normalized string;
        # 3.0 renders as "3.0" so the string fact "3" no longer matches.
        (3, ["e1", "e2", "e3"]),
        (3.0, ["e1", "e2"]),
        ("3", ["e1", "e3"]),
        (True, ["e4", "e5"]),
        (1, ["e4", "e5"]),
    ):
        # As a filter, equality is cross-type (3 == 3.0 == "3", True == 1):
        # the postings probes must surface every rendering for verification.
        plan = filter_plan("thing", Condition(("value",), "=", target))
        assert_modes_agree(executor, plan)
        result = executor.execute(plan, use_cache=False, vectorized=True)
        assert [row.entity_id for row in result.rows] == expected, target
        # Pushed into the seed the match is exact-normalized; both modes
        # must still agree on that narrower answer.
        assert_modes_agree(executor, planner.plan(plan.query))


def test_vectorized_equality_matches_references_by_name():
    index = make_index([
        doc("team1", entity_type="team", name="Springfield Wolves"),
        doc("g1", entity_type="game", refs={"home_team": "team1"}),
        doc("g2", entity_type="game", refs={"home_team": "elsewhere"}),
    ])
    executor = QueryExecutor(index)
    plan = filter_plan(
        "game",
        Condition(("home_team",), "=", "Springfield Wolves"),
        returns=[("home_team", "name")],
    )
    assert_modes_agree(executor, plan)
    result = executor.execute(plan, use_cache=False, vectorized=True)
    assert [row.entity_id for row in result.rows] == ["g1"]
    assert result.rows[0].values["home_team.name"] == "Springfield Wolves"


# ------------------------------------------------------------------ #
# result-cache aliasing and LIMIT accounting regressions
# ------------------------------------------------------------------ #
def test_cache_hits_return_unaliased_rows():
    index = make_index([doc("e1", name="Ada", facts={"value": [1]})])
    executor = QueryExecutor(index)
    plan = QueryPlanner(selectivity=index.seed_selectivity).plan(
        parse("MATCH thing RETURN name, value")
    )
    first = executor.execute(plan)
    # A caller scribbling over its rows must not poison later cache hits …
    first.rows[0].values["name"] = "CORRUPTED"
    rehit = executor.execute(plan)
    assert rehit.from_cache is True
    assert rehit.rows[0].values["name"] == "Ada"
    # … and neither must a caller mutating a row served *from* the cache.
    rehit.rows[0].values["value"] = 999
    again = executor.execute(plan)
    assert again.rows[0].values == {"name": "Ada", "value": 1}


def test_limit_break_counts_only_examined_candidates():
    index = make_index([doc(f"e{i}", facts={"value": [i]}) for i in range(10)])
    planner = QueryPlanner(selectivity=index.seed_selectivity)
    executor = QueryExecutor(index)
    # No filters: the scan stops at the limit-th match — exactly 3 examined.
    plan = planner.plan(parse("MATCH thing RETURN name LIMIT 3"))
    for mode in (True, False):
        result = executor.execute(plan, use_cache=False, vectorized=mode)
        assert len(result.rows) == 3
        assert result.candidates_examined == 3
    # With a filter every candidate must be examined, limit or not.
    plan = planner.plan(parse("MATCH thing WHERE value > 1 RETURN name LIMIT 2"))
    for mode in (True, False):
        result = executor.execute(plan, use_cache=False, vectorized=mode)
        assert len(result.rows) == 2
        assert result.candidates_examined == 10


# ------------------------------------------------------------------ #
# distributed: the same fleet answers identically in both modes
# ------------------------------------------------------------------ #
def test_query_router_equivalence_across_modes():
    rows = tuple(
        {
            "subject": f"s{i:02d}",
            "name": f"Entity {i % 7}",
            "value": i % 10,
            "types": ["alpha" if i % 3 else "beta"],
        }
        for i in range(30)
    )
    batch = ShipmentBatch(
        kind="snapshot", view_name="profile_rows", revision=1, lsn=5, rows=rows
    )
    router = ShardRouter(head_lsn_source=lambda: 5)
    nodes = [ReplicaNode(name).start() for name in ("r1", "r2", "r3")]
    try:
        for node in nodes:
            node.offer(batch)
            router.add_replica(node)
        for node in nodes:
            assert node.drain()
        query_router = QueryRouter(router)
        for text in (
            "MATCH alpha RETURN name, value",
            "MATCH alpha WHERE value > 4 RETURN name",
            'MATCH beta WHERE name CONTAINS "2" RETURN * LIMIT 3',
            "MATCH alpha WHERE value = 3 RETURN value",
            'MATCH beta WHERE name = "Entity 3" RETURN name',
        ):
            vectorized = query_router.execute(
                text, "profile_rows", use_cache=False, vectorized=True
            )
            reference = query_router.execute(
                text, "profile_rows", use_cache=False, vectorized=False
            )
            assert rows_of(vectorized) == rows_of(reference), text
            assert vectorized.candidates_examined == reference.candidates_examined, text
    finally:
        for node in nodes:
            node.stop()
