"""Tests for the Linker: in-source dedup and subject linking."""

import pytest

from repro.construction.linking import Linker, evaluate_linking
from repro.construction.records import LinkableRecord, records_by_type
from repro.model.entity import KGEntity, SourceEntity
from repro.model.identifiers import IdGenerator


def source_artist(entity_id, name, **props):
    properties = {"name": name}
    properties.update(props)
    return SourceEntity(entity_id=entity_id, entity_type="music_artist",
                        properties=properties, source_id="musicdb", trust=0.8)


def kg_artist(entity_id, name, **facts):
    entity = KGEntity(entity_id=entity_id, types=["music_artist"], names=[name])
    for predicate, value in facts.items():
        entity.facts[predicate] = value if isinstance(value, list) else [value]
    return entity


@pytest.fixture
def linker(ontology):
    return Linker(ontology, id_generator=IdGenerator())


def test_records_by_type_groups():
    records = [
        LinkableRecord("a", entity_type="song"),
        LinkableRecord("b", entity_type="song"),
        LinkableRecord("c", entity_type="movie"),
    ]
    grouped = records_by_type(records)
    assert {len(grouped["song"]), len(grouped["movie"])} == {2, 1}


def test_linkable_record_from_source_and_kg_entity():
    source = source_artist("musicdb:1", "Artist A", genre="pop",
                           educated_at=[{"school": "UW"}])
    record = LinkableRecord.from_source_entity(source)
    assert record.names() == ["Artist A"]
    assert record.values("genre") == ["pop"]
    assert "UW" in record.values("educated_at")
    assert not record.is_kg

    kg = kg_artist("kg:e1", "Artist A", genre="pop")
    kg_record = LinkableRecord.from_kg_entity(kg)
    assert kg_record.is_kg
    assert kg_record.entity_type == "music_artist"
    assert kg_record.primary_name() == "Artist A"


def test_linking_matches_source_to_existing_kg_entity(linker):
    sources = [source_artist("musicdb:1", "Nova Starlight", genre="pop")]
    kg_view = [kg_artist("kg:e1", "Nova Starlight", genre="pop"),
               kg_artist("kg:e2", "Completely Unrelated Band")]
    result = linker.link(sources, kg_view)
    assert result.kg_id_for("musicdb:1") == "kg:e1"
    assert result.new_entities == set()
    assert ("kg:e1", "musicdb:1") in result.same_as_links()


def test_linking_creates_new_entity_when_no_match(linker):
    sources = [source_artist("musicdb:9", "Brand New Artist")]
    result = linker.link(sources, [kg_artist("kg:e1", "Someone Else Entirely")])
    assigned = result.kg_id_for("musicdb:9")
    assert assigned in result.new_entities
    assert assigned.startswith("kg:")


def test_in_source_duplicates_share_one_kg_id(linker):
    sources = [
        source_artist("musicdb:1", "Echo Valley", genre="pop"),
        source_artist("musicdb:1-dup", "Echo Valley", genre="pop"),
        source_artist("musicdb:2", "Totally Different Name"),
    ]
    result = linker.link(sources, [])
    assert result.kg_id_for("musicdb:1") == result.kg_id_for("musicdb:1-dup")
    assert result.kg_id_for("musicdb:2") != result.kg_id_for("musicdb:1")


def test_typos_still_link(linker):
    sources = [source_artist("musicdb:1", "Crimson Horizon", genre="rock")]
    kg_view = [kg_artist("kg:e1", "Crimson Horizno", genre="rock")]
    result = linker.link(sources, kg_view)
    assert result.kg_id_for("musicdb:1") == "kg:e1"


def test_cross_type_payloads_are_linked_per_type(linker):
    sources = [
        source_artist("musicdb:1", "Echo Valley"),
        SourceEntity(entity_id="musicdb:s1", entity_type="song",
                     properties={"name": "Echo Valley"}, source_id="musicdb"),
    ]
    result = linker.link(sources, [])
    # Same surface name but different types must not collapse to one entity.
    assert result.kg_id_for("musicdb:1") != result.kg_id_for("musicdb:s1")


def test_compatible_types_can_link(linker):
    source = SourceEntity(entity_id="wiki:p1", entity_type="person",
                          properties={"name": "Nova Starlight"}, source_id="wiki")
    kg_view = [kg_artist("kg:e1", "Nova Starlight")]
    result = linker.link([source], kg_view)
    assert result.kg_id_for("wiki:p1") == "kg:e1"


def test_evaluate_linking_metrics():
    from repro.construction.linking import LinkingResult

    result = LinkingResult(assignments={
        "s:1": "kg:a", "s:2": "kg:a", "s:3": "kg:b", "s:4": "kg:c",
    })
    truth = {"s:1": "t1", "s:2": "t1", "s:3": "t2", "s:4": "t2"}
    metrics = evaluate_linking(result, truth)
    assert metrics["precision"] == 1.0           # only predicted pair (s1,s2) is correct
    assert metrics["recall"] == 0.5              # missed (s3,s4)
    empty = evaluate_linking(LinkingResult(), {})
    assert empty["f1"] == 1.0


def test_linking_result_merge(linker):
    first = linker.link([source_artist("musicdb:1", "Alpha Omega")], [])
    second = linker.link([source_artist("musicdb:2", "Beta Gamma")], [])
    merged = first.merge(second)
    assert set(merged.assignments) == {"musicdb:1", "musicdb:2"}
    assert merged.candidate_pair_count == first.candidate_pair_count + second.candidate_pair_count
