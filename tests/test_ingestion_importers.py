"""Tests for data source importers (repro.ingestion.importers)."""

import json

import pytest

from repro.errors import IngestionError
from repro.ingestion.importers import (
    CompositeImporter,
    CSVImporter,
    InMemoryImporter,
    JSONImporter,
    JSONLinesImporter,
    make_importer,
    register_importer,
)


def test_in_memory_importer_returns_copies():
    rows = [{"id": "1", "name": "A"}]
    importer = InMemoryImporter(rows)
    read = importer.read()
    read[0]["name"] = "mutated"
    assert rows[0]["name"] == "A"


def test_csv_importer_from_text():
    importer = CSVImporter(text="id,name\n1,Alice\n2,Bob\n")
    rows = importer.read()
    assert rows == [{"id": "1", "name": "Alice"}, {"id": "2", "name": "Bob"}]


def test_csv_importer_from_file(tmp_path):
    path = tmp_path / "artists.csv"
    path.write_text("id,name\n7,Charlie\n", encoding="utf-8")
    rows = CSVImporter(path=path).read()
    assert rows == [{"id": "7", "name": "Charlie"}]


def test_csv_importer_missing_file_raises():
    with pytest.raises(IngestionError):
        CSVImporter(path="/nonexistent/file.csv").read()
    with pytest.raises(IngestionError):
        CSVImporter().read()


def test_json_importer_accepts_list_and_wrapped_payloads():
    rows = JSONImporter(text=json.dumps([{"id": 1}])).read()
    assert rows == [{"id": 1}]
    wrapped = JSONImporter(text=json.dumps({"entities": [{"id": 2}]})).read()
    assert wrapped == [{"id": 2}]


def test_json_importer_rejects_malformed_payloads():
    with pytest.raises(IngestionError):
        JSONImporter(text="not json").read()
    with pytest.raises(IngestionError):
        JSONImporter(text=json.dumps({"count": 3})).read()
    with pytest.raises(IngestionError):
        JSONImporter(text=json.dumps([1, 2, 3])).read()


def test_jsonl_importer_skips_blank_lines():
    text = '{"id": 1}\n\n{"id": 2}\n'
    rows = JSONLinesImporter(text=text).read()
    assert [row["id"] for row in rows] == [1, 2]


def test_jsonl_importer_reports_bad_lines():
    with pytest.raises(IngestionError):
        JSONLinesImporter(text='{"id": 1}\nboom\n').read()


def test_composite_importer_joins_on_key():
    primary = InMemoryImporter([{"id": "a", "name": "Artist A"}, {"id": "b", "name": "Artist B"}])
    popularity = InMemoryImporter([{"id": "a", "popularity": 0.9}])
    rows = CompositeImporter(primary, [popularity], join_key="id").read()
    by_id = {row["id"]: row for row in rows}
    assert by_id["a"]["popularity"] == 0.9
    assert "popularity" not in by_id["b"]


def test_make_importer_and_registry():
    importer = make_importer("memory", rows=[{"id": 1}])
    assert importer.read() == [{"id": 1}]
    with pytest.raises(IngestionError):
        make_importer("parquet")
    register_importer("constant", lambda: InMemoryImporter([{"id": "c"}]))
    assert make_importer("constant").read() == [{"id": "c"}]
