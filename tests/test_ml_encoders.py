"""Tests for learned string encoders and distant supervision (repro.ml)."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.encoders import EncoderConfig, EncoderRegistry, StringEncoder
from repro.ml.training import (
    DistantSupervisionConfig,
    alias_groups_to_triplets,
    evaluate_encoder_recall,
    train_string_encoder,
    typo_variants,
)
from repro.datagen.names import synonym_lexicon


@pytest.fixture(scope="module")
def trained_encoder(world):
    groups = world.alias_groups()[:80]
    return train_string_encoder(
        groups,
        synonyms=synonym_lexicon(),
        encoder_config=EncoderConfig(epochs=3, seed=5),
        supervision_config=DistantSupervisionConfig(max_triplets=3000, seed=5),
    )


def test_encoder_encode_shape_and_normalization():
    encoder = StringEncoder(EncoderConfig(dimension=32))
    vector = encoder.encode("Robert Smith")
    assert vector.shape == (32,)
    assert np.linalg.norm(vector) == pytest.approx(1.0, abs=1e-6)
    assert encoder.encode("").sum() == 0.0


def test_encoder_similarity_bounds_and_identity():
    encoder = StringEncoder()
    assert encoder.similarity("same string", "same string") == pytest.approx(1.0, abs=1e-6)
    assert 0.0 <= encoder.similarity("abc", "xyz") <= 1.0
    assert encoder.similarity("", "abc") == 0.0


def test_encoder_batch_matches_single():
    encoder = StringEncoder()
    batch = encoder.encode_batch(["a b", "c d"])
    assert batch.shape[0] == 2
    assert np.allclose(batch[0], encoder.encode("a b"))


def test_training_reduces_triplet_loss():
    groups = [["Robert Smith", "Bob Smith"], ["Velvet Dreams"], ["Jennifer Lee", "Jen Lee"]]
    triplets = alias_groups_to_triplets(groups, DistantSupervisionConfig(seed=1))
    encoder = StringEncoder(EncoderConfig(epochs=6, seed=1))
    losses = encoder.train(triplets)
    assert encoder.trained
    assert losses[-1] <= losses[0]
    assert encoder.training_loss == losses


def test_training_requires_data():
    encoder = StringEncoder()
    with pytest.raises(TrainingError):
        encoder.train([])
    with pytest.raises(TrainingError):
        alias_groups_to_triplets([["only one entity"]])


def test_synonym_lexicon_makes_nicknames_closer():
    plain = StringEncoder(EncoderConfig(seed=3))
    aware = StringEncoder(EncoderConfig(seed=3), synonyms={"bob": "robert"})
    assert aware.similarity("Robert Smith", "Bob Smith") > plain.similarity(
        "Robert Smith", "Bob Smith"
    )


def test_typo_variants_differ_from_original():
    rng = np.random.default_rng(0)
    variants = typo_variants("washington", rng, count=3)
    assert variants
    assert all(variant != "washington" for variant in variants)
    assert typo_variants("ab", rng) == []


def test_trained_encoder_separates_matches_from_non_matches(trained_encoder, world):
    groups = [entity.all_names for entity in world.entities.values()][:40]
    positives = [(g[0], g[1]) for g in groups if len(g) > 1][:20]
    negatives = [(groups[i][0], groups[i + 1][0]) for i in range(20)]
    positive_scores = [trained_encoder.similarity(a, b) for a, b in positives]
    negative_scores = [trained_encoder.similarity(a, b) for a, b in negatives]
    assert np.mean(positive_scores) > np.mean(negative_scores)


def test_evaluate_encoder_recall_metrics(trained_encoder):
    positives = [("Robert Smith", "Bob Smith"), ("Jennifer Lee", "Jen Lee")]
    negatives = [("Robert Smith", "Velvet Dreams")]
    metrics = evaluate_encoder_recall(trained_encoder, positives, negatives, threshold=0.1)
    assert set(metrics) == {"precision", "recall", "f1"}
    assert 0.0 <= metrics["recall"] <= 1.0


def test_state_dict_roundtrip(trained_encoder):
    state = trained_encoder.state_dict()
    restored = StringEncoder.from_state_dict(state)
    assert restored.similarity("Robert Smith", "Bob Smith") == pytest.approx(
        trained_encoder.similarity("Robert Smith", "Bob Smith")
    )
    assert restored.trained


def test_encoder_registry():
    registry = EncoderRegistry()
    assert registry.get("name") is None
    assert registry.similarity("name", "a", "b") == 0.0
    registry.register("name", StringEncoder())
    assert registry.get("name") is not None
    assert registry.similarity("name", "abc", "abc") == pytest.approx(1.0, abs=1e-6)
