"""Shared fixtures for the test suite.

Heavyweight artifacts (the synthetic world, the reference KG, the source
suite, a constructed platform) are session-scoped so the several hundred tests
in this suite stay fast.
"""

from __future__ import annotations

import pytest

from repro.datagen import (
    LiveStreamGenerator,
    TextCorpusConfig,
    TextCorpusGenerator,
    WorldConfig,
    default_source_suite,
    generate_world,
    world_to_store,
)
from repro.model import default_ontology


SMALL_WORLD_CONFIG = WorldConfig(
    num_people=24,
    num_artists=10,
    num_actors=6,
    num_athletes=4,
    songs_per_artist=3,
    albums_per_artist=2,
    num_playlists=4,
    num_movies=8,
    num_cities=12,
    num_countries=5,
    num_schools=6,
    num_labels=5,
    num_teams=6,
    num_stadiums=6,
    num_companies=6,
    seed=7,
)


@pytest.fixture(scope="session")
def ontology():
    """The default open-domain ontology."""
    return default_ontology()


@pytest.fixture(scope="session")
def world():
    """A small deterministic ground-truth world."""
    return generate_world(SMALL_WORLD_CONFIG)


@pytest.fixture(scope="session")
def reference_store(world):
    """The reference KG built directly from the ground-truth world."""
    return world_to_store(world)


@pytest.fixture(scope="session")
def source_suite(world):
    """The four-source noisy suite derived from the world."""
    return default_source_suite(world)


@pytest.fixture(scope="session")
def truth_map(source_suite):
    """Mapping from source entity ids to ground-truth ids across the suite."""
    combined: dict[str, str] = {}
    for source in source_suite:
        combined.update(source.truth_map)
    return combined


@pytest.fixture(scope="session")
def live_events(world):
    """The deterministic live event streams for the world."""
    return LiveStreamGenerator(world).all_events()


@pytest.fixture(scope="session")
def passages(world):
    """Annotated text passages for NERD evaluation."""
    return TextCorpusGenerator(world, TextCorpusConfig(num_passages=60, seed=31)).generate()


@pytest.fixture(scope="session")
def constructed_platform(world, source_suite):
    """A SagaPlatform that has ingested every source snapshot once."""
    from repro import SagaPlatform

    platform = SagaPlatform()
    for source in source_suite:
        platform.register_source(source.source_id)
        platform.ingest_snapshot(source.source_id, source.entities)
    return platform
