"""Tests for SourceEntity / KGEntity (repro.model.entity)."""

import pytest

from repro.errors import DataModelError
from repro.model.entity import (
    KGEntity,
    RelationshipNode,
    SourceEntity,
    materialize_entities,
)
from repro.model.triples import TripleStore


@pytest.fixture
def person_entity():
    return SourceEntity(
        entity_id="wiki:person/1",
        entity_type="person",
        properties={
            "name": "J. Smith",
            "alias": ["John Smith"],
            "occupation": ["researcher", "author"],
            "birth_date": "1980-05-01",
            "educated_at": [{"school": "UW", "degree": "PhD", "year": 2005}],
        },
        source_id="wiki",
        trust=0.9,
    )


def test_source_entity_requires_id():
    with pytest.raises(DataModelError):
        SourceEntity(entity_id="")


def test_values_and_relationships_accessors(person_entity):
    assert person_entity.values("name") == ["J. Smith"]
    assert person_entity.values("occupation") == ["researcher", "author"]
    assert person_entity.values("educated_at") == []          # composite, not scalar
    assert person_entity.relationships("educated_at") == [
        {"school": "UW", "degree": "PhD", "year": 2005}
    ]
    assert person_entity.values("missing") == []
    assert person_entity.names() == ["J. Smith", "John Smith"]
    assert person_entity.primary_name() == "J. Smith"


def test_to_triples_flattens_simple_and_composite_facts(person_entity):
    triples = person_entity.to_triples()
    by_predicate = {}
    for triple in triples:
        by_predicate.setdefault(triple.predicate, []).append(triple)
    assert len(by_predicate["type"]) == 1
    assert len(by_predicate["occupation"]) == 2
    educated = by_predicate["educated_at"]
    assert len(educated) == 3                 # school, degree, year
    assert all(t.is_composite for t in educated)
    assert len({t.relationship_id for t in educated}) == 1
    assert all(t.sources == ["wiki"] for t in triples)


def test_to_triples_of_same_entity_is_deterministic(person_entity):
    first = [t.key() for t in person_entity.to_triples()]
    second = [t.key() for t in person_entity.copy().to_triples()]
    assert first == second


def test_copy_is_deep(person_entity):
    clone = person_entity.copy()
    clone.properties["alias"].append("Johnny")
    clone.properties["educated_at"][0]["degree"] = "MSc"
    assert person_entity.properties["alias"] == ["John Smith"]
    assert person_entity.properties["educated_at"][0]["degree"] == "PhD"


def test_fingerprint_changes_with_content(person_entity):
    base = person_entity.fingerprint()
    clone = person_entity.copy()
    assert clone.fingerprint() == base
    clone.properties["birth_date"] = "1981-05-01"
    assert clone.fingerprint() != base


def test_relationship_node_overlap():
    left = RelationshipNode("rel:1", "educated_at", {"school": "UW", "degree": "PhD"})
    right = RelationshipNode("rel:2", "educated_at", {"school": "UW", "year": 2005})
    disjoint = RelationshipNode("rel:3", "educated_at", {"school": "MIT"})
    assert left.overlap(right) == pytest.approx(0.5)
    assert left.overlap(disjoint) == 0.0
    assert RelationshipNode("r", "p").overlap(left) == 0.0


def test_kg_entity_from_triples(person_entity):
    store = TripleStore(person_entity.to_triples())
    entity = KGEntity.from_triples("wiki:person/1", store.facts_about("wiki:person/1"))
    assert entity.primary_name == "J. Smith"
    assert "person" in entity.types
    assert set(entity.facts["occupation"]) == {"researcher", "author"}
    assert "educated_at" in entity.relationships
    node = entity.relationships["educated_at"][0]
    assert node.facts["school"] == "UW"
    assert entity.degree() >= 5
    assert entity.value("birth_date") == "1980-05-01"
    assert entity.value("missing") is None


def test_materialize_entities(person_entity):
    store = TripleStore(person_entity.to_triples())
    entities = materialize_entities(store)
    assert set(entities) == {"wiki:person/1"}
