"""Tests for the NERD stack: entity view, candidate retrieval, disambiguation, service."""

import pytest

from repro.baselines.legacy_nerd import LegacyEntityLinker, PopularityDisambiguator
from repro.construction.object_resolution import ResolutionContext
from repro.errors import NERDError
from repro.ml.nerd import (
    CandidateRetriever,
    ContextualDisambiguator,
    MentionContext,
    NERDEntityView,
    NERDService,
)


@pytest.fixture(scope="module")
def entity_view(reference_store):
    return NERDEntityView.build(reference_store)


@pytest.fixture(scope="module")
def nerd_service(reference_store, ontology):
    return NERDService.from_store(reference_store, ontology)


# --------------------------------------------------------------------- #
# NERD entity view
# --------------------------------------------------------------------- #
def test_entity_view_summarizes_entities(entity_view, world, reference_store):
    assert len(entity_view) == reference_store.entity_count()
    artist = world.of_type("music_artist")[0]
    record = entity_view.get(artist.truth_id)
    assert record is not None
    assert artist.name in record.names
    assert "music_artist" in record.types
    assert record.relations, "relations should include forward or reverse links"
    assert record.importance > 0.0
    assert record.context_tokens()
    assert artist.name.lower().split()[0] in " ".join(record.normalized_names())


def test_entity_view_refresh_and_remove(entity_view, reference_store, world):
    artist = world.of_type("music_artist")[0]
    view = NERDEntityView.build(reference_store)
    assert view.refresh(reference_store, [artist.truth_id]) == 1
    assert view.remove(artist.truth_id) is True
    assert artist.truth_id not in view
    assert view.refresh(reference_store, ["truth:nonexistent"]) == 0


# --------------------------------------------------------------------- #
# candidate retrieval
# --------------------------------------------------------------------- #
def test_candidate_retrieval_exact_and_fuzzy(entity_view, ontology, world):
    retriever = CandidateRetriever(entity_view, ontology=ontology)
    artist = world.of_type("music_artist")[0]
    exact = retriever.retrieve(artist.name)
    assert exact and exact[0].entity_id == artist.truth_id
    typo = artist.name[:-1] + ("x" if artist.name[-1] != "x" else "y")
    fuzzy = retriever.retrieve(typo)
    assert any(candidate.entity_id == artist.truth_id for candidate in fuzzy)
    assert retriever.retrieve("") == []
    assert retriever.retrieve("zzqqxx totally unknown") == []


def test_candidate_retrieval_type_hints_filter(entity_view, ontology, world):
    retriever = CandidateRetriever(entity_view, ontology=ontology)
    # Ambiguous city names exist across countries; type hints keep only cities.
    city = world.of_type("city")[0]
    candidates = retriever.retrieve(city.name, type_hints=("city",))
    assert candidates
    assert all("city" in c.record.types for c in candidates)
    none_allowed = retriever.retrieve(city.name, type_hints=("song",))
    assert all("song" in c.record.types for c in none_allowed) or none_allowed == []


def test_candidate_retrieval_refresh_entities(entity_view, ontology, world):
    retriever = CandidateRetriever(entity_view, ontology=ontology)
    artist = world.of_type("music_artist")[1]
    retriever.refresh_entities([artist.truth_id])
    assert any(c.entity_id == artist.truth_id for c in retriever.retrieve(artist.name))


# --------------------------------------------------------------------- #
# contextual disambiguation
# --------------------------------------------------------------------- #
def test_ambiguous_mention_resolved_by_context(nerd_service, world):
    cities = world.of_type("city")
    by_name = {}
    for city in cities:
        by_name.setdefault(city.name, []).append(city)
    ambiguous = [group for group in by_name.values() if len(group) > 1]
    if not ambiguous:
        pytest.skip("world generated no ambiguous city names")
    group = ambiguous[0]
    target = group[0]
    country = world.get(target.facts["located_in"])
    result = nerd_service.link_mention(
        target.name,
        context_text=f"We visited {target.name} in {country.name} last spring.",
    )
    assert result.entity_id == target.truth_id
    assert result.candidate_count >= 2


def test_disambiguation_rejection_for_unknown_context():
    disambiguator = ContextualDisambiguator(rejection_threshold=0.99)
    context = MentionContext(mention="Some Entity")
    assert disambiguator.disambiguate(context, []).rejected


def test_disambiguator_fit_weak_supervision(entity_view, world):
    records = entity_view.records()[:20]
    examples = []
    for record in records:
        context = MentionContext(mention=record.names[0],
                                 context_text=" ".join(n for _, n in record.relations[:3]))
        examples.append((context, record, 1))
        negative = records[(records.index(record) + 7) % len(records)]
        examples.append((context, negative, 0))
    model = ContextualDisambiguator().fit(examples, epochs=30)
    assert model.trained
    positive_context, positive_record, _ = examples[0]
    assert model.score(positive_context, positive_record) > model.score(
        positive_context, examples[1][1]
    )
    with pytest.raises(NERDError):
        ContextualDisambiguator().fit([])


# --------------------------------------------------------------------- #
# service: mention generation, annotation, OBR protocol
# --------------------------------------------------------------------- #
def test_mention_generation_finds_known_names(nerd_service, world):
    artist = world.of_type("music_artist")[0]
    text = f"Yesterday {artist.name} announced a new tour."
    mentions = nerd_service.generate_mentions(text)
    assert any(m.text == artist.name for m in mentions)
    assert nerd_service.generate_mentions("") == []


def test_annotate_links_mentions_with_confidence(nerd_service, passages, world):
    correct = 0
    considered = 0
    for passage in passages[:40]:
        gold = passage.mentions[0]
        annotations = nerd_service.annotate(passage.text)
        overlapping = [
            a for a in annotations
            if a.mention.start < gold.end and gold.start < a.mention.end
        ]
        if not overlapping:
            continue
        considered += 1
        if overlapping[0].entity_id == gold.truth_id:
            correct += 1
    assert considered >= 30
    assert correct / considered > 0.8


def test_annotate_batch(nerd_service):
    results = nerd_service.annotate_batch(["nothing known here", ""])
    assert len(results) == 2


def test_nerd_resolve_satisfies_obr_protocol(nerd_service, world, ontology):
    label = world.of_type("record_label")[0]
    resolution = nerd_service.resolve(
        label.name,
        ResolutionContext(predicate="record_label", expected_types=("record_label",)),
    )
    assert resolution is not None
    assert resolution.entity_id == label.truth_id
    assert resolution.confidence > 0.5
    assert nerd_service.resolve("Unknown Gibberish Entity 999", ResolutionContext()) is None


def test_refresh_entities_keeps_service_fresh(reference_store, ontology, world):
    service = NERDService.from_store(reference_store, ontology)
    artist = world.of_type("music_artist")[0]
    service.refresh_entities(reference_store, [artist.truth_id])
    result = service.link_mention(artist.name)
    assert result.entity_id == artist.truth_id


# --------------------------------------------------------------------- #
# legacy baseline behaviour (context-free, popularity-driven)
# --------------------------------------------------------------------- #
def test_legacy_linker_prefers_popular_entities(entity_view, ontology, world):
    linker = LegacyEntityLinker(entity_view, ontology)
    by_name = {}
    for city in world.of_type("city"):
        by_name.setdefault(city.name, []).append(city)
    ambiguous = [group for group in by_name.values() if len(group) > 1]
    if not ambiguous:
        pytest.skip("world generated no ambiguous city names")
    group = ambiguous[0]
    most_popular = max(group, key=lambda c: c.popularity)
    least_popular = min(group, key=lambda c: c.popularity)
    country = world.get(least_popular.facts["located_in"])
    result = linker.link_mention(
        least_popular.name,
        context_text=f"We visited {least_popular.name} in {country.name}.",
    )
    # The baseline ignores context, so it either picks the popular entity or
    # is not confident; it should NOT reliably recover the tail entity.
    assert result.entity_id != least_popular.truth_id or result.confidence < 0.7 or (
        most_popular.truth_id == least_popular.truth_id
    )


def test_popularity_disambiguator_scores_monotonic_in_importance(entity_view):
    records = entity_view.records()[:2]
    a, b = records[0], records[1]
    a.importance, b.importance = 0.9, 0.1
    disambiguator = PopularityDisambiguator()
    context = MentionContext(mention=a.names[0])
    assert disambiguator.score(context, a) > disambiguator.score(
        MentionContext(mention=a.names[0]), b
    )


def test_legacy_resolve_protocol(entity_view, ontology, world):
    linker = LegacyEntityLinker(entity_view, ontology)
    label = world.of_type("record_label")[0]
    resolution = linker.resolve(label.name, ResolutionContext(expected_types=("record_label",)))
    assert resolution is None or resolution.entity_id.startswith("truth:")
