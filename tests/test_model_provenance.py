"""Tests for provenance and trust metadata (repro.model.provenance)."""

import pytest

from repro.errors import DataModelError
from repro.model.provenance import Provenance, SourceReference


def test_source_reference_validates_trust_bounds():
    SourceReference("src", 0.0)
    SourceReference("src", 1.0)
    with pytest.raises(DataModelError):
        SourceReference("src", 1.5)
    with pytest.raises(DataModelError):
        SourceReference("", 0.5)


def test_from_source_and_accessors():
    prov = Provenance.from_source("wiki", 0.9)
    assert prov.sources == ["wiki"]
    assert prov.trust_scores == [0.9]
    assert prov.trust_of("wiki") == 0.9
    assert prov.trust_of("other") is None
    assert "wiki" in prov
    assert len(prov) == 1


def test_add_is_idempotent_and_keeps_max_trust():
    prov = Provenance.from_source("wiki", 0.5)
    prov.add("wiki", 0.8)
    assert prov.trust_of("wiki") == 0.8
    prov.add("wiki", 0.3)
    assert prov.trust_of("wiki") == 0.8
    assert len(prov) == 1


def test_merge_is_non_destructive():
    left = Provenance.from_source("a", 0.6)
    right = Provenance.from_source("b", 0.7)
    merged = left.merge(right)
    assert merged.sources == ["a", "b"]
    # original objects unchanged
    assert left.sources == ["a"]
    assert right.sources == ["b"]


def test_remove_source_enables_on_demand_deletion():
    prov = Provenance.from_mapping({"a": 0.5, "b": 0.6})
    assert prov.remove_source("a") is True
    assert prov.sources == ["b"]
    assert prov.remove_source("a") is False
    prov.remove_source("b")
    assert prov.is_empty()


def test_restrict_to_allow_list():
    prov = Provenance.from_mapping({"a": 0.5, "b": 0.6, "c": 0.7})
    restricted = prov.restrict_to(["b", "c"])
    assert restricted.sources == ["b", "c"]
    assert prov.sources == ["a", "b", "c"]


def test_confidence_grows_with_agreement():
    single = Provenance.from_source("a", 0.6)
    double = Provenance.from_mapping({"a": 0.6, "b": 0.6})
    assert single.confidence() == pytest.approx(0.6)
    assert double.confidence() == pytest.approx(1 - 0.4 * 0.4)
    assert double.confidence() > single.confidence()


def test_confidence_of_empty_provenance_is_zero():
    assert Provenance().confidence() == 0.0
    assert Provenance().is_empty()


def test_copy_is_independent():
    prov = Provenance.from_source("a", 0.5)
    clone = prov.copy()
    clone.add("b", 0.5)
    assert prov.sources == ["a"]
    assert clone.sources == ["a", "b"]
