"""Property-based tests (hypothesis) for core data structures and invariants."""

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.construction.clustering import ClusteringConfig, CorrelationClustering, LinkageGraph
from repro.construction.records import LinkableRecord
from repro.engine.log import OperationLog
from repro.engine.text_index import InvertedTextIndex, TextDocument
from repro.live.kgq import parse
from repro.ml import similarity as sim
from repro.model.delta import compute_delta
from repro.model.entity import SourceEntity
from repro.model.provenance import Provenance
from repro.model.triples import ExtendedTriple, TripleStore

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

names = st.text(alphabet=string.ascii_letters + " '-", min_size=0, max_size=24)
source_ids = st.sampled_from(["wiki", "musicdb", "moviedb", "sportsref", "fanwiki"])
trusts = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


# --------------------------------------------------------------------- #
# similarity functions
# --------------------------------------------------------------------- #
@SETTINGS
@given(names, names)
def test_similarity_functions_are_bounded_and_symmetric_enough(a, b):
    for function in (sim.levenshtein_similarity, sim.jaro_winkler_similarity,
                     sim.jaccard_similarity, sim.qgram_similarity,
                     sim.cosine_qgram_similarity):
        value = function(a, b)
        assert 0.0 <= value <= 1.0
        assert abs(function(a, b) - function(b, a)) < 1e-9


@SETTINGS
@given(names)
def test_identity_similarity_is_one_for_nonempty_strings(text):
    if sim.normalize_string(text):
        assert sim.levenshtein_similarity(text, text) == 1.0
        assert sim.jaro_winkler_similarity(text, text) == 1.0


# --------------------------------------------------------------------- #
# provenance
# --------------------------------------------------------------------- #
@SETTINGS
@given(st.lists(st.tuples(source_ids, trusts), min_size=1, max_size=6))
def test_provenance_merge_is_idempotent_and_bounded(pairs):
    provenance = Provenance()
    for source_id, trust in pairs:
        provenance.add(source_id, trust)
    merged = provenance.merge(provenance)
    assert merged.sources == provenance.sources
    assert 0.0 <= provenance.confidence() <= 1.0
    assert len(set(provenance.sources)) == len(provenance.sources)


@SETTINGS
@given(st.lists(st.tuples(source_ids, trusts), min_size=1, max_size=6), source_ids)
def test_provenance_confidence_never_increases_when_removing_a_source(pairs, victim):
    provenance = Provenance()
    for source_id, trust in pairs:
        provenance.add(source_id, trust)
    before = provenance.confidence()
    provenance.remove_source(victim)
    assert provenance.confidence() <= before + 1e-12


# --------------------------------------------------------------------- #
# triple store
# --------------------------------------------------------------------- #
triples = st.builds(
    lambda s, p, o, src, t: ExtendedTriple(
        subject=f"kg:{s}", predicate=p, obj=o,
        provenance=Provenance.from_source(src, t),
    ),
    st.integers(min_value=1, max_value=8).map(str),
    st.sampled_from(["name", "genre", "birth_date", "spouse", "popularity"]),
    st.one_of(names.filter(bool), st.integers(-5, 5)),
    source_ids,
    trusts,
)


@SETTINGS
@given(st.lists(triples, max_size=30))
def test_triple_store_deduplicates_by_fact_key(batch):
    store = TripleStore(batch)
    assert store.fact_count() == len({t.key() for t in batch})
    assert store.entity_count() == len({t.subject for t in batch})
    # every stored fact is retrievable via its subject index
    for triple in store:
        assert triple in store
        assert any(t.key() == triple.key() for t in store.facts_about(triple.subject))


@SETTINGS
@given(st.lists(triples, max_size=30), source_ids)
def test_triple_store_remove_source_leaves_no_orphan_provenance(batch, victim):
    store = TripleStore(batch)
    store.remove_source(victim)
    for triple in store:
        assert victim not in triple.provenance
        assert not triple.provenance.is_empty()


# --------------------------------------------------------------------- #
# delta computation
# --------------------------------------------------------------------- #
entities = st.lists(
    st.builds(
        lambda i, name, pop: SourceEntity(
            entity_id=f"src:{i}", entity_type="person",
            properties={"name": name or "x", "popularity": pop}, source_id="src",
        ),
        st.integers(min_value=1, max_value=12),
        names,
        trusts,
    ),
    max_size=12,
    unique_by=lambda e: e.entity_id,
)


@SETTINGS
@given(entities, entities)
def test_delta_partitions_are_disjoint_and_cover_changes(previous, current):
    delta = compute_delta("src", previous, current, volatile_predicates=["popularity"])
    added = {e.entity_id for e in delta.added}
    deleted = {e.entity_id for e in delta.deleted}
    updated = {e.entity_id for e in delta.updated}
    assert not (added & deleted)
    assert not (added & updated)
    assert not (deleted & updated)
    previous_ids = {e.entity_id for e in previous}
    current_ids = {e.entity_id for e in current}
    assert added == current_ids - previous_ids
    assert deleted == previous_ids - current_ids
    assert updated <= (previous_ids & current_ids)


@SETTINGS
@given(entities)
def test_delta_of_identical_snapshots_is_empty_modulo_volatile(snapshot):
    delta = compute_delta("src", snapshot, [e.copy() for e in snapshot],
                          volatile_predicates=["popularity"])
    assert not delta.added and not delta.deleted and not delta.updated


# --------------------------------------------------------------------- #
# correlation clustering
# --------------------------------------------------------------------- #
@SETTINGS
@given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9), st.booleans()), max_size=30),
       st.integers(0, 1000))
def test_correlation_clustering_partitions_all_nodes(edges, seed):
    graph = LinkageGraph()
    for left, right, positive in edges:
        if left == right:
            continue
        a = LinkableRecord(record_id=f"r{left}")
        b = LinkableRecord(record_id=f"r{right}")
        if positive:
            graph.add_positive(a, b)
        else:
            graph.add_negative(a, b)
    clusters = CorrelationClustering(ClusteringConfig(seed=seed)).cluster(graph)
    assigned = [node for cluster in clusters for node in cluster]
    assert sorted(assigned) == sorted(graph.node_ids())     # exactly one cluster per node
    assert graph.disagreement(clusters) >= 0


# --------------------------------------------------------------------- #
# operation log
# --------------------------------------------------------------------- #
@SETTINGS
@given(st.lists(st.sampled_from(["ingest_delta", "remove_source", "curation"]),
                min_size=1, max_size=20))
def test_operation_log_lsns_are_dense_and_ordered(operations):
    log = OperationLog()
    for operation in operations:
        log.append(operation)
    lsns = [record.lsn for record in log]
    assert lsns == list(range(1, len(operations) + 1))
    assert [r.lsn for r in log.read_from(len(operations) // 2)] == lsns[len(operations) // 2:]


# --------------------------------------------------------------------- #
# text index
# --------------------------------------------------------------------- #
@SETTINGS
@given(st.lists(st.tuples(st.integers(0, 20), names.filter(lambda s: sim.tokens(s))),
                min_size=1, max_size=20))
def test_text_index_search_returns_only_indexed_documents(docs):
    index = InvertedTextIndex()
    latest_text = {}
    for doc_id, text in docs:
        index.index(TextDocument(doc_id=f"d{doc_id}", text=text))
        latest_text[f"d{doc_id}"] = text
    for doc_id, text in latest_text.items():
        hits = index.search(text, k=50)
        assert all(hit.doc_id in index for hit in hits)
        if sim.tokens(text):
            assert any(hit.doc_id == doc_id for hit in hits)


# --------------------------------------------------------------------- #
# KGQ parse/render round trip
# --------------------------------------------------------------------- #
kgq_values = st.text(alphabet=string.ascii_letters + " ", min_size=1, max_size=12)


@SETTINGS
@given(st.sampled_from(["person", "city", "sports_game", "stock"]),
       st.sampled_from(["name", "ticker", "game_status"]),
       kgq_values,
       st.sampled_from(["=", "!=", "CONTAINS"]),
       st.integers(1, 50))
def test_kgq_parse_render_roundtrip(entity_type, predicate, value, operator, limit):
    text = (f'MATCH {entity_type} WHERE {predicate} {operator} "{value}" '
            f"RETURN {predicate} LIMIT {limit}")
    query = parse(text)
    assert parse(query.render()) == query
