"""Tests for the baseline implementations (legacy views, embedding regimes)."""

import pytest

from repro.baselines import DGLKEStyleTrainer, LegacyViewEngine, PBGStyleTrainer
from repro.engine.analytics import AnalyticsStore, EntityViewSpec
from repro.ml.embeddings import EmbeddingConfig, InMemoryTrainer, TrainerConfig, extract_edges
from repro.model.provenance import Provenance
from repro.model.triples import ExtendedTriple


def triple(subject, predicate, obj):
    return ExtendedTriple(subject=subject, predicate=predicate, obj=obj,
                          provenance=Provenance.from_source("src", 0.9))


@pytest.fixture
def small_kg_triples():
    return [
        triple("kg:a1", "type", "music_artist"),
        triple("kg:a1", "name", "Echo Valley"),
        triple("kg:a1", "genre", "pop"),
        triple("kg:a1", "record_label", "kg:l1"),
        triple("kg:l1", "type", "record_label"),
        triple("kg:l1", "name", "Apex Records"),
        triple("kg:l1", "headquarters", "kg:c1"),
        triple("kg:c1", "type", "city"),
        triple("kg:c1", "name", "Springfield"),
    ]


def test_legacy_view_engine_matches_optimized_output(small_kg_triples):
    spec = EntityViewSpec(
        name="artists",
        entity_type="music_artist",
        predicates=("genre",),
        reference_joins={"label_name": "record_label"},
        nested_joins={"label_city": ("record_label", "headquarters")},
    )
    optimized_store = AnalyticsStore()
    optimized_store.ingest(small_kg_triples)
    optimized = {row["subject"]: row for row in optimized_store.entity_view(spec).rows}

    legacy = LegacyViewEngine.from_triples(small_kg_triples)
    legacy_rows = {row["subject"]: row for row in legacy.entity_view(spec).rows}

    assert set(optimized) == set(legacy_rows)
    for subject, optimized_row in optimized.items():
        legacy_row = legacy_rows[subject]
        assert optimized_row["genre"] == legacy_row["genre"]
        assert optimized_row["label_name"] == legacy_row["label_name"]
        assert optimized_row["label_city"] == legacy_row["label_city"]


def test_legacy_view_engine_scans_many_more_rows(small_kg_triples):
    spec = EntityViewSpec(name="artists", entity_type="music_artist",
                          predicates=("genre",), reference_joins={"label": "record_label"})
    legacy = LegacyViewEngine.from_triples(small_kg_triples)
    legacy.entity_view(spec)
    optimized = AnalyticsStore()
    optimized.ingest(small_kg_triples)
    optimized.entity_view(spec)
    assert legacy.rows_scanned > optimized.rows_scanned


def test_legacy_view_engine_compute_views_batch(small_kg_triples):
    legacy = LegacyViewEngine.from_triples(small_kg_triples)
    specs = [
        EntityViewSpec(name="artists", entity_type="music_artist", predicates=("genre",)),
        EntityViewSpec(name="labels", entity_type="record_label", predicates=("name",)),
    ]
    views = legacy.compute_views(specs)
    assert set(views) == {"artists", "labels"}


def test_embedding_baselines_account_resources(reference_store):
    edges = extract_edges(reference_store)
    config = EmbeddingConfig(dimension=8, seed=1)
    trainer_config = TrainerConfig(epochs=1, batch_size=256, seed=1)

    marius_like = InMemoryTrainer("transe", config, trainer_config).train(edges)
    dglke = DGLKEStyleTrainer("transe", config, trainer_config).train(edges)
    pbg = PBGStyleTrainer("transe", config, trainer_config, utilization=0.25).train(edges)

    assert dglke.model_name.startswith("dglke-style/")
    assert dglke.peak_memory_bytes > marius_like.peak_memory_bytes
    assert dglke.extra["cluster_exclusive"] is True

    assert pbg.model_name.startswith("pbg-style/")
    assert pbg.seconds > marius_like.seconds
    assert pbg.extra["utilization"] == 0.25
