"""Tests for the log, object store, metadata store, and orchestration agents."""

import pytest

from repro.engine.agents import AgentCoordinator, CallbackAgent, OrchestrationAgent
from repro.engine.log import LogRecord, OperationLog
from repro.engine.metadata import MetadataStore
from repro.engine.object_store import ObjectStore
from repro.errors import EngineError, LogError, StoreError


# --------------------------------------------------------------------- #
# OperationLog
# --------------------------------------------------------------------- #
def test_log_appends_with_monotonic_lsns():
    log = OperationLog()
    first = log.append("ingest_delta", source_id="musicdb")
    second = log.append("ingest_delta", source_id="wiki")
    assert (first.lsn, second.lsn) == (1, 2)
    assert log.head_lsn() == 2
    assert len(log) == 2


def test_log_read_from_and_get():
    log = OperationLog()
    for index in range(5):
        log.append("op", metadata={"index": index})
    assert [record.lsn for record in log.read_from(2)] == [3, 4, 5]
    assert log.get(3).metadata == {"index": 2}
    with pytest.raises(LogError):
        log.get(99)
    with pytest.raises(LogError):
        log.append("")


def test_log_durability_and_recovery(tmp_path):
    path = tmp_path / "oplog.jsonl"
    log = OperationLog(path)
    log.append("ingest_delta", source_id="musicdb", payload_key="payload/1")
    log.append("remove_source", source_id="fanwiki")
    recovered = OperationLog(path)
    assert recovered.head_lsn() == 2
    assert recovered.get(2).operation == "remove_source"
    recovered.append("ingest_delta", source_id="wiki")
    assert OperationLog(path).head_lsn() == 3


def test_log_record_json_roundtrip():
    record = LogRecord(lsn=7, operation="ingest_delta", source_id="x",
                       payload_key="k", metadata={"a": 1})
    assert LogRecord.from_json(record.to_json()) == record


# --------------------------------------------------------------------- #
# ObjectStore
# --------------------------------------------------------------------- #
def test_object_store_put_get_delete():
    store = ObjectStore()
    key = store.put({"subjects": ["kg:e1"]})
    assert key in store
    assert store.get(key) == {"subjects": ["kg:e1"]}
    explicit = store.put([1, 2], key="payload/custom")
    assert explicit == "payload/custom"
    assert store.delete(key) is True
    assert store.delete(key) is False
    with pytest.raises(StoreError):
        store.get(key)
    assert store.puts == 2 and store.gets >= 1


# --------------------------------------------------------------------- #
# MetadataStore
# --------------------------------------------------------------------- #
def test_metadata_watermarks_and_freshness():
    metadata = MetadataStore()
    metadata.update_watermark("analytics", 5)
    metadata.update_watermark("analytics", 3)          # never goes backwards
    metadata.update_watermark("text_index", 7)
    assert metadata.watermark("analytics") == 5
    assert metadata.minimum_watermark() == 5
    assert metadata.is_fresh("text_index", 6)
    assert not metadata.is_fresh("analytics", 6)
    assert metadata.lagging_stores(7) == {"analytics": 2}
    metadata.annotate("views", owner="platform")
    assert metadata.annotation("views") == {"owner": "platform"}
    assert metadata.annotation("missing") == {}


# --------------------------------------------------------------------- #
# AgentCoordinator
# --------------------------------------------------------------------- #
class RecordingAgent(OrchestrationAgent):
    def __init__(self, name, fail_on_lsn=None):
        super().__init__(name)
        self.seen = []
        self.fail_on_lsn = fail_on_lsn

    def apply(self, record, payload):
        if self.fail_on_lsn == record.lsn:
            raise RuntimeError("boom")
        self.seen.append((record.lsn, payload))


def make_coordinator():
    log = OperationLog()
    objects = ObjectStore()
    metadata = MetadataStore()
    return log, objects, metadata, AgentCoordinator(log, objects, metadata)


def test_coordinator_replays_in_order_and_tracks_watermarks():
    log, objects, metadata, coordinator = make_coordinator()
    agent = coordinator.register(RecordingAgent("store_a"))
    key = objects.put({"v": 1})
    log.append("ingest_delta", payload_key=key)
    log.append("ingest_delta")
    report = coordinator.replay()
    assert report.applied == {"store_a": 2}
    assert [lsn for lsn, _ in agent.seen] == [1, 2]
    assert agent.seen[0][1] == {"v": 1}
    assert metadata.watermark("store_a") == 2
    # Replaying again with no new records is a no-op.
    assert coordinator.replay().total_applied() == 0


def test_coordinator_registers_each_agent_once():
    _, _, _, coordinator = make_coordinator()
    coordinator.register(RecordingAgent("store_a"))
    with pytest.raises(EngineError):
        coordinator.register(RecordingAgent("store_a"))
    with pytest.raises(EngineError):
        coordinator.replay(["unknown"])


def test_failed_agent_stops_at_failure_but_others_progress():
    log, objects, metadata, coordinator = make_coordinator()
    flaky = coordinator.register(RecordingAgent("flaky", fail_on_lsn=2))
    coordinator.register(RecordingAgent("healthy"))
    for _ in range(3):
        log.append("ingest_delta")
    report = coordinator.replay()
    assert report.applied["healthy"] == 3
    assert report.applied["flaky"] == 1
    assert report.failed["flaky"] == 1
    assert metadata.watermark("flaky") == 1
    assert flaky.errors and "boom" in flaky.errors[0]
    assert coordinator.freshness() == {"flaky": 2, "healthy": 0}


def test_callback_agent_and_lagging_store_catches_up():
    log, objects, metadata, coordinator = make_coordinator()
    seen = []
    coordinator.register(CallbackAgent("cb", lambda record, payload: seen.append(record.lsn)))
    log.append("ingest_delta")
    coordinator.replay()
    coordinator.register(RecordingAgent("late"))
    log.append("ingest_delta")
    report = coordinator.replay()
    assert report.applied["late"] == 2          # replays from the beginning
    assert seen == [1, 2]
