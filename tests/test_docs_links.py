"""Tier-1 wrapper around the docs link lint (tools/check_doc_links.py).

CI's lint job runs the script directly; this wrapper keeps the same
invariants — no dangling relative links, no docs/*.md orphaned from the
README subsystem map — inside the tier-1 suite so a local `pytest` run
catches doc drift too.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_docs_links_resolve_and_every_doc_is_reachable():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_doc_links.py"), str(REPO_ROOT)],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, (
        f"docs link lint failed:\n{result.stdout}{result.stderr}"
    )
    assert "docs links OK" in result.stdout


def test_readme_and_architecture_doc_exist():
    # The link checker treats a missing README as its own failure, but make
    # the two load-bearing documents' existence an explicit assertion.
    assert (REPO_ROOT / "README.md").is_file()
    assert (REPO_ROOT / "docs" / "architecture.md").is_file()
    assert (REPO_ROOT / "docs" / "kgq.md").is_file()
