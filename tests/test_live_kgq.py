"""Tests for the KGQ language: lexer, parser, virtual operators, planner."""

import pytest

from repro.errors import KGQPlanError, KGQSyntaxError
from repro.live.kgq import (
    CallQuery,
    Condition,
    Query,
    VirtualOperatorRegistry,
    default_virtual_operators,
    parse,
    tokenize,
)
from repro.live.planner import IndexLookup, QueryPlanner, TypeScan


def test_tokenize_basic_query():
    tokens = tokenize('MATCH person WHERE name = "Ada" LIMIT 5')
    kinds = [token.kind for token in tokens]
    assert kinds == ["ident", "ident", "ident", "ident", "op", "string", "ident", "number"]
    with pytest.raises(KGQSyntaxError):
        tokenize("MATCH person WHERE name = @bad")


def test_parse_simple_match():
    query = parse('MATCH country WHERE name = "Canada" RETURN head_of_state.name')
    assert isinstance(query, Query)
    assert query.entity_type == "country"
    assert query.conditions == [Condition(("name",), "=", "Canada")]
    assert query.returns == [("head_of_state", "name")]
    assert query.limit is None


def test_parse_multiple_conditions_returns_and_limit():
    query = parse(
        'MATCH sports_game WHERE home_team.name CONTAINS "Wolves" AND game_status = "final" '
        "RETURN name, home_score, away_score LIMIT 3"
    )
    assert len(query.conditions) == 2
    assert query.conditions[0].operator == "CONTAINS"
    assert query.returns == [("name",), ("home_score",), ("away_score",)]
    assert query.limit == 3


def test_parse_numeric_and_comparison_conditions():
    query = parse("MATCH stock WHERE stock_price > 100.5 RETURN *")
    assert query.conditions[0].operator == ">"
    assert query.conditions[0].value == pytest.approx(100.5)
    assert query.returns == [()]


def test_parse_call_query():
    call = parse('CALL HeadOfState("Canada")')
    assert isinstance(call, CallQuery)
    assert call.operator == "HeadOfState"
    assert call.arguments == ("Canada",)
    multi = parse('CALL Something("a", 3, bare)')
    assert multi.arguments == ("a", 3, "bare")


@pytest.mark.parametrize("bad_query", [
    "",
    "MATCH",
    "WHERE name = \"x\"",
    "MATCH person WHERE",
    "MATCH person WHERE name",
    "MATCH person WHERE name LIKE \"x\"",
    "MATCH person RETURN",
    "MATCH person LIMIT many",
    "MATCH person trailing garbage =",
    "CALL Op(",
])
def test_parse_rejects_malformed_queries(bad_query):
    with pytest.raises(KGQSyntaxError):
        parse(bad_query)


def test_query_render_roundtrip():
    text = 'MATCH country WHERE name = "Canada" AND population > 1000 RETURN head_of_state.name LIMIT 2'
    query = parse(text)
    assert parse(query.render()) == query


def test_virtual_operator_registry_expansion():
    registry = default_virtual_operators()
    assert "headofstate" in registry
    expanded = registry.expand(CallQuery("HeadOfState", ("Canada",)))
    assert expanded.entity_type == "country"
    assert expanded.conditions[0].value == "Canada"
    with pytest.raises(KGQSyntaxError):
        registry.expand(CallQuery("Nonexistent", ()))
    custom = VirtualOperatorRegistry()
    custom.register("TeamVenue", lambda team: Query(
        entity_type="sports_team",
        conditions=[Condition(("name",), "=", team)],
        returns=[("venue", "name")],
    ))
    assert custom.names() == ["teamvenue"]


def test_planner_pushes_down_name_equality():
    planner = QueryPlanner(default_virtual_operators())
    plan = planner.plan(parse('MATCH country WHERE name = "Canada" AND population > 5 RETURN name'))
    assert isinstance(plan.seed, IndexLookup)
    assert plan.seed.predicate_path == ("name",)
    assert len(plan.filters) == 1
    assert "IndexLookup" in plan.explain()[0]


def test_planner_falls_back_to_type_scan():
    planner = QueryPlanner()
    plan = planner.plan(parse('MATCH sports_game WHERE home_team.name CONTAINS "Wolves"'))
    assert isinstance(plan.seed, TypeScan)
    assert plan.seed.entity_type == "sports_game"
    assert len(plan.filters) == 1


def test_planner_expands_call_queries_and_validates():
    planner = QueryPlanner(default_virtual_operators())
    plan = planner.plan(parse('CALL MayorOf("Springfield")'))
    assert plan.query.entity_type == "city"
    with pytest.raises(KGQPlanError):
        planner.plan(Query(entity_type=""))


def test_planner_prefers_single_hop_equality_over_multi_hop():
    planner = QueryPlanner()
    query = parse('MATCH song WHERE performed_by.name = "X" AND genre = "pop"')
    plan = planner.plan(query)
    assert isinstance(plan.seed, IndexLookup)
    assert plan.seed.predicate_path == ("genre",)


def test_planner_cost_based_seed_picks_smallest_postings():
    sizes = {("year", "1999"): 1, ("genre", "pop"): 40, ("name", "x"): 15}
    planner = QueryPlanner(
        default_virtual_operators(),
        selectivity=lambda predicate, value: sizes.get((predicate, str(value).lower()), 0),
    )
    query = parse('MATCH song WHERE genre = "pop" AND year = 1999 AND name = "X"')
    plan = planner.plan(query)
    assert isinstance(plan.seed, IndexLookup)
    assert plan.seed.predicate_path == ("year",)          # cheapest postings list seeds
    assert len(plan.filters) == 2


def test_planner_cost_based_seed_ties_prefer_name_predicates():
    planner = QueryPlanner(
        default_virtual_operators(), selectivity=lambda predicate, value: 7
    )
    plan = planner.plan(parse('MATCH song WHERE genre = "pop" AND name = "X"'))
    assert plan.seed.predicate_path == ("name",)
    # Without an estimator the legacy heuristic also prefers name equality —
    # otherwise the last pushable condition wins, cost unexamined.
    legacy = QueryPlanner(default_virtual_operators())
    plan = legacy.plan(parse('MATCH song WHERE genre = "pop" AND year = 1999'))
    assert plan.seed.predicate_path == ("year",)


def test_planner_cost_based_seed_skips_non_pushable_conditions():
    planner = QueryPlanner(
        default_virtual_operators(), selectivity=lambda predicate, value: 0
    )
    plan = planner.plan(parse('MATCH song WHERE performed_by.name = "X" AND year > 3'))
    assert isinstance(plan.seed, TypeScan)                # nothing single-hop "="
    assert len(plan.filters) == 2
