"""Incremental maintenance of join-shaped views + distributed cross-view joins.

Two equivalence contracts, both property-tested over seeded sequences:

* **delta rules ≡ full rebuild** — a :class:`JoinViewDefinition` maintained
  through random add/update/rekey/delete/flush sequences stays row-identical
  to a from-scratch ``create`` of the same inputs, while the manager's
  counters prove the work went through ``apply_delta`` (zero maintenance
  ``full_rebuilds``) and the journal carries the **output-row** delta
  (``DeltaApplyResult``), so a journal consumer replaying from any LSN
  converges without resync.

* **distributed ≡ primary** — a cross-view join routed through
  ``QueryRouter.execute_join`` (broadcast and shuffle, forced both ways)
  returns results identical to primary-side ``join_results`` over the same
  artifacts, under replica kills and restarts mid-sequence.

The warehouse satellites ride along: ``Relation.from_columns`` ragged-column
rejection, ``hash_join`` missing-key rejection, and operator edge cases
(duplicate right keys, inner fan-out, empty group-by, distinct stability).

Sequence counts follow ``--runs-seeded`` (see ``conftest.py``);
``join_fleet_seed`` is capped like the other fleet-backed suites.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.analytics import JoinAccessPattern, Relation
from repro.engine.metadata import MetadataStore
from repro.engine.views import (
    JoinInput,
    JoinViewDefinition,
    ViewCatalog,
    ViewDefinition,
    ViewManager,
)
from repro.errors import (
    KGQPlanError,
    LiveGraphError,
    ServingError,
    StoreError,
    ViewError,
)
from repro.live.executor import (
    QueryExecutor,
    canonical_join_key,
    join_results,
)
from repro.live.index import LiveIndex, view_row_document
from repro.live.kgq import parse
from repro.live.planner import QueryPlanner
from repro.serving import InMemoryJournalBackend, JournalStore, ServingFleet


# ------------------------------------------------------------------ #
# warehouse operators (the join-input layer)
# ------------------------------------------------------------------ #
def test_from_columns_rejects_ragged_columns():
    with pytest.raises(StoreError) as excinfo:
        Relation.from_columns("r", {"a": [1, 2, 3], "b": [4, 5]})
    message = str(excinfo.value)
    assert "'r'" in message and "a=3" in message and "b=2" in message
    # equal lengths (including zero) still build
    assert len(Relation.from_columns("r", {"a": [], "b": []})) == 0
    assert Relation.from_columns("r", {"a": [1], "b": [2]}).rows == [
        {"a": 1, "b": 2}
    ]


def test_hash_join_rejects_rows_missing_the_join_key():
    left = Relation("orders", [{"sku": "a"}, {"qty": 2}])
    right = Relation("items", [{"sku": "a", "price": 5}])
    with pytest.raises(StoreError) as excinfo:
        left.hash_join(right, "sku", "sku")
    message = str(excinfo.value)
    assert "'orders'" in message and "row 1" in message and "'sku'" in message
    # the right side is validated too, on both build-side choices
    ragged_right = Relation("items", [{"price": 5}])
    for how in ("inner", "left"):
        with pytest.raises(StoreError):
            Relation("orders", [{"sku": "a"}]).hash_join(
                ragged_right, "sku", "sku", how=how
            )
    # a None key VALUE is legal and joins other None keys
    joined = Relation("l", [{"k": None, "x": 1}]).hash_join(
        Relation("r", [{"k": None, "y": 2}]), "k", "k"
    )
    assert joined.rows == [{"k": None, "x": 1, "y": 2}]


def test_left_join_fans_out_over_duplicate_right_keys():
    left = Relation("l", [{"k": 1, "x": "a"}, {"k": 2, "x": "b"}])
    right = Relation("r", [{"k": 1, "y": "p"}, {"k": 1, "y": "q"}])
    joined = left.hash_join(right, "k", "k", how="left")
    # k=1 fans out to both right rows; k=2 survives unmatched
    assert joined.rows == [
        {"k": 1, "x": "a", "y": "p"},
        {"k": 1, "x": "a", "y": "q"},
        {"k": 2, "x": "b"},
    ]


def test_inner_join_fan_out_multiplies_and_drops_misses():
    left = Relation("l", [{"k": 1, "x": i} for i in range(3)] + [{"k": 9, "x": 9}])
    right = Relation("r", [{"k": 1, "y": j} for j in range(4)])
    joined = left.hash_join(right, "k", "k")
    assert len(joined) == 3 * 4                       # k=9 dropped, k=1 multiplies
    assert all(row["k"] == 1 for row in joined.rows)
    # probe/build side choice is a plan detail, not a result change
    flipped = right.hash_join(left, "k", "k")
    assert len(flipped) == 12


def test_group_by_on_empty_relation_yields_no_groups():
    empty = Relation("e", [])
    grouped = empty.group_by(["k"], {"n": len, "total": lambda rows: sum(
        row.get("v", 0) for row in rows)})
    assert grouped.rows == []
    # and grouping by a column nobody has produces one None-keyed group
    grouped = Relation("r", [{"v": 1}, {"v": 2}]).group_by(["k"], {"n": len})
    assert grouped.rows == [{"k": None, "n": 2}]


def test_distinct_keeps_first_occurrence_order():
    rows = [{"a": 1}, {"a": 2}, {"a": 1}, {"a": 3}, {"a": 2}]
    assert Relation("r", rows).distinct().rows == [{"a": 1}, {"a": 2}, {"a": 3}]
    # value-sensitive, not repr-order-sensitive
    assert len(Relation("r", [{"a": 1, "b": 2}, {"b": 2, "a": 1}]).distinct()) == 1


# ------------------------------------------------------------------ #
# the access-pattern building block
# ------------------------------------------------------------------ #
def test_join_access_pattern_validation_and_membership():
    with pytest.raises(StoreError):
        JoinAccessPattern("", "k")
    with pytest.raises(StoreError):
        JoinAccessPattern("input", "")
    pattern = JoinAccessPattern("input", "city")
    with pytest.raises(StoreError):
        pattern.rebuild([{"city": "a"}])                     # no subject
    with pytest.raises(StoreError):
        pattern.rebuild([{"subject": "p1"}])                 # no key column
    assert pattern.rebuild([
        {"subject": "p1", "city": "a"},
        {"subject": "p1", "city": "b"},
        {"subject": "p2", "city": "a"},
    ]) == 3
    assert len(pattern) == 2 and pattern.contains("p1")
    assert pattern.subjects_for_keys(["a"]) == {"p1", "p2"}
    # replace returns the retracted and asserted key values (the probe sets)
    old, new = pattern.replace_subject_rows("p1", [{"subject": "p1", "city": "c"}])
    assert old == {"a", "b"} and new == {"c"}
    assert pattern.subjects_for_keys(["a"]) == {"p2"}
    # a row naming a different subject is a schema mistake
    with pytest.raises(StoreError):
        pattern.replace_subject_rows("p2", [{"subject": "px", "city": "a"}])
    # empty replacement retracts membership entirely
    assert pattern.replace_subject_rows("p2", []) == ({"a"}, set())
    assert not pattern.contains("p2")


# ------------------------------------------------------------------ #
# harness: a two-input model maintained by a JoinViewDefinition
# ------------------------------------------------------------------ #
CITY_POOL = [f"c{i}" for i in range(5)]


class JoinModel:
    """People (left, keyed by home city) and cities (right)."""

    def __init__(self):
        self.people: dict[str, dict] = {}
        self.cities: dict[str, dict] = {}

    def person_rows(self, subjects=None):
        pool = sorted(self.people) if subjects is None else [
            s for s in sorted(set(subjects)) if s in self.people
        ]
        return [
            {"subject": s, "home": self.people[s]["home"],
             "age": self.people[s]["age"]}
            for s in pool
        ]

    def city_rows(self, subjects=None):
        pool = sorted(self.cities) if subjects is None else [
            s for s in sorted(set(subjects)) if s in self.cities
        ]
        return [
            {"subject": s, "home": s, "population": self.cities[s]["population"]}
            for s in pool
        ]

    def subjects(self):
        return list(self.people) + list(self.cities)


def join_definition(model: JoinModel, name="person_city", how="left"):
    return JoinViewDefinition(
        name,
        JoinInput("people", "home",
                  lambda context, ids: model.person_rows(ids),
                  scope=lambda e: e.startswith("p")),
        JoinInput("cities", "home",
                  lambda context, ids: model.city_rows(ids),
                  scope=lambda e: e.startswith("c")),
        how=how,
    )


def build_join_harness(model: JoinModel, how="left"):
    catalog = ViewCatalog()
    definition = join_definition(model, how=how)
    catalog.register(definition)
    clock = {"lsn": 1}
    manager = ViewManager(
        catalog, engines={}, metadata=MetadataStore(),
        lsn_source=lambda: clock["lsn"], entity_source=model.subjects,
    )
    return definition, manager, clock


def seed_join_model(model: JoinModel, rng, people=None):
    for city in rng.sample(CITY_POOL, rng.randint(2, len(CITY_POOL))):
        model.cities[city] = {"population": rng.randint(1, 9) * 1000}
    count = people if people is not None else rng.randint(6, 15)
    for i in range(count):
        model.people[f"p{i:02d}"] = {
            "home": rng.choice(CITY_POOL + ["nowhere"]),
            "age": rng.randint(18, 80),
        }
    return count


# ------------------------------------------------------------------ #
# join-view construction validation
# ------------------------------------------------------------------ #
def test_join_view_definition_validation():
    model = JoinModel()
    people = JoinInput("people", "home", lambda c, ids: model.person_rows(ids))
    cities = JoinInput("cities", "home", lambda c, ids: model.city_rows(ids))
    with pytest.raises(ViewError):
        JoinViewDefinition("v", people, cities, how="outer")
    with pytest.raises(ViewError):
        JoinViewDefinition(
            "v", people,
            JoinInput("people", "home", lambda c, ids: []),  # same input name
        )
    with pytest.raises(ViewError):
        JoinInput("", "home", lambda c, ids: [])
    with pytest.raises(ViewError):
        JoinInput("people", "", lambda c, ids: [])
    with pytest.raises(ViewError):
        JoinInput("people", "home", loader="not-callable")
    # both-sided scopes combine into a view scope; one-sided stays unscoped
    assert JoinViewDefinition("v1", people, cities).scope is None
    scoped = JoinViewDefinition(
        "v2",
        JoinInput("people", "home", lambda c, ids: [],
                  scope=lambda e: e.startswith("p")),
        JoinInput("cities", "home", lambda c, ids: [],
                  scope=lambda e: e.startswith("c")),
    )
    assert scoped.scope("p01") and scoped.scope("c1") and not scoped.scope("x")


def test_join_view_create_and_basic_delta_round():
    model = JoinModel()
    model.cities["c0"] = {"population": 1000}
    model.people["p00"] = {"home": "c0", "age": 30}
    model.people["p01"] = {"home": "nowhere", "age": 40}
    definition, manager, clock = build_join_harness(model)
    manager.materialize()
    artifact = manager.artifact("person_city")
    assert artifact["p00"] == {
        "subject": "p00", "home": "c0", "age": 30, "population": 1000,
    }
    assert artifact["p01"] == {"subject": "p01", "home": "nowhere", "age": 40}
    assert definition.ivm_stats()["full_builds"] == 1
    # a right-side change journals the affected LEFT subject (output delta)
    lsn0 = manager.built_at_lsn("person_city")
    model.cities["c0"]["population"] = 2000
    clock["lsn"] += 1
    manager.enqueue(["c0"], lsn=clock["lsn"])
    manager.flush()
    net = manager.states["person_city"].journal.since(lsn0)
    assert set(net.updated) == {"p00"}
    assert "c0" not in net.changed
    assert manager.artifact("person_city")["p00"]["population"] == 2000
    assert definition.ivm_stats()["delta_rounds"] == 1
    assert manager.stats()["full_rebuilds"] == 0


def test_inner_join_view_drops_and_revives_unmatched_subjects():
    model = JoinModel()
    model.cities["c0"] = {"population": 1000}
    model.people["p00"] = {"home": "c0", "age": 30}
    model.people["p01"] = {"home": "nowhere", "age": 40}
    definition, manager, clock = build_join_harness(model, how="inner")
    manager.materialize()
    assert set(manager.artifact("person_city")) == {"p00"}
    # rekeying p01 onto a real city ADDS its output row through the delta path
    model.people["p01"]["home"] = "c0"
    clock["lsn"] += 1
    manager.enqueue(["p01"], lsn=clock["lsn"])
    manager.flush()
    assert set(manager.artifact("person_city")) == {"p00", "p01"}
    # deleting the city removes BOTH output rows, journaled as deletions
    lsn0 = manager.built_at_lsn("person_city")
    del model.cities["c0"]
    clock["lsn"] += 1
    manager.enqueue([], lsn=clock["lsn"], deleted_entity_ids=["c0"])
    manager.flush()
    assert manager.artifact("person_city") == {}
    net = manager.states["person_city"].journal.since(lsn0)
    assert set(net.deleted) == {"p00", "p01"}
    assert manager.stats()["full_rebuilds"] == 0


# ------------------------------------------------------------------ #
# the core IVM property: delta rules ≡ full rebuild, seeded
# ------------------------------------------------------------------ #
def test_join_view_delta_maintenance_matches_full_rebuild(ivm_seed):
    rng = random.Random(74000 + ivm_seed)
    how = rng.choice(["left", "inner"])
    model = JoinModel()
    counter = seed_join_model(model, rng)
    definition, manager, clock = build_join_harness(model, how=how)
    manager.materialize()
    replayed = dict(manager.artifact("person_city"))     # journal consumer copy
    replay_lsn = manager.built_at_lsn("person_city")

    def enqueue(changed=(), deleted=(), added=()):
        clock["lsn"] += 1
        manager.enqueue(changed, lsn=clock["lsn"], deleted_entity_ids=deleted,
                        added_entity_ids=added)

    for _ in range(rng.randint(8, 20)):
        op = rng.choices(
            ["add_person", "rekey", "age", "del_person",
             "add_city", "repop", "del_city", "flush"],
            weights=[15, 15, 10, 10, 8, 12, 8, 22],
        )[0]
        if op == "add_person":
            counter += 1
            eid = f"p{counter:02d}"
            model.people[eid] = {"home": rng.choice(CITY_POOL + ["nowhere"]),
                                 "age": rng.randint(18, 80)}
            enqueue([eid], added=[eid])
        elif op == "rekey" and model.people:
            eid = rng.choice(sorted(model.people))
            model.people[eid]["home"] = rng.choice(CITY_POOL + ["nowhere"])
            enqueue([eid])
        elif op == "age" and model.people:
            eid = rng.choice(sorted(model.people))
            model.people[eid]["age"] += 1
            enqueue([eid])
        elif op == "del_person" and model.people:
            eid = rng.choice(sorted(model.people))
            del model.people[eid]
            enqueue(deleted=[eid])
        elif op == "add_city":
            missing = sorted(set(CITY_POOL) - set(model.cities))
            if missing:
                city = rng.choice(missing)
                model.cities[city] = {"population": rng.randint(1, 9) * 1000}
                enqueue([city], added=[city])
        elif op == "repop" and model.cities:
            city = rng.choice(sorted(model.cities))
            model.cities[city]["population"] += 500
            enqueue([city])
        elif op == "del_city" and model.cities:
            city = rng.choice(sorted(model.cities))
            del model.cities[city]
            enqueue(deleted=[city])
        elif op == "flush":
            manager.flush()
            artifact = manager.artifact("person_city")
            # (1) row-identical to a from-scratch rebuild of the same inputs
            oracle = join_definition(model, name="oracle", how=how)
            assert artifact == oracle._create(None)
            # (2) a journal consumer replaying the OUTPUT deltas converges
            net = manager.states["person_city"].journal.since(replay_lsn)
            assert net is not None, "journal history must cover the gap"
            for subject in net.changed:
                replayed[subject] = artifact[subject]
            for subject in net.deleted:
                replayed.pop(subject, None)
            replay_lsn = manager.built_at_lsn("person_city")
            assert replayed == artifact

    manager.flush()
    artifact = manager.artifact("person_city")
    oracle = join_definition(model, name="oracle", how=how)
    assert artifact == oracle._create(None)
    # the work went through the delta rules, not rebuilds
    stats = manager.stats()
    assert stats["full_rebuilds"] == 0
    ivm = definition.ivm_stats()
    assert ivm["full_builds"] == 1                       # the initial create only
    assert ivm["delta_rounds"] == stats["incremental_applies"]
    assert len(definition._left_index) == len(model.people)
    assert len(definition._right_index) == len(model.cities)


def test_manager_maintenance_stats_mirror_into_metadata():
    model = JoinModel()
    seed_join_model(model, random.Random(5), people=8)
    definition, manager, clock = build_join_harness(model)
    manager.materialize()
    assert manager.metadata.serving_metrics("view_manager") == manager.stats()
    # a delta-only workload: counters move, the mirror follows, no rebuilds
    eid = sorted(model.people)[0]
    model.people[eid]["age"] += 1
    clock["lsn"] += 1
    manager.enqueue([eid], lsn=clock["lsn"])
    manager.flush()
    stats = manager.stats()
    assert stats["full_rebuilds"] == 0
    assert stats["incremental_applies"] == 1
    assert stats["delta_rows_journaled"] >= 1
    assert manager.metadata.serving_metrics("view_manager") == stats
    # an unaffected flush counts as noop maintenance, and still mirrors
    clock["lsn"] += 1
    manager.enqueue(["zz_unrelated"], lsn=clock["lsn"])
    manager.flush()
    stats = manager.stats()
    assert stats["full_rebuilds"] == 0
    assert manager.metadata.serving_metrics("view_manager") == stats


# ------------------------------------------------------------------ #
# distributed cross-view joins: fleet harness
# ------------------------------------------------------------------ #
TWO_VIEW_QUERIES = (
    ("MATCH person RETURN name, home, age", "MATCH city RETURN name, home, pop"),
    ("MATCH person WHERE age > 30 RETURN name, home",
     "MATCH city RETURN home, pop"),
)


class FleetModel:
    """Two row views (people / cities) served by one fleet."""

    def __init__(self):
        self.people: dict[str, dict] = {}
        self.cities: dict[str, dict] = {}

    def person_row(self, eid):
        fields = self.people[eid]
        return {"subject": eid, "name": f"Person {eid}", "home": fields["home"],
                "age": fields["age"], "types": ["person"]}

    def city_row(self, eid):
        fields = self.cities[eid]
        return {"subject": eid, "name": f"City {eid}", "home": eid,
                "pop": fields["pop"], "types": ["city"]}

    def subjects(self):
        return list(self.people) + list(self.cities)


def build_fleet_harness(model: FleetModel):
    catalog = ViewCatalog()

    def row_view(name, store, row_of, prefix):
        def create(context):
            return {eid: row_of(eid) for eid in sorted(store)}

        def apply_delta(context, delta):
            artifact = dict(context.artifact(name))
            for eid in delta.changed:
                if eid in store:
                    artifact[eid] = row_of(eid)
            for eid in delta.deleted:
                artifact.pop(eid, None)
            return artifact

        catalog.register(ViewDefinition(
            name, "analytics", create=create, apply_delta=apply_delta,
            scope=lambda e: e.startswith(prefix),
        ))

    row_view("people_rows", model.people, model.person_row, "p")
    row_view("city_rows", model.cities, model.city_row, "c")
    clock = {"lsn": 1}
    manager = ViewManager(
        catalog, engines={}, metadata=MetadataStore(),
        lsn_source=lambda: clock["lsn"], entity_source=model.subjects,
    )
    return manager, clock


def start_join_fleet(manager, num_replicas=3):
    fleet = ServingFleet(
        manager, num_replicas=num_replicas,
        journal_store=JournalStore(InMemoryJournalBackend()),
    ).start()
    fleet.serve_view("people_rows")
    fleet.serve_view("city_rows")
    assert fleet.drain()
    return fleet


def primary_join(manager, left_text, right_text, how, limit=None):
    """The primary-side oracle: execute both sides, join via join_results."""
    planner = QueryPlanner()
    sides = {}
    for view, text in (("people_rows", left_text), ("city_rows", right_text)):
        index = LiveIndex()
        lsn = manager.built_at_lsn(view)
        index.replace_feed(
            f"view:{view}",
            (view_row_document(view, f"view:{view}", row, lsn)
             for row in manager.artifact(view).values()),
            lsn,
        )
        sides[view] = QueryExecutor(index).execute(
            planner.plan(parse(text)), use_cache=False)
    return join_results(sides["people_rows"], sides["city_rows"],
                        "home", "home", how=how, limit=limit)


def assert_join_matches_primary(fleet, manager, how="left"):
    for left_text, right_text in TWO_VIEW_QUERIES:
        expected = primary_join(manager, left_text, right_text, how)
        want = [(row.entity_id, row.values) for row in expected.rows]
        # both physical strategies must agree with the logical result
        for strategy in ("broadcast", "shuffle"):
            result = fleet.join(left_text, "people_rows", right_text,
                                "city_rows", "home", "home", how=how,
                                strategy=strategy)
            got = [(row.entity_id, row.values) for row in result.rows]
            assert got == want, (left_text, strategy)


def seed_fleet_model(model: FleetModel, rng):
    for city in rng.sample(CITY_POOL, rng.randint(2, len(CITY_POOL))):
        model.cities[city] = {"pop": rng.randint(1, 9) * 1000}
    count = rng.randint(6, 14)
    for i in range(count):
        model.people[f"p{i:02d}"] = {"home": rng.choice(CITY_POOL + ["nowhere"]),
                                     "age": rng.randint(18, 80)}
    return count


# ------------------------------------------------------------------ #
# distributed join: the equivalence property under kills/restarts
# ------------------------------------------------------------------ #
def test_distributed_join_matches_primary_over_seeded_sequences(join_fleet_seed):
    rng = random.Random(88000 + join_fleet_seed)
    how = rng.choice(["left", "inner"])
    model = FleetModel()
    counter = seed_fleet_model(model, rng)
    manager, clock = build_fleet_harness(model)
    manager.materialize()
    fleet = start_join_fleet(manager)
    killed: list[str] = []

    def enqueue(changed=(), deleted=(), added=()):
        clock["lsn"] += 1
        manager.enqueue(changed, lsn=clock["lsn"], deleted_entity_ids=deleted,
                        added_entity_ids=added)

    try:
        for _ in range(rng.randint(6, 14)):
            op = rng.choices(
                ["add", "rekey", "repop", "delete", "flush", "kill", "restart"],
                weights=[16, 16, 12, 10, 28, 9, 9],
            )[0]
            if op == "add":
                counter += 1
                eid = f"p{counter:02d}"
                model.people[eid] = {"home": rng.choice(CITY_POOL + ["nowhere"]),
                                     "age": rng.randint(18, 80)}
                enqueue([eid], added=[eid])
            elif op == "rekey" and model.people:
                eid = rng.choice(sorted(model.people))
                model.people[eid]["home"] = rng.choice(CITY_POOL + ["nowhere"])
                enqueue([eid])
            elif op == "repop" and model.cities:
                city = rng.choice(sorted(model.cities))
                model.cities[city]["pop"] += 111
                enqueue([city])
            elif op == "delete" and model.people:
                eid = rng.choice(sorted(model.people))
                del model.people[eid]
                enqueue(deleted=[eid])
            elif op == "flush":
                manager.flush()
                assert fleet.drain()
                assert_join_matches_primary(fleet, manager, how)
            elif op == "kill" and len(killed) < 2:       # keep one replica alive
                name = rng.choice(sorted(set(fleet.replicas) - set(killed)))
                fleet.kill_replica(name)
                killed.append(name)
            elif op == "restart" and killed:
                fleet.restart_replica(killed.pop(rng.randrange(len(killed))))

        manager.flush()
        assert fleet.drain()
        assert_join_matches_primary(fleet, manager, how)
        stats = fleet.query_router.stats()
        assert stats["join_queries"] > 0
        assert stats["broadcast_joins"] + stats["shuffle_joins"] == stats["join_queries"]
    finally:
        fleet.stop()


def test_replica_death_mid_join_redispatches_both_strategies():
    rng = random.Random(17)
    model = FleetModel()
    seed_fleet_model(model, rng)
    manager, _ = build_fleet_harness(model)
    manager.materialize()
    left_text, right_text = TWO_VIEW_QUERIES[0]
    for method in ("join_fragment", "join_partition"):
        fleet = start_join_fleet(manager)
        try:
            victim = fleet.replicas["replica-1"]
            original = getattr(victim, method)

            def dying(*args, **kwargs):
                fleet.kill_replica("replica-1")          # crash mid-dispatch
                return original(*args, **kwargs)

            setattr(victim, method, dying)
            strategy = "broadcast" if method == "join_fragment" else "shuffle"
            result = fleet.join(left_text, "people_rows", right_text,
                                "city_rows", "home", "home", how="left",
                                strategy=strategy)
            expected = primary_join(manager, left_text, right_text, "left")
            assert [(row.entity_id, row.values) for row in result.rows] == \
                   [(row.entity_id, row.values) for row in expected.rows]
            assert fleet.query_router.fragment_retries >= 1
        finally:
            fleet.stop()


def test_join_strategy_selection_limit_and_counters():
    rng = random.Random(23)
    model = FleetModel()
    seed_fleet_model(model, rng)
    manager, _ = build_fleet_harness(model)
    manager.materialize()
    fleet = start_join_fleet(manager)
    left_text, right_text = TWO_VIEW_QUERIES[0]
    try:
        router = fleet.query_router
        # auto picks broadcast for a small right side, shuffle past the bar
        fleet.join(left_text, "people_rows", right_text, "city_rows",
                   "home", "home", broadcast_threshold=64)
        assert (router.broadcast_joins, router.shuffle_joins) == (1, 0)
        fleet.join(left_text, "people_rows", right_text, "city_rows",
                   "home", "home", broadcast_threshold=0)
        assert (router.broadcast_joins, router.shuffle_joins) == (1, 1)
        assert router.join_rows_broadcast > 0 and router.join_rows_shuffled > 0
        # the row-volume counters land in stats() and on the replicas
        stats = router.stats()
        assert stats["join_queries"] == 2
        assert sum(node.status()["joins_executed"]
                   for node in fleet.replicas.values()) > 0
        # limit bounds the FINAL joined result, identically to primary
        limited = fleet.join(left_text, "people_rows", right_text, "city_rows",
                             "home", "home", how="left", limit=3)
        expected = primary_join(manager, left_text, right_text, "left", limit=3)
        assert [(row.entity_id, row.values) for row in limited.rows] == \
               [(row.entity_id, row.values) for row in expected.rows]
        assert len(limited.rows) == 3
    finally:
        fleet.stop()


def test_join_side_validation_rejects_limit_reach_and_bad_options():
    model = FleetModel()
    seed_fleet_model(model, random.Random(29))
    manager, _ = build_fleet_harness(model)
    manager.materialize()
    fleet = start_join_fleet(manager, num_replicas=1)
    left_text, right_text = TWO_VIEW_QUERIES[0]
    try:
        # a side carrying LIMIT under-collects per partition: rejected
        for bad_side in ("left", "right"):
            args = [left_text, "people_rows", right_text, "city_rows"]
            args[0 if bad_side == "left" else 2] += " LIMIT 3"
            with pytest.raises(KGQPlanError) as excinfo:
                fleet.join(args[0], args[1], args[2], args[3], "home", "home")
            assert bad_side in str(excinfo.value)
        # REACH sides belong to the round protocol, not the join path
        with pytest.raises(KGQPlanError):
            fleet.join("MATCH person REACH knows* RETURN name", "people_rows",
                       right_text, "city_rows", "home", "home")
        # a side must project its join key
        with pytest.raises(LiveGraphError) as excinfo:
            fleet.join("MATCH person RETURN name", "people_rows",
                       right_text, "city_rows", "home", "home")
        assert "RETURN" in str(excinfo.value)
        with pytest.raises(ServingError):
            fleet.join(left_text, "people_rows", right_text, "city_rows",
                       "home", "home", how="outer")
        with pytest.raises(ServingError):
            fleet.join(left_text, "people_rows", right_text, "city_rows",
                       "home", "home", strategy="sideways")
    finally:
        fleet.stop()


def test_canonical_join_key_unifies_numeric_and_structured_values():
    # the shuffle partitioner and the hash table must agree on key equality:
    # numerically equal values share a canonical key...
    assert canonical_join_key(3) == canonical_join_key(3.0)
    assert canonical_join_key(0) == canonical_join_key(0.0)
    assert canonical_join_key(1) == canonical_join_key(True)
    assert canonical_join_key(2.5) == canonical_join_key(2.5)
    # ...distinct values never collide across types
    assert canonical_join_key(3) != canonical_join_key("3")
    assert canonical_join_key(None) != canonical_join_key("null")
    assert canonical_join_key(["a", 1]) == canonical_join_key(["a", 1])
    assert canonical_join_key(["a", 1]) != canonical_join_key(["a", 2])
