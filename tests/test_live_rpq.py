"""Regular path queries: syntax, automata, adjacency, and equivalence.

Three contracts, property-tested over seeded inputs:

* **bitmap-RPQ ≡ naive BFS** — executing a REACH plan over the incrementally
  maintained adjacency bitmaps (including the interval-encoding fast path for
  tree closures) returns exactly the rows *and witness paths* a from-scratch
  set-based BFS (:func:`repro.live.rpq.naive_rpq`) derives from the same
  documents (``rpq_seed`` sequences, scaled by ``--runs-seeded``);
* **distributed ≡ primary** — a REACH routed through the ``QueryRouter``'s
  round protocol over a replica fleet (seed scatter → frontier rounds →
  partition-wise gather, with mid-sequence kills and restarts) returns the
  same rows, values, ordering, and witnesses as primary-side execution over
  the same view feed (``rpq_fleet_seed`` sequences);
* **tenancy** — REACH widens a plan's type scope, so a type-sliced tenant can
  run ``REACH ... TO type`` inside its slice but an unbounded REACH (or a TO
  outside the slice) is refused at plan time.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import KGQPlanError, KGQSyntaxError
from repro.live.executor import QueryCache, QueryExecutor, QueryResultRow
from repro.live.index import LiveEntityDocument, LiveIndex, view_row_document
from repro.live.kgq import RpqAlt, RpqConcat, RpqLabel, RpqPlus, RpqStar, parse
from repro.live.planner import (
    PlanFragment,
    QueryPlanner,
    ensure_plan_within_types,
    plan_scope,
)
from repro.live.rpq import (
    compile_automaton,
    naive_rpq,
    single_label_closure,
)
from test_query_router import QueryModel, build_query_harness, start_fleet

# The rpq_seed / rpq_fleet_seed fixtures are parametrized by the repo-level
# conftest.py from --runs-seeded (rpq_fleet_seed capped: each sequence spins
# up fleet worker threads).


# ------------------------------------------------------------------ #
# syntax: parsing, rendering, precedence
# ------------------------------------------------------------------ #
def test_reach_clause_parses_and_renders_round_trip():
    text = 'MATCH district WHERE name = "Old Town" REACH part_of* TO region RETURN name'
    query = parse(text)
    assert isinstance(query.reach, RpqStar)
    assert query.reach_type == "region"
    assert query.render() == text
    # render() round-trips through the parser (cache keys depend on it)
    assert parse(query.render()).render() == query.render()


def test_rpq_expression_precedence_and_shapes():
    query = parse('MATCH person REACH mentor/(knows|^knows)+ TO person RETURN name')
    expr = query.reach
    assert isinstance(expr, RpqConcat)
    assert isinstance(expr.parts[0], RpqLabel) and expr.parts[0].predicate == "mentor"
    plus = expr.parts[1]
    assert isinstance(plus, RpqPlus) and isinstance(plus.inner, RpqAlt)
    inverse = plus.inner.options[1]
    assert isinstance(inverse, RpqLabel) and inverse.inverse
    assert expr.render() == "mentor/(knows|^knows)+"
    # alternation binds loosest, closures tightest
    alt = parse("MATCH t REACH a/b|c* RETURN name").reach
    assert isinstance(alt, RpqAlt)
    assert alt.options[0].render() == "a/b"
    assert isinstance(alt.options[1], RpqStar)


@pytest.mark.parametrize(
    "bad",
    [
        "MATCH t REACH RETURN name",                 # missing expression
        "MATCH t REACH part_of* TO RETURN name",     # TO without a type
        "MATCH t REACH (part_of RETURN name",        # unclosed group
        "MATCH t REACH ^ RETURN name",               # caret without a label
        "MATCH t REACH part_of | RETURN name",       # dangling alternation
    ],
)
def test_malformed_reach_clauses_raise(bad):
    with pytest.raises(KGQSyntaxError):
        parse(bad)


# ------------------------------------------------------------------ #
# automaton compilation
# ------------------------------------------------------------------ #
def test_automaton_shapes_and_empty_path_acceptance():
    star = compile_automaton(parse("MATCH t REACH part_of* RETURN name").reach)
    plus = compile_automaton(parse("MATCH t REACH part_of+ RETURN name").reach)
    assert star.matches_empty() and not plus.matches_empty()
    concat = compile_automaton(parse("MATCH t REACH a/b RETURN name").reach)
    assert not concat.matches_empty()
    # deterministic: the same expression compiles identically every time
    again = compile_automaton(parse("MATCH t REACH part_of* RETURN name").reach)
    assert again.transitions == star.transitions
    assert again.accepting == star.accepting


def test_single_label_closure_detection():
    assert single_label_closure(parse("MATCH t REACH p* RETURN name").reach) == ("p", False, True)
    assert single_label_closure(parse("MATCH t REACH ^p+ RETURN name").reach) == ("p", True, False)
    assert single_label_closure(parse("MATCH t REACH p/q RETURN name").reach) is None
    assert single_label_closure(parse("MATCH t REACH (p|q)* RETURN name").reach) is None


# ------------------------------------------------------------------ #
# adjacency maintenance: bitmaps and intervals follow mutations
# ------------------------------------------------------------------ #
def _doc(eid, etype="node", **facts):
    return LiveEntityDocument(
        entity_id=eid,
        entity_type=etype,
        name=eid.upper(),
        facts={k: v if isinstance(v, list) else [v] for k, v in facts.items()},
    )


def test_adjacency_follows_upserts_and_deletes():
    index = LiveIndex()
    index.upsert(_doc("a", part_of="b"))
    index.upsert(_doc("b", part_of="c"))
    index.upsert(_doc("c"))
    auto = compile_automaton(parse("MATCH node REACH part_of+ RETURN name").reach)
    evaluate = lambda seeds: sorted(  # noqa: E731 - tiny local closure
        QueryExecutor(index).rpq.evaluate("", seeds, auto)[0]
    )
    assert evaluate(["a"]) == ["b", "c"]
    # a delta re-routes the edge: a now hangs under c directly
    index.upsert(_doc("a", part_of="c"))
    assert evaluate(["a"]) == ["c"]
    # deleting the document clears its bits
    index.delete("b")
    assert evaluate(["a"]) == ["c"]
    assert evaluate(["b"]) == []


def test_interval_index_invalidated_by_shipped_mutations():
    index = LiveIndex()
    for i in range(1, 8):
        index.upsert(_doc(f"n{i}", part_of=f"n{i // 2}" if i > 1 else []))
    interval = index.adjacency.interval_index("", "part_of")
    assert interval is not None
    graph = index.adjacency.graph("")
    n1 = graph.ids["n1"]
    assert sorted(graph.names[o] for o in interval.descendants(n1)) == [
        f"n{i}" for i in range(1, 8)
    ]
    builds = index.adjacency.interval_builds
    # unchanged graph: the cached encoding is reused
    assert index.adjacency.interval_index("", "part_of") is interval
    assert index.adjacency.interval_builds == builds
    # a second parent breaks tree shape -> the encoding honestly refuses
    index.upsert(_doc("n7", part_of=["n3", "n5"]))
    assert index.adjacency.interval_index("", "part_of") is None
    # restoring tree shape rebuilds a fresh encoding
    index.upsert(_doc("n7", part_of="n3"))
    rebuilt = index.adjacency.interval_index("", "part_of")
    assert rebuilt is not None and rebuilt is not interval


def test_interval_index_refuses_cycles():
    index = LiveIndex()
    index.upsert(_doc("a", part_of="b"))
    index.upsert(_doc("b", part_of="a"))
    assert index.adjacency.interval_index("", "part_of") is None
    # the product path still terminates and answers honestly
    executor = QueryExecutor(index)
    auto = compile_automaton(parse("MATCH node REACH part_of+ RETURN name").reach)
    answers, _ = executor.rpq.evaluate("", ["a"], auto)
    assert sorted(answers) == ["a", "b"]


# ------------------------------------------------------------------ #
# seeded equivalence: bitmaps (and intervals) ≡ naive BFS
# ------------------------------------------------------------------ #
REACH_BATTERY = (
    'MATCH node WHERE kind = "seed" REACH part_of* RETURN name',
    'MATCH node WHERE kind = "seed" REACH part_of+ TO node RETURN name',
    'MATCH node WHERE kind = "seed" REACH ^part_of+ RETURN name',
    'MATCH node WHERE kind = "seed" REACH ^part_of* RETURN name LIMIT 5',
    'MATCH node WHERE kind = "seed" REACH knows RETURN name',
    'MATCH node WHERE kind = "seed" REACH knows/(part_of|^part_of) RETURN name',
    'MATCH node WHERE kind = "seed" REACH (knows|likes)+ RETURN name LIMIT 7',
    'MATCH node WHERE kind = "seed" REACH ^knows/likes* RETURN name',
    'MATCH node WHERE kind = "seed" REACH (part_of/part_of)* RETURN name',
)


def _random_graph_index(rng: random.Random) -> LiveIndex:
    """A seeded random graph: a part_of forest + random knows/likes edges.

    Some sequences deliberately break the forest shape (a node with two
    parents) so the interval fast path's honest fallback is exercised too.
    """
    index = LiveIndex()
    n = rng.randint(6, 18)
    break_tree = rng.random() < 0.3
    for i in range(n):
        facts: dict = {"kind": ["seed"] if rng.random() < 0.4 else ["other"]}
        if i > 0:
            parents = [f"v{rng.randrange(i):02d}"]
            if break_tree and rng.random() < 0.2:
                parents.append(f"v{rng.randrange(i):02d}")
            facts["part_of"] = sorted(set(parents))
        for predicate in ("knows", "likes"):
            if rng.random() < 0.5:
                facts[predicate] = [f"v{rng.randrange(n):02d}"]
        index.upsert(_doc(f"v{i:02d}", **facts))
    return index


def test_bitmap_rpq_matches_naive_bfs_over_seeded_graphs(rpq_seed):
    rng = random.Random(47000 + rpq_seed)
    index = _random_graph_index(rng)
    planner = QueryPlanner(selectivity=index.seed_selectivity)
    documents = [index.get(eid) for eid in sorted(index.kv.ids_by_type("node"))]
    queries = rng.sample(REACH_BATTERY, k=4)
    for text in queries:
        plan = planner.plan(parse(text))
        # the reference: per-document seed pipeline + set-based BFS
        reference_executor = QueryExecutor(index, vectorized=False)
        seeds, _ = reference_executor.match_documents(plan, apply_limit=False)
        automaton = compile_automaton(plan.reach.expression)
        answers, _ = naive_rpq(documents, [d.entity_id for d in seeds], automaton)
        expected = []
        for node in sorted(answers):
            document = index.get(node)
            if document is None:
                continue
            if (
                plan.reach.target_type
                and document.entity_type
                and document.entity_type != plan.reach.target_type
            ):
                continue
            expected.append((node, answers[node]))
        if plan.limit is not None:
            expected = expected[: plan.limit.limit]
        # both executor strategies must agree with the reference exactly
        for vectorized in (True, False):
            executor = QueryExecutor(index, vectorized=vectorized)
            result = executor.execute(plan, use_cache=False)
            got = [(row.entity_id, row.witness) for row in result.rows]
            assert got == expected, (text, vectorized)


def test_interval_fast_path_is_taken_and_agrees_with_product():
    rng = random.Random(99)
    index = LiveIndex()
    for i in range(40):
        facts = {"kind": ["seed"] if i % 7 == 0 else ["other"]}
        if i > 0:
            facts["part_of"] = [f"v{(i - 1) // 3:02d}"]
        index.upsert(_doc(f"v{i:02d}", **facts))
    planner = QueryPlanner(selectivity=index.seed_selectivity)
    for text in (
        'MATCH node WHERE kind = "seed" REACH part_of* RETURN name',
        'MATCH node WHERE kind = "seed" REACH ^part_of+ RETURN name',
    ):
        plan = planner.plan(parse(text))
        fast = QueryExecutor(index)
        fast_result = fast.execute(plan, use_cache=False)
        assert fast.rpq.interval_hits == 1 and fast.rpq.product_runs == 0
        # force the product path by stripping the closure marker
        slow = QueryExecutor(index)
        slow_answers, _ = slow.rpq.evaluate(
            "",
            [d.entity_id for d in slow.match_documents(plan, apply_limit=False)[0]],
            plan.reach.automaton,
            closure=None,
        )
        assert {row.entity_id: row.witness for row in fast_result.rows} == slow_answers
    del rng  # seeded layout documented above; nothing random-dependent below


# ------------------------------------------------------------------ #
# witnesses are canonical and survive the result cache
# ------------------------------------------------------------------ #
def test_witness_is_shortest_then_lexicographically_least():
    index = LiveIndex()
    # two paths a->z: a/knows->z (short) and a/knows->b/knows->z (long)
    index.upsert(_doc("a", knows=["b", "z"]))
    index.upsert(_doc("b", knows="z"))
    index.upsert(_doc("z"))
    executor = QueryExecutor(index)
    auto = compile_automaton(parse("MATCH node REACH knows+ RETURN name").reach)
    answers, _ = executor.rpq.evaluate("", ["a"], auto)
    assert answers["z"] == (("a", "knows", "z"),)
    # equal-length tie: the lexicographically least edge sequence wins
    index.upsert(_doc("a", knows=["b", "c"]))
    index.upsert(_doc("b", knows="z"))
    index.upsert(_doc("c", knows="z"))
    answers, _ = executor.rpq.evaluate("", ["a"], auto)
    assert answers["z"] == (("a", "knows", "b"), ("b", "knows", "z"))


def test_query_cache_preserves_witnesses():
    cache = QueryCache(capacity=4)
    witness = (("a", "part_of", "b"),)
    cache.put("k", [QueryResultRow("a", {"name": "A"}, witness=witness)])
    cached = cache.get("k")
    assert cached is not None and cached[0].witness == witness
    # cached REACH executions return the same witnesses as the first run
    index = LiveIndex()
    index.upsert(_doc("a", etype="seedling", part_of="b"))
    index.upsert(_doc("b"))
    executor = QueryExecutor(index)
    planner = QueryPlanner(selectivity=index.seed_selectivity)
    plan = planner.plan(parse("MATCH seedling REACH part_of+ RETURN name"))
    first = executor.execute(plan)
    second = executor.execute(plan)
    assert second.from_cache
    assert [(r.entity_id, r.witness) for r in second.rows] == [
        (r.entity_id, r.witness) for r in first.rows
    ]


# ------------------------------------------------------------------ #
# tenancy: REACH scope enforcement at plan time
# ------------------------------------------------------------------ #
def test_reach_widens_plan_scope_and_tenancy_enforces_it():
    planner = QueryPlanner()
    bounded = planner.plan(parse("MATCH district REACH part_of* TO region RETURN name"))
    assert plan_scope(bounded) == frozenset({"district", "region"})
    unbounded = planner.plan(parse("MATCH district REACH part_of* RETURN name"))
    assert plan_scope(unbounded) == frozenset({"district", "*"})
    # a slice holding both types admits the bounded plan
    ensure_plan_within_types(bounded, frozenset({"district", "region"}))
    # ...but not one missing the TO type
    with pytest.raises(KGQPlanError):
        ensure_plan_within_types(bounded, frozenset({"district"}))
    # an unbounded REACH is refused for every type-sliced caller, with a
    # message telling them to bound it
    with pytest.raises(KGQPlanError, match="TO"):
        ensure_plan_within_types(unbounded, frozenset({"district", "region"}))
    # an unrestricted caller (whole-KG slice) may run anything
    ensure_plan_within_types(unbounded, None)


def test_reach_plans_refuse_the_one_shot_fragment_path():
    model = QueryModel()
    model.entities["e00"] = {"type": "alpha", "value": 1}
    _, manager, _ = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager, num_replicas=1)
    try:
        plan = QueryPlanner().plan(parse("MATCH alpha REACH part_of* RETURN name"))
        fragment = PlanFragment(plan=plan, view_name="profile_rows", ranges=((0, 2**64),))
        replica = next(iter(fleet.replicas.values()))
        with pytest.raises(KGQPlanError, match="round protocol"):
            replica.execute_fragment(fragment)
    finally:
        fleet.stop()


# ------------------------------------------------------------------ #
# distributed ≡ primary over seeded fleet sequences
# ------------------------------------------------------------------ #
DISTRIBUTED_BATTERY = (
    'MATCH alpha REACH part_of* RETURN name, value',
    'MATCH alpha WHERE value > 20 REACH part_of+ TO beta RETURN name',
    'MATCH beta REACH ^part_of+ RETURN name LIMIT 6',
    'MATCH beta REACH knows/(part_of|^part_of) RETURN name',
    'MATCH alpha REACH (knows|part_of)+ RETURN name LIMIT 8',
)


class ReachQueryModel(QueryModel):
    """Rows carry a ``part_of`` forest and random ``knows`` edges."""

    def __init__(self, rng: random.Random):
        super().__init__()
        self.rng = rng
        self.edges: dict[str, dict[str, str]] = {}

    def add(self, eid: str, etype: str, value: int):
        self.entities[eid] = {"type": etype, "value": value}
        edges = {}
        others = sorted(set(self.entities) - {eid})
        if others and self.rng.random() < 0.8:
            edges["part_of"] = self.rng.choice(others)
        if others and self.rng.random() < 0.5:
            edges["knows"] = self.rng.choice(others)
        self.edges[eid] = edges

    def row(self, eid: str) -> dict:
        row = super().row(eid)
        row.update(self.edges.get(eid, {}))
        return row


def primary_reach_results(manager, queries):
    """Execute *queries* primary-side over a fresh feed of the artifact."""
    index = LiveIndex()
    lsn = manager.built_at_lsn("profile_rows")
    index.replace_feed(
        "view:profile_rows",
        (
            view_row_document("profile_rows", "view:profile_rows", row, lsn)
            for row in manager.artifact("profile_rows").values()
        ),
        lsn,
    )
    executor = QueryExecutor(index)
    planner = QueryPlanner(selectivity=index.seed_selectivity)
    results = {}
    for text in queries:
        result = executor.execute(
            planner.plan(parse(text)), use_cache=False, reach_feed="view:profile_rows"
        )
        results[text] = [(row.entity_id, row.values, row.witness) for row in result.rows]
    return results


def assert_fleet_reach_matches_primary(fleet, manager):
    expected = primary_reach_results(manager, DISTRIBUTED_BATTERY)
    for text, rows in expected.items():
        result = fleet.query(text, "profile_rows")
        got = [(row.entity_id, row.values, row.witness) for row in result.rows]
        assert got == rows, text


def test_distributed_reach_matches_primary_over_seeded_sequences(rpq_fleet_seed):
    rng = random.Random(52000 + rpq_fleet_seed)
    model = ReachQueryModel(rng)
    counter = rng.randint(8, 16)
    for i in range(counter):
        model.add(f"e{i:02d}", rng.choice(("alpha", "beta")), rng.randint(0, 99))
    _, manager, clock = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager)
    killed: list[str] = []

    def enqueue(changed=(), deleted=(), added=()):
        clock["lsn"] += 1
        manager.enqueue(
            changed, lsn=clock["lsn"], deleted_entity_ids=deleted, added_entity_ids=added
        )

    try:
        for _ in range(rng.randint(6, 14)):
            op = rng.choices(
                ["add", "rewire", "delete", "flush", "kill", "restart"],
                weights=[18, 22, 12, 28, 8, 12],
            )[0]
            if op == "add":
                counter += 1
                eid = f"e{counter:02d}"
                model.add(eid, rng.choice(("alpha", "beta")), rng.randint(0, 99))
                enqueue([eid], added=[eid])
            elif op == "rewire" and model.entities:
                eid = rng.choice(sorted(model.entities))
                others = sorted(set(model.entities) - {eid})
                if others:
                    model.edges[eid]["part_of"] = rng.choice(others)
                    enqueue([eid])
            elif op == "delete" and len(model.entities) > 2:
                eid = rng.choice(sorted(model.entities))
                del model.entities[eid]
                model.edges.pop(eid, None)
                enqueue(deleted=[eid])
            elif op == "flush":
                manager.flush()
                assert fleet.drain()
                assert_fleet_reach_matches_primary(fleet, manager)
            elif op == "kill" and len(killed) < 2:       # keep one replica alive
                name = rng.choice(sorted(set(fleet.replicas) - set(killed)))
                fleet.kill_replica(name)
                killed.append(name)
            elif op == "restart" and killed:
                fleet.restart_replica(killed.pop(rng.randrange(len(killed))))
        manager.flush()
        assert fleet.drain()
        assert_fleet_reach_matches_primary(fleet, manager)
        stats = fleet.query_router.stats()
        assert stats["reach_queries"] > 0
    finally:
        fleet.stop()


def test_replica_death_mid_reach_re_dispatches_to_survivors():
    rng = random.Random(11)
    model = ReachQueryModel(rng)
    for i in range(10):
        model.add(f"e{i:02d}", "alpha", i * 10)
    _, manager, _ = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager, num_replicas=3)
    try:
        expected = primary_reach_results(manager, DISTRIBUTED_BATTERY[:1])
        # the victim dies *between* partitioning and its seed dispatch: the
        # first seed call kills it, so the router must re-partition its share
        victim_name = sorted(fleet.replicas)[0]
        victim = fleet.replicas[victim_name]
        original = victim.reach_seed_fragment

        def dies_on_first_seed(fragment, vectorized=None):
            victim.kill()
            return original(fragment, vectorized=vectorized)

        victim.reach_seed_fragment = dies_on_first_seed
        result = fleet.query(DISTRIBUTED_BATTERY[0], "profile_rows")
        got = [(row.entity_id, row.values, row.witness) for row in result.rows]
        assert got == expected[DISTRIBUTED_BATTERY[0]]
        assert fleet.query_router.fragment_retries >= 1
    finally:
        fleet.stop()
