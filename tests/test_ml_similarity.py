"""Tests for the deterministic similarity library (repro.ml.similarity)."""

import pytest

from repro.ml import similarity as sim


def test_normalize_and_tokens():
    assert sim.normalize_string("  Hello   World ") == "hello world"
    assert sim.normalize_string(None) == ""
    assert sim.tokens("The Quick, Brown-Fox!") == ["the", "quick", "brown", "fox"]


def test_qgrams_padding():
    assert sim.qgrams("abc", q=2) == ["#a", "ab", "bc", "c#"]
    assert sim.qgrams("", q=3) == []


def test_levenshtein_distance_and_similarity():
    assert sim.levenshtein_distance("kitten", "sitting") == 3
    assert sim.levenshtein_similarity("kitten", "kitten") == 1.0
    assert sim.levenshtein_similarity("kitten", "sitting") == pytest.approx(1 - 3 / 7)
    assert sim.levenshtein_similarity("", "abc") == 0.0


def test_jaro_winkler_prefers_shared_prefix():
    assert sim.jaro_winkler_similarity("robert", "robert") == 1.0
    martha = sim.jaro_winkler_similarity("martha", "marhta")
    assert martha > 0.9
    assert sim.jaro_winkler_similarity("abcd", "zyxw") < 0.3
    # prefix boost: "rober" closer to "robert" than "tober"
    assert sim.jaro_winkler_similarity("robert", "roberta") > sim.jaro_winkler_similarity(
        "robert", "tobert"
    )


def test_hamming_similarity():
    assert sim.hamming_similarity("abc", "abd") == pytest.approx(2 / 3)
    assert sim.hamming_similarity("abc", "") == 0.0


def test_jaccard_and_overlap():
    assert sim.jaccard_similarity("the dark knight", "dark knight rises") == pytest.approx(2 / 4)
    assert sim.overlap_coefficient("the dark knight", "dark knight") == 1.0
    assert sim.jaccard_similarity("", "x") == 0.0


def test_qgram_and_cosine_similarity_tolerate_typos():
    assert sim.qgram_similarity("washington", "washingtno") > 0.6
    assert sim.cosine_qgram_similarity("washington", "washingtno") > 0.6
    assert sim.qgram_similarity("abc", "xyz") == 0.0


def test_monge_elkan_handles_token_reordering():
    assert sim.monge_elkan_similarity("smith, robert", "robert smith") > 0.9


def test_set_similarity():
    assert sim.set_similarity(["pop", "rock"], ["Rock", "jazz"]) == pytest.approx(1 / 3)
    assert sim.set_similarity([], ["x"]) == 0.0


def test_numeric_similarity():
    assert sim.numeric_similarity(100, 100) == 1.0
    assert sim.numeric_similarity(100, 104, tolerance=0.1) > 0.5
    assert sim.numeric_similarity(100, 200, tolerance=0.1) == 0.0
    assert sim.numeric_similarity("abc", 1) == 0.0


def test_year_similarity_extracts_years_from_dates():
    assert sim.year_similarity("1990-04-01", "1990") == 1.0
    assert sim.year_similarity("1990", "1992", horizon=5) == pytest.approx(0.6)
    assert sim.year_similarity("no year", "1990") == 0.0


def test_exact_similarity():
    assert sim.exact_similarity("The Beatles", "the  beatles") == 1.0
    assert sim.exact_similarity("a", "b") == 0.0


def test_soundex_codes_and_similarity():
    assert sim.soundex("Robert") == sim.soundex("Rupert")
    assert sim.soundex_similarity("Robert", "Rupert") == 1.0
    assert sim.soundex_similarity("Robert", "Alice") == 0.0
    assert sim.soundex("") == ""


def test_similarity_profile_covers_registry():
    profile = sim.similarity_profile("Robert Smith", "Bob Smith")
    assert set(profile).issubset(set(sim.SIMILARITY_FUNCTIONS))
    assert all(0.0 <= value <= 1.0 for value in profile.values())


@pytest.mark.parametrize("name,function", sorted(sim.SIMILARITY_FUNCTIONS.items()))
def test_all_functions_bounded_and_handle_none(name, function):
    assert 0.0 <= function("alpha beta", "alpha gamma") <= 1.0
    assert function(None, "x") == 0.0
