"""Tests for correlation clustering resolution (repro.construction.clustering)."""

from repro.construction.clustering import (
    ClusteringConfig,
    CorrelationClustering,
    build_linkage_graph,
    materialize_clusters,
)
from repro.construction.matching import ScoredPair
from repro.construction.pairs import CandidatePair
from repro.construction.records import LinkableRecord


def record(record_id, name="X", is_kg=False):
    return LinkableRecord(record_id=record_id, entity_type="person",
                          properties={"name": [name]}, is_kg=is_kg)


def scored(left, right, probability):
    return ScoredPair(CandidatePair(left, right), probability)


def test_build_linkage_graph_thresholds_edges():
    a, b, c = record("a"), record("b"), record("c")
    graph = build_linkage_graph(
        [scored(a, b, 0.95), scored(b, c, 0.1), scored(a, c, 0.5)],
        ClusteringConfig(match_threshold=0.9, non_match_threshold=0.2),
    )
    assert "b" in graph.positive["a"]
    assert "c" in graph.negative["b"]
    assert "c" not in graph.positive["a"] and "c" not in graph.negative["a"]
    assert set(graph.node_ids()) == {"a", "b", "c"}


def test_clustering_groups_positive_components():
    a, b, c, d = record("a"), record("b"), record("c"), record("d")
    graph = build_linkage_graph(
        [scored(a, b, 0.95), scored(b, c, 0.95), scored(c, d, 0.05)],
    )
    clusters = CorrelationClustering().cluster(graph)
    cluster_of = {}
    for index, cluster in enumerate(clusters):
        for member in cluster:
            cluster_of[member] = index
    assert cluster_of["a"] == cluster_of["b"] == cluster_of["c"]
    assert cluster_of["d"] != cluster_of["a"]


def test_negative_edges_block_merging():
    a, b, c = record("a"), record("b"), record("c")
    # a-b and a-c look like matches but b-c is a strong non-match.
    graph = build_linkage_graph(
        [scored(a, b, 0.95), scored(a, c, 0.95), scored(b, c, 0.05)],
    )
    clusters = CorrelationClustering().cluster(graph)
    cluster_of = {member: index for index, cluster in enumerate(clusters) for member in cluster}
    assert cluster_of["b"] != cluster_of["c"]


def test_single_kg_entity_constraint_splits_clusters():
    kg1, kg2 = record("kg:1", is_kg=True), record("kg:2", is_kg=True)
    s1, s2 = record("src:1"), record("src:2")
    graph = build_linkage_graph(
        [
            scored(s1, kg1, 0.95),
            scored(s2, kg2, 0.95),
            scored(s1, s2, 0.95),      # glue that would merge the two KG entities
        ],
    )
    clusters = CorrelationClustering().cluster(graph)
    for cluster in clusters:
        kg_members = [m for m in cluster if m.startswith("kg:")]
        assert len(kg_members) <= 1
    materialized = materialize_clusters(clusters, graph)
    with_kg = [c for c in materialized if c.kg_record is not None]
    assert len(with_kg) == 2
    # Every source record ends up in exactly one cluster.
    all_sources = [r.record_id for c in materialized for r in c.source_records]
    assert sorted(all_sources) == ["src:1", "src:2"]


def test_isolated_records_become_singletons():
    a = record("a")
    graph = build_linkage_graph([], extra_records=[a])
    clusters = CorrelationClustering().cluster(graph)
    assert clusters == [{"a"}]


def test_disagreement_objective():
    a, b, c = record("a"), record("b"), record("c")
    graph = build_linkage_graph([scored(a, b, 0.95), scored(a, c, 0.05)])
    perfect = [{"a", "b"}, {"c"}]
    bad = [{"a", "c"}, {"b"}]
    assert graph.disagreement(perfect) == 0
    assert graph.disagreement(bad) == 2


def test_clustering_is_deterministic_for_fixed_seed():
    records = [record(f"r{i}") for i in range(6)]
    pairs = [scored(records[i], records[i + 1], 0.95) for i in range(5)]
    graph = build_linkage_graph(pairs)
    first = CorrelationClustering(ClusteringConfig(seed=5)).cluster(graph)
    second = CorrelationClustering(ClusteringConfig(seed=5)).cluster(graph)
    assert first == second
