"""Property suite for staged parallel construction (Section 2.4, Figure 5).

Seeded randomized multi-source delta sequences are consumed twice — once
through the classic chained sequential path, once through the
:class:`ParallelConstructionScheduler` batch path with a worker pool — and
the suite asserts **byte-identical equivalence**: triple-store contents
(facts and provenance), link table, per-payload report summaries, classified
entity deltas, and the Figure 12 growth series must all match exactly.

The sequence count scales with ``--runs-seeded`` like the view-invariant
suite (capped proportionally, see the repo conftest).  The same module hosts
the regression tests for the satellite fixes: per-source failure isolation in
batch consumption, fusion-commit-time growth clocks, plan validation /
replanning accounting, and the classified construction→views→serving delta
path with the store re-diff provably not invoked.
"""

from __future__ import annotations

import random

import pytest

from repro import SagaPlatform
from repro.construction import (
    IncrementalConstructor,
    KnowledgeConstructionPipeline,
)
from repro.construction.fusion import Fusion
from repro.engine.agents import AgentCoordinator
from repro.errors import ConstructionBatchError
from repro.model import default_ontology
from repro.model.delta import SourceDelta
from repro.model.entity import SourceEntity

# The construct_seed fixture is parametrized by the repo-level conftest.py
# from --runs-seeded (with a proportional cap, like the other heavy suites).

# ------------------------------------------------------------------ #
# randomized delta-sequence harness
# ------------------------------------------------------------------ #
TYPES = ("music_artist", "movie", "sports_team", "company")
NAME_STEMS = (
    "Echo Valley", "Blue Harbor", "Iron Crest", "Silver Lining",
    "Neon Skyline", "Golden Mile", "Velvet Coast", "Paper Lantern",
)
LABELS = ("Moonrise Records", "Northside Audio", "Cadence House")


def _make_entity(rng: random.Random, source_id: str, entity_type: str, index: int) -> SourceEntity:
    """One synthetic aligned source entity (names shared across sources)."""
    stem = NAME_STEMS[index % len(NAME_STEMS)]
    name = stem if rng.random() < 0.7 else f"{stem} {rng.choice(('Band', 'Group', 'Co'))}"
    properties: dict[str, object] = {
        "name": name,
        "genre": rng.choice(["pop", "rock", "jazz"]),
    }
    if entity_type == "music_artist" and rng.random() < 0.4:
        # Reference predicate: exercises object resolution (and its
        # deterministic entity minting) at the barrier.
        properties["record_label"] = rng.choice(LABELS)
    if rng.random() < 0.3:
        properties["popularity"] = rng.randint(1, 100)
    return SourceEntity(
        entity_id=f"{source_id}:{entity_type}/{index}",
        entity_type=entity_type if rng.random() < 0.9 else "",
        properties=properties,
        source_id=source_id,
        trust=0.8,
    )


def _mutate(rng: random.Random, entity: SourceEntity) -> SourceEntity:
    clone = entity.copy()
    clone.properties["genre"] = rng.choice(["pop", "rock", "jazz", "folk"])
    if rng.random() < 0.3:
        clone.properties["name"] = f"{clone.properties['name']} II"
    if not clone.entity_type and rng.random() < 0.5:
        # An untyped entity gaining a type mid-sequence leaves every snapshot
        # view it used to sit in — the transition that must poison plan
        # validation (regression coverage for the untyped→typed case).
        clone.entity_type = rng.choice(TYPES)
    return clone


def build_batches(seed: int) -> list[list[SourceDelta]]:
    """Randomized batches of multi-source deltas (same for any consumer)."""
    rng = random.Random(77_000 + seed)
    num_sources = rng.randint(2, 4)
    sources = []
    for s in range(num_sources):
        source_id = f"src{s}"
        # Some runs give sources disjoint type blocks (plans commit as
        # prepared), others overlap on purpose (plans must replan).
        if rng.random() < 0.5:
            source_types = [TYPES[s % len(TYPES)]]
        else:
            source_types = rng.sample(TYPES, rng.randint(1, 2))
        entities = [
            _make_entity(rng, source_id, rng.choice(source_types), i)
            for i in range(rng.randint(3, 7))
        ]
        sources.append((source_id, entities))

    batches: list[list[SourceDelta]] = []
    first = [
        SourceDelta.initial(source_id, entities, timestamp=1)
        for source_id, entities in sources
    ]
    rng.shuffle(first)
    batches.append(first)

    for round_number in range(rng.randint(0, 2)):
        batch = []
        for source_id, entities in sources:
            if rng.random() < 0.35:
                continue
            delta = SourceDelta(source_id=source_id, to_timestamp=2 + round_number)
            for entity in entities:
                roll = rng.random()
                if roll < 0.25:
                    delta.updated.append(_mutate(rng, entity))
                elif roll < 0.35:
                    delta.deleted.append(entity.copy())
                elif roll < 0.45:
                    volatile = entity.copy()
                    volatile.properties = {"popularity": rng.randint(1, 100)}
                    delta.volatile.append(volatile)
            if rng.random() < 0.3:
                fresh = _make_entity(
                    rng, source_id, rng.choice(TYPES), 100 + round_number
                )
                delta.added.append(fresh)
            if not delta.is_empty():
                batch.append(delta)
        if batch:
            batches.append(batch)
    return batches


def store_rows(store) -> list[tuple]:
    """Canonical store content: every fact with its full provenance."""
    return store.canonical_rows()


# ------------------------------------------------------------------ #
# the equivalence property
# ------------------------------------------------------------------ #
def test_parallel_equals_sequential(construct_seed):
    """Parallel batch construction is byte-identical to chained sequential."""
    ontology = default_ontology()
    rng = random.Random(31_000 + construct_seed)
    batches = build_batches(construct_seed)

    sequential = KnowledgeConstructionPipeline(ontology)
    for batch in batches:
        for delta in batch:
            sequential.consume_delta(delta)

    workers = rng.choice([2, 3, 4])
    parallel = KnowledgeConstructionPipeline(ontology, max_workers=workers)
    with parallel.scheduler:
        for batch in batches:
            parallel.consume_many(batch)

    assert store_rows(parallel.store) == store_rows(sequential.store)
    assert parallel.link_table == sequential.link_table
    assert [r.summary() for r in parallel.reports] == [
        r.summary() for r in sequential.reports
    ]
    assert [r.entity_delta for r in parallel.reports] == [
        r.entity_delta for r in sequential.reports
    ]
    assert parallel.growth.series() == sequential.growth.series()
    # Plan accounting: every block either committed as prepared or replanned.
    stats = parallel.scheduler.last_batch
    assert stats is not None
    assert stats.plans_reused + stats.plans_replanned >= 0
    assert stats.blocks == len(stats.block_seconds)


@pytest.mark.parametrize("clock_seed", range(5))
def test_parallel_commit_clock_is_deterministic(clock_seed):
    """Growth clocks depend only on commit order, not on scheduling."""
    ontology = default_ontology()
    batches = build_batches(clock_seed)
    runs = []
    for workers in (None, 2, 4):
        pipeline = KnowledgeConstructionPipeline(ontology, max_workers=workers)
        with pipeline.scheduler:
            for batch in batches:
                pipeline.consume_many(batch)
        runs.append([
            (r.commit_clock, r.source_id, g.fact_count)
            for r, g in zip(pipeline.reports, pipeline.growth.points)
        ])
    assert runs[0] == runs[1] == runs[2]
    assert [clock for clock, _, _ in runs[0]] == list(range(1, len(runs[0]) + 1))


# ------------------------------------------------------------------ #
# plan validation / reuse
# ------------------------------------------------------------------ #
def _initial_delta(source_id: str, entity_type: str, names: list[str]) -> SourceDelta:
    entities = [
        SourceEntity(
            entity_id=f"{source_id}:{entity_type}/{i}",
            entity_type=entity_type,
            properties={"name": name},
            source_id=source_id,
            trust=0.8,
        )
        for i, name in enumerate(names)
    ]
    return SourceDelta.initial(source_id, entities, timestamp=1)


def test_disjoint_type_blocks_commit_as_prepared():
    """Type-disjoint sources never conflict: every plan commits as prepared."""
    ontology = default_ontology()
    pipeline = KnowledgeConstructionPipeline(ontology, max_workers=4)
    batch = [
        _initial_delta("musicdb", "music_artist", ["Echo Valley", "Blue Harbor"]),
        _initial_delta("moviedb", "movie", ["Iron Crest", "Silver Lining"]),
        _initial_delta("sportsdb", "sports_team", ["Golden Mile", "Velvet Coast"]),
        _initial_delta("corpdb", "company", ["Paper Lantern", "Neon Skyline"]),
    ]
    with pipeline.scheduler:
        pipeline.consume_many(batch)
    stats = pipeline.scheduler.last_batch
    # The first commit can never be invalidated; the remaining type-disjoint
    # blocks must all have survived validation too.
    assert stats.plans_reused == 4
    assert stats.plans_replanned == 0


def test_same_type_blocks_replan_at_the_barrier():
    """Same-type sources conflict: later blocks replan serially — and still
    produce exactly the sequential outcome (cross-source dedup included)."""
    ontology = default_ontology()
    pipeline = KnowledgeConstructionPipeline(ontology, max_workers=4)
    batch = [
        _initial_delta("musicdb", "music_artist", ["Echo Valley", "Blue Harbor"]),
        _initial_delta("wiki", "music_artist", ["Echo Valley", "Iron Crest"]),
    ]
    with pipeline.scheduler:
        pipeline.consume_many(batch)
    stats = pipeline.scheduler.last_batch
    assert stats.plans_reused == 1
    assert stats.plans_replanned == 1
    # The shared artist must have been linked across sources, exactly as the
    # sequential chain would: one KG id for both sources' "Echo Valley".
    kg_ids = {
        pipeline.link_table["musicdb:music_artist/0"],
        pipeline.link_table["wiki:music_artist/0"],
    }
    assert len(kg_ids) == 1


def test_typing_an_untyped_entity_poisons_stale_plans():
    """An untyped entity sits in *every* KG view; a commit that gives it a
    type changes every snapshot view, so later prepared plans must replan —
    reusing them diverges from sequential (regression for the untyped→typed
    validation gap)."""
    ontology = default_ontology()

    def batch_for(pipeline):
        # Seed: an alive, untyped entity named "Iron Crest" (the shared genre
        # pushes the matcher over the positive-edge threshold for same-named
        # records, so the untyped record below links to it while it is in
        # view).
        pipeline.consume_delta(SourceDelta.initial("seed", [SourceEntity(
            entity_id="seed:thing/0", entity_type="",
            properties={"name": "Iron Crest", "genre": "rock"}, source_id="seed", trust=0.8,
        )], timestamp=1))
        # Batch: delta A is the seed source re-publishing the entity *with a
        # type* (known-updated path: retract + re-assert types the KG
        # subject, which removes it from every view whose filter its new
        # type fails); delta B carries an untyped record of the same name
        # whose snapshot view still contained the entity.
        delta_a = SourceDelta(source_id="seed", updated=[SourceEntity(
            entity_id="seed:thing/0", entity_type="music_artist",
            properties={"name": "Iron Crest", "genre": "rock"}, source_id="seed", trust=0.8,
        )], to_timestamp=2)
        delta_b = SourceDelta.initial("b", [
            SourceEntity(entity_id="b:m/0", entity_type="movie",
                         properties={"name": "Paper Lantern"}, source_id="b", trust=0.8),
            SourceEntity(entity_id="b:y/0", entity_type="",
                         properties={"name": "Iron Crest", "genre": "rock"}, source_id="b", trust=0.8),
        ], timestamp=2)
        return [delta_a, delta_b]

    sequential = KnowledgeConstructionPipeline(ontology)
    for delta in batch_for(sequential):
        sequential.consume_delta(delta)

    parallel = KnowledgeConstructionPipeline(ontology, max_workers=2)
    with parallel.scheduler:
        parallel.consume_many(batch_for(parallel))

    assert parallel.link_table == sequential.link_table
    assert store_rows(parallel.store) == store_rows(sequential.store)


# ------------------------------------------------------------------ #
# satellite: per-source failure isolation
# ------------------------------------------------------------------ #
def test_batch_isolates_per_source_failures(monkeypatch):
    """One failing delta no longer aborts the batch: the rest keep fusing and
    an aggregate error carrying every report is raised at the end."""
    ontology = default_ontology()
    pipeline = KnowledgeConstructionPipeline(ontology, max_workers=2)

    original = Fusion.fuse_added

    def explosive(self, store, triples_by_subject, same_as=()):
        if any(subject_triples and subject_triples[0].provenance.sources == ["faulty"]
               for subject_triples in triples_by_subject.values()):
            raise RuntimeError("synthetic fusion failure")
        return original(self, store, triples_by_subject, same_as=same_as)

    monkeypatch.setattr(Fusion, "fuse_added", explosive)

    batch = [
        _initial_delta("musicdb", "music_artist", ["Echo Valley"]),
        _initial_delta("faulty", "movie", ["Iron Crest"]),
        _initial_delta("corpdb", "company", ["Paper Lantern"]),
    ]
    with pytest.raises(ConstructionBatchError) as excinfo:
        with pipeline.scheduler:
            pipeline.consume_many(batch)
    error = excinfo.value
    assert len(error.reports) == 3
    assert [r.error is None for r in error.reports] == [True, False, True]
    assert "RuntimeError" in error.reports[1].error
    assert [source_id for source_id, _ in error.failures] == ["faulty"]
    # The surviving sources fused and were recorded; the failed one consumed
    # no growth clock tick.
    assert [r.source_id for r in pipeline.reports] == ["musicdb", "corpdb"]
    assert [r.commit_clock for r in pipeline.reports] == [1, 2]
    assert "musicdb:music_artist/0" in pipeline.link_table
    assert "corpdb:company/0" in pipeline.link_table
    # Failure isolation is per-source, not transactional (matching a failed
    # sequential consume): the faulty source may have linked, but nothing of
    # it reached the store — fusion is where the store mutates.
    faulty_kg_id = pipeline.link_table.get("faulty:movie/0")
    if faulty_kg_id is not None:
        assert not pipeline.store.facts_about(faulty_kg_id)


def test_sequential_chain_still_raises_immediately(monkeypatch):
    """Single-delta consumption keeps its fail-fast contract."""
    ontology = default_ontology()
    constructor = IncrementalConstructor(ontology)

    def explosive(self, store, triples_by_subject, same_as=()):
        raise RuntimeError("synthetic fusion failure")

    monkeypatch.setattr(Fusion, "fuse_added", explosive)
    with pytest.raises(RuntimeError):
        constructor.consume(_initial_delta("musicdb", "music_artist", ["Echo Valley"]))


# ------------------------------------------------------------------ #
# classified entity deltas
# ------------------------------------------------------------------ #
def test_entity_delta_classifies_add_update_delete():
    ontology = default_ontology()
    constructor = IncrementalConstructor(ontology)
    initial = _initial_delta("musicdb", "music_artist", ["Echo Valley", "Blue Harbor"])
    report = constructor.consume(initial)
    assert len(report.entity_delta.added) >= 2
    assert report.entity_delta.updated == ()
    assert report.entity_delta.deleted == ()

    update = SourceDelta(
        source_id="musicdb",
        updated=[SourceEntity(
            entity_id="musicdb:music_artist/0",
            entity_type="music_artist",
            properties={"name": "Echo Valley", "genre": "pop"},
            source_id="musicdb",
            trust=0.8,
        )],
        to_timestamp=2,
    )
    report = constructor.consume(update)
    kg_id = constructor.link_table["musicdb:music_artist/0"]
    assert kg_id in report.entity_delta.updated
    assert report.entity_delta.added == ()

    deletion = SourceDelta(
        source_id="musicdb",
        deleted=[initial.added[1].copy()],
        to_timestamp=3,
    )
    report = constructor.consume(deletion)
    gone = constructor.link_table["musicdb:music_artist/1"]
    # musicdb was the only source: the entity left the KG.  Fusion keeps the
    # same_as linking provenance as a tombstone, so "deleted" means no
    # knowledge-bearing facts remain — not a literally empty subject.
    assert gone in report.entity_delta.deleted
    remaining = constructor.store.facts_about(gone)
    assert all(t.predicate == "same_as" for t in remaining)


def test_entity_delta_retraction_with_surviving_source_is_an_update():
    """A retraction another source still supports classifies as *updated*."""
    ontology = default_ontology()
    constructor = IncrementalConstructor(ontology)
    constructor.consume(_initial_delta("musicdb", "music_artist", ["Echo Valley"]))
    constructor.consume(_initial_delta("wiki", "music_artist", ["Echo Valley"]))
    kg_music = constructor.link_table["musicdb:music_artist/0"]
    kg_wiki = constructor.link_table["wiki:music_artist/0"]
    assert kg_music == kg_wiki, "both sources must link to one entity"

    deletion = SourceDelta(
        source_id="musicdb",
        deleted=[SourceEntity(
            entity_id="musicdb:music_artist/0",
            entity_type="music_artist",
            properties={"name": "Echo Valley"},
            source_id="musicdb",
        )],
        to_timestamp=2,
    )
    report = constructor.consume(deletion)
    assert kg_music in report.entity_delta.updated
    assert kg_music not in report.entity_delta.deleted
    assert constructor.store.facts_about(kg_music), "wiki's facts must survive"


# ------------------------------------------------------------------ #
# construction → views → serving: no store re-diff
# ------------------------------------------------------------------ #
def _platform_with_views() -> SagaPlatform:
    platform = SagaPlatform()
    platform.graph_engine.register_standard_views()
    platform.graph_engine.materialize_views()
    return platform


def _artist_entities(source_id: str, names: list[str]) -> list[SourceEntity]:
    return [
        SourceEntity(
            entity_id=f"{source_id}:artist/{i}",
            entity_type="music_artist",
            properties={"name": name},
            source_id=source_id,
            trust=0.8,
        )
        for i, name in enumerate(names)
    ]


def test_platform_publishes_classified_deltas_without_rediff(monkeypatch):
    """Construction deltas reach the view journals with the coordinator's
    diff-based classification provably never invoked."""
    platform = _platform_with_views()

    def forbidden(self, record, payload):
        raise AssertionError(
            "store re-diff classification must not run for construction publishes"
        )

    monkeypatch.setattr(AgentCoordinator, "_classify_by_diff", forbidden)

    platform.register_source("musicdb")
    report = platform.ingest_snapshot(
        "musicdb", _artist_entities("musicdb", ["Echo Valley", "Blue Harbor"])
    )
    assert set(report.entity_delta.added)
    platform.graph_engine.update_views()

    # Second snapshot: one update, one deletion — classified end to end.
    second = _artist_entities("musicdb", ["Echo Valley Band"])
    report = platform.ingest_snapshot("musicdb", second)
    assert report.entity_delta.deleted, "the dropped artist must classify as deleted"
    timings = platform.graph_engine.update_views()
    assert timings is not None

    # The classified deltas flowed into the per-view journals: the deleted
    # subject appears as a journal deletion for the views that carried it.
    manager = platform.graph_engine.view_manager
    deleted = set(report.entity_delta.deleted)
    journal_deltas = manager.view_deltas_since("entity_features", 0)
    if journal_deltas is not None:
        assert deleted <= set(journal_deltas.deleted) | set(journal_deltas.changed)


def test_platform_ingest_batch_parallel_end_to_end():
    """ingest_batch runs multi-source construction and publishes every commit."""
    platform = _platform_with_views()
    for source_id in ("musicdb", "wiki"):
        platform.register_source(source_id)
    reports = platform.ingest_batch(
        [
            ("musicdb", _artist_entities("musicdb", ["Echo Valley", "Blue Harbor"])),
            ("wiki", _artist_entities("wiki", ["Echo Valley", "Iron Crest"])),
        ],
        max_workers=2,
    )
    assert [r.source_id for r in reports] == ["musicdb", "wiki"]
    assert all(r.error is None for r in reports)
    # Both publishes replayed into the engine and the cross-source duplicate
    # was merged exactly as sequential ingestion would have.
    assert platform.construction.link_table["musicdb:artist/0"] == (
        platform.construction.link_table["wiki:artist/0"]
    )
    assert all(lag == 0 for lag in platform.graph_engine.freshness().values())
    hits = platform.graph_engine.search("Echo Valley", k=3)
    assert hits


def test_platform_ingest_batch_publishes_survivors_on_failure(monkeypatch):
    platform = _platform_with_views()
    for source_id in ("musicdb", "faulty"):
        platform.register_source(source_id)

    original = Fusion.fuse_added

    def explosive(self, store, triples_by_subject, same_as=()):
        if any(subject_triples and subject_triples[0].provenance.sources == ["faulty"]
               for subject_triples in triples_by_subject.values()):
            raise RuntimeError("synthetic fusion failure")
        return original(self, store, triples_by_subject, same_as=same_as)

    monkeypatch.setattr(Fusion, "fuse_added", explosive)

    with pytest.raises(ConstructionBatchError):
        platform.ingest_batch(
            [
                ("musicdb", _artist_entities("musicdb", ["Echo Valley"])),
                ("faulty", _artist_entities("faulty", ["Iron Crest"])),
            ],
        )
    # The surviving source was still published and replayed.
    assert all(lag == 0 for lag in platform.graph_engine.freshness().values())
    assert platform.graph_engine.search("Echo Valley", k=3)


def test_classified_deltas_ship_to_replica_fleet(tmp_path):
    """The continuous path: construction commit → view journal → replicas."""
    platform = _platform_with_views()
    platform.register_source("musicdb")
    platform.ingest_snapshot("musicdb", _artist_entities("musicdb", ["Echo Valley"]))
    platform.graph_engine.update_views()

    fleet = platform.start_serving_fleet(
        views=["entity_features"], num_replicas=2, journal_dir=str(tmp_path)
    )
    try:
        platform.ingest_snapshot(
            "musicdb", _artist_entities("musicdb", ["Echo Valley", "Blue Harbor"])
        )
        platform.graph_engine.update_views()
        fleet.drain()
        primary = {
            row["subject"]: row
            for row in platform.graph_engine.view_artifact("entity_features")
        }
        for node in fleet.replicas.values():
            for subject in primary:
                document = node.get("entity_features", subject)
                assert document is not None, f"{subject} missing on {node.name}"
    finally:
        platform.stop_serving_fleet()
