"""Tests for source delta computation (repro.model.delta)."""

from repro.model.delta import SourceDelta, compute_delta
from repro.model.entity import SourceEntity


def entity(entity_id, name, popularity=None, extra=None):
    properties = {"name": name}
    if popularity is not None:
        properties["popularity"] = popularity
    if extra:
        properties.update(extra)
    return SourceEntity(entity_id=entity_id, entity_type="person",
                        properties=properties, source_id="src")


def test_initial_delta_is_full_added_payload():
    entities = [entity("src:1", "A"), entity("src:2", "B")]
    delta = SourceDelta.initial("src", entities)
    assert delta.summary() == {"added": 2, "deleted": 0, "updated": 0, "volatile": 0}
    assert not delta.is_empty()
    assert delta.change_count() == 2
    assert delta.touched_entity_ids() == {"src:1", "src:2"}


def test_compute_delta_detects_added_deleted_updated():
    previous = [entity("src:1", "A"), entity("src:2", "B"), entity("src:3", "C")]
    current = [entity("src:1", "A"), entity("src:2", "B-updated"), entity("src:4", "D")]
    delta = compute_delta("src", previous, current)
    assert [e.entity_id for e in delta.added] == ["src:4"]
    assert [e.entity_id for e in delta.deleted] == ["src:3"]
    assert [e.entity_id for e in delta.updated] == ["src:2"]
    assert delta.volatile == []


def test_identical_snapshots_produce_empty_delta():
    snapshot = [entity("src:1", "A"), entity("src:2", "B")]
    delta = compute_delta("src", snapshot, [e.copy() for e in snapshot])
    assert delta.is_empty()


def test_volatile_predicates_do_not_trigger_updates():
    previous = [entity("src:1", "A", popularity=0.5)]
    current = [entity("src:1", "A", popularity=0.9)]
    delta = compute_delta("src", previous, current, volatile_predicates=["popularity"])
    assert delta.updated == []
    assert len(delta.volatile) == 1
    volatile_entity = delta.volatile[0]
    assert volatile_entity.properties == {"popularity": 0.9}


def test_volatile_dump_covers_all_current_entities():
    previous = [entity("src:1", "A", popularity=0.5)]
    current = [entity("src:1", "A", popularity=0.5), entity("src:2", "B", popularity=0.2)]
    delta = compute_delta("src", previous, current, volatile_predicates=["popularity"])
    assert {e.entity_id for e in delta.volatile} == {"src:1", "src:2"}
    assert [e.entity_id for e in delta.added] == ["src:2"]


def test_added_entities_are_stripped_of_volatile_predicates():
    current = [entity("src:1", "A", popularity=0.7)]
    delta = compute_delta("src", [], current, volatile_predicates=["popularity"])
    assert "popularity" not in delta.added[0].properties


def test_non_volatile_update_is_detected_alongside_volatile_change():
    previous = [entity("src:1", "A", popularity=0.5)]
    current = [entity("src:1", "A-renamed", popularity=0.6)]
    delta = compute_delta("src", previous, current, volatile_predicates=["popularity"])
    assert [e.entity_id for e in delta.updated] == ["src:1"]


def test_timestamps_are_recorded():
    delta = compute_delta("src", [], [entity("src:1", "A")], from_timestamp=3, to_timestamp=5)
    assert delta.from_timestamp == 3
    assert delta.to_timestamp == 5
