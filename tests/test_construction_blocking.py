"""Tests for blocking and pair generation (repro.construction.blocking/pairs)."""


from repro.construction.blocking import (
    Blocker,
    BlockingConfig,
    exact_value_keys,
    name_prefix_keys,
    name_qgram_keys,
    name_token_keys,
    soundex_keys,
)
from repro.construction.pairs import PairGenerationConfig, PairGenerator
from repro.construction.records import LinkableRecord


def record(record_id, name, entity_type="person", is_kg=False, **props):
    properties = {"name": [name]}
    for key, value in props.items():
        properties[key] = value if isinstance(value, list) else [value]
    return LinkableRecord(record_id=record_id, entity_type=entity_type,
                          properties=properties, is_kg=is_kg)


def test_blocking_key_functions():
    r = record("a", "Robert Smith")
    assert any(key.startswith("qg:") for key in name_qgram_keys(r))
    assert set(name_token_keys(r)) == {"tok:robert", "tok:smith"}
    assert name_prefix_keys(r) == ["pfx:robe"]
    assert all(key.startswith("sdx:") for key in soundex_keys(r))
    assert exact_value_keys("genre")(record("b", "X", genre="pop")) == ["val:genre:pop"]


def test_similar_names_share_blocks():
    blocker = Blocker(BlockingConfig(functions=("name_token", "name_prefix")))
    records = [
        record("src:1", "Robert Smith"),
        record("kg:1", "Robert Smith", is_kg=True),
        record("src:2", "Completely Different"),
    ]
    blocks = blocker.block(records)
    together = [
        block for block in blocks
        if {"src:1", "kg:1"}.issubset({r.record_id for r in block.records})
    ]
    assert together, "matching records must share at least one block"
    assert any(block.has_mixed_origin for block in together)


def test_oversized_blocks_are_dropped():
    blocker = Blocker(BlockingConfig(functions=("name_token",), max_block_size=3))
    records = [record(f"src:{i}", "Common Name") for i in range(10)]
    assert blocker.block(records) == []


def test_singleton_blocks_are_dropped():
    blocker = Blocker()
    blocks = blocker.block([record("src:1", "Unique Name Here")])
    assert blocks == []


def test_type_partitioning_separates_types():
    blocker = Blocker(BlockingConfig(functions=("name_token",), partition_by_type=True))
    records = [record("a", "Madison", entity_type="city"),
               record("b", "Madison", entity_type="person")]
    assert blocker.block(records) == []
    mixed = Blocker(BlockingConfig(functions=("name_token",), partition_by_type=False))
    assert len(mixed.block(records)) == 1


def test_blocking_statistics():
    blocker = Blocker(BlockingConfig(functions=("name_token",)))
    records = [record("a", "Alpha Beta"), record("b", "Alpha Gamma"), record("c", "Alpha Beta")]
    blocks = blocker.block(records)
    stats = blocker.statistics(blocks)
    assert stats["blocks"] == len(blocks) > 0
    assert stats["candidate_pairs"] > 0
    assert blocker.statistics([]) == {
        "blocks": 0, "max_size": 0, "mean_size": 0.0, "candidate_pairs": 0
    }


def test_pair_generation_dedupes_and_skips_kg_kg():
    blocker = Blocker(BlockingConfig(functions=("name_token", "name_prefix")))
    records = [
        record("src:1", "Robert Smith"),
        record("src:2", "Robert Smith"),
        record("kg:1", "Robert Smith", is_kg=True),
        record("kg:2", "Robert Smith", is_kg=True),
    ]
    pairs = PairGenerator().generate(blocker.block(records))
    keys = {pair.key for pair in pairs}
    assert len(keys) == len(pairs)                      # dedupe across blocks
    assert ("kg:1", "kg:2") not in keys                 # KG-KG skipped
    assert any(pair.involves_kg for pair in pairs)


def test_pair_generation_respects_max_pairs_and_type_compatibility():
    blocker = Blocker(BlockingConfig(functions=("name_token",), partition_by_type=False))
    records = [record(f"src:{i}", "Shared Name") for i in range(6)]
    limited = PairGenerator(PairGenerationConfig(max_pairs=4)).generate(blocker.block(records))
    assert len(limited) == 4

    mixed = [record("a", "Madison", entity_type="city"),
             record("b", "Madison", entity_type="person")]
    pairs = PairGenerator(PairGenerationConfig(require_compatible_types=True)).generate(
        blocker.block(mixed)
    )
    assert pairs == []
