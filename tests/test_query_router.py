"""Distributed KGQ execution and anti-entropy audits over the replica fleet.

The scatter-gather contract: a KGQ executed through the ``QueryRouter`` over
N replicas returns results *identical* to primary-side execution of the same
plan over the same view feed — property-tested over seeded operation
sequences (adds, updates, retypes, deletes, flushes, replica kills and
restarts).  Consistency levels are enforced per fragment with honest
``StaleReadError``\\ s that name the lagging replicas; partitions cover the
hash space exactly and agree with point-read routing; a replica dying
mid-query re-dispatches only its share.

The anti-entropy contract: injected divergence (corrupted rows, lost rows,
ghost rows) is detected by the checksum audit down to the exact subjects and
repaired by a targeted repair batch — never a primary-side rebuild, never a
full snapshot — and a lagging live replica is repaired through the
journal-replay catch-up path.  The seeded divergence soak
(``test_anti_entropy_soak_detects_and_repairs_random_divergence``) is the
suite the nightly workflow runs at 5x depth.

Sequence counts follow ``--runs-seeded`` (see ``conftest.py``); the heavier
fleet-backed properties are capped the same way the replicated invariant
suite caps ``fleet_seed``.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.metadata import MetadataStore
from repro.engine.views import (
    ViewCatalog,
    ViewDefinition,
    ViewDelta,
    ViewManager,
    combine_checksums,
    row_checksum,
)
from repro.errors import (
    LiveGraphError,
    ReplicaDivergenceError,
    ReplicaUnavailableError,
    StaleReadError,
    ViewError,
)
from repro.live.executor import QueryExecutor, QueryResult, QueryResultRow, merge_partial_results
from repro.live.index import LiveIndex, document_checksum, view_row_document
from repro.live.kgq import parse
from repro.live.planner import PlanFragment, QueryPlanner, extract_fragments
from repro.serving import (
    Consistency,
    InMemoryJournalBackend,
    JournalStore,
    ServingFleet,
    stable_hash,
)


# The qr_seed / ae_seed fixtures are parametrized by the repo-level
# conftest.py from --runs-seeded (with proportional caps: the scatter-gather
# sequences spin up fleet worker threads, the divergence soak audits full
# checksum maps per round).

# ------------------------------------------------------------------ #
# harness: a queryable row view over a mutable model store
# ------------------------------------------------------------------ #
TYPES = ("alpha", "beta")


class QueryModel:
    """Mutable entity store whose rows carry names, values, and types."""

    def __init__(self):
        self.entities: dict[str, dict] = {}

    def row(self, eid: str) -> dict:
        fields = self.entities[eid]
        return {
            "subject": eid,
            "name": f"Entity {eid}",
            "value": fields["value"],
            "types": [fields["type"]],
        }

    def subjects(self):
        return list(self.entities)


def build_query_harness(model: QueryModel):
    """One apply_delta-maintained row view over *model* plus its manager."""
    catalog = ViewCatalog()

    def create(context):
        return {eid: model.row(eid) for eid in sorted(model.entities)}

    def apply_delta(context, delta: ViewDelta):
        artifact = dict(context.artifact("profile_rows"))
        for eid in delta.changed:
            artifact[eid] = model.row(eid)
        for eid in delta.deleted:
            artifact.pop(eid, None)
        return artifact

    catalog.register(ViewDefinition(
        "profile_rows", "analytics", create=create, apply_delta=apply_delta,
    ))
    clock = {"lsn": 1}
    manager = ViewManager(
        catalog, engines={}, metadata=MetadataStore(),
        lsn_source=lambda: clock["lsn"], entity_source=model.subjects,
    )
    return catalog, manager, clock


def start_fleet(manager, num_replicas=3):
    fleet = ServingFleet(
        manager, num_replicas=num_replicas,
        journal_store=JournalStore(InMemoryJournalBackend()),
    ).start()
    fleet.serve_view("profile_rows")
    assert fleet.drain()
    return fleet


#: The query battery every equivalence check runs — index seeds, type scans,
#: traversal filters, CONTAINS, comparisons, projections, and limits.
QUERY_BATTERY = (
    'MATCH alpha RETURN name, value',
    'MATCH beta RETURN name, value',
    'MATCH alpha WHERE value > 5 RETURN name, value',
    'MATCH beta WHERE value < 50 RETURN value LIMIT 3',
    'MATCH alpha WHERE name CONTAINS "1" RETURN *',
    'MATCH alpha WHERE name = "Entity e01" RETURN value',
    'MATCH beta WHERE value != 2 RETURN name LIMIT 4',
)


def primary_results(manager, queries=QUERY_BATTERY):
    """Execute the battery primary-side over a fresh feed of the artifact."""
    index = LiveIndex()
    lsn = manager.built_at_lsn("profile_rows")
    index.replace_feed(
        "view:profile_rows",
        (view_row_document("profile_rows", "view:profile_rows", row, lsn)
         for row in manager.artifact("profile_rows").values()),
        lsn,
    )
    executor = QueryExecutor(index)
    planner = QueryPlanner()
    results = {}
    for text in queries:
        result = executor.execute(planner.plan(parse(text)), use_cache=False)
        results[text] = [(row.entity_id, row.values) for row in result.rows]
    return results


def assert_fleet_matches_primary(fleet, manager, consistency=None):
    expected = primary_results(manager)
    for text, rows in expected.items():
        if consistency is None:
            result = fleet.query(text, "profile_rows")
        else:
            result = fleet.query(text, "profile_rows", consistency)
        got = [(row.entity_id, row.values) for row in result.rows]
        assert got == rows, text


def seed_model(model, rng, count=None):
    n = count if count is not None else rng.randint(8, 20)
    for i in range(n):
        model.entities[f"e{i:02d}"] = {
            "type": rng.choice(TYPES), "value": rng.randint(0, 99),
        }
    return n


# ------------------------------------------------------------------ #
# partitioning: fragments agree with point-read routing
# ------------------------------------------------------------------ #
def test_hash_partitions_cover_space_and_match_point_routing():
    model = QueryModel()
    rng = random.Random(7)
    seed_model(model, rng, count=64)
    _, manager, _ = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager, num_replicas=4)
    try:
        eligible = sorted(fleet.replicas)
        partitions = fleet.router.hash_partitions(eligible)
        assert set(partitions) == set(eligible)
        for subject in model.entities:
            h = stable_hash(subject)
            owners = [
                name for name, ranges in partitions.items()
                if any(low < h <= high for low, high in ranges)
            ]
            # covered exactly once, by the replica a point read would pick
            assert owners == fleet.router.owners(subject, 1), subject
        # a shrunk eligible set reassigns, still covering every subject
        survivors = eligible[:2]
        partitions = fleet.router.hash_partitions(survivors)
        for subject in model.entities:
            h = stable_hash(subject)
            assert sum(
                any(low < h <= high for low, high in ranges)
                for ranges in partitions.values()
            ) == 1
        assert fleet.router.hash_partitions([]) == {}
    finally:
        fleet.stop()


def test_fragment_intersection_and_cache_keys():
    plan = QueryPlanner().plan(parse("MATCH alpha RETURN name"))
    fragment = PlanFragment(plan=plan, view_name="v", ranges=((0, 100), (200, 300)))
    narrowed = fragment.intersect(((50, 250),))
    assert narrowed.ranges == ((50, 100), (200, 250))
    assert fragment.intersect(((400, 500),)).ranges == ()
    assert fragment.covers(50) and not fragment.covers(150)
    # per-partition cache keys differ, equal partitions share one
    assert fragment.cache_key() != narrowed.cache_key()
    twin = PlanFragment(plan=plan, view_name="v", ranges=fragment.ranges, owner="x")
    assert twin.cache_key() == fragment.cache_key()
    fragments = extract_fragments(plan, "v", {"a": [(0, 10)], "b": []})
    assert [fragment.owner for fragment in fragments] == ["a"]


def test_merge_partial_results_orders_dedups_and_limits():
    plan = QueryPlanner().plan(parse("MATCH alpha RETURN name LIMIT 3"))
    partials = [
        QueryResult(rows=[QueryResultRow("v:c", {"name": "C"}),
                          QueryResultRow("v:a", {"name": "A"})],
                    candidates_examined=4),
        QueryResult(rows=[QueryResultRow("v:b", {"name": "B"}),
                          QueryResultRow("v:a", {"name": "A-dup"}),
                          QueryResultRow("v:d", {"name": "D"})],
                    candidates_examined=5),
    ]
    merged = merge_partial_results(plan, partials)
    assert [row.entity_id for row in merged.rows] == ["v:a", "v:b", "v:c"]
    assert merged.rows[0].values == {"name": "A"}        # first fragment wins
    assert merged.candidates_examined == 9


# ------------------------------------------------------------------ #
# the core property: distributed execution ≡ primary execution
# ------------------------------------------------------------------ #
def test_distributed_query_matches_primary_over_seeded_sequences(qr_seed):
    rng = random.Random(31000 + qr_seed)
    model = QueryModel()
    counter = seed_model(model, rng)
    _, manager, clock = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager)
    killed: list[str] = []

    def enqueue(changed=(), deleted=(), added=()):
        clock["lsn"] += 1
        manager.enqueue(changed, lsn=clock["lsn"], deleted_entity_ids=deleted,
                        added_entity_ids=added)

    try:
        for _ in range(rng.randint(10, 25)):
            op = rng.choices(
                ["add", "update", "retype", "delete", "flush", "kill", "restart"],
                weights=[20, 20, 10, 12, 25, 6, 7],
            )[0]
            if op == "add":
                counter += 1
                eid = f"e{counter:02d}"
                model.entities[eid] = {"type": rng.choice(TYPES),
                                       "value": rng.randint(0, 99)}
                enqueue([eid], added=[eid])
            elif op == "update" and model.entities:
                eid = rng.choice(sorted(model.entities))
                model.entities[eid]["value"] += 100
                enqueue([eid])
            elif op == "retype" and model.entities:
                eid = rng.choice(sorted(model.entities))
                model.entities[eid]["type"] = rng.choice(TYPES)
                enqueue([eid])
            elif op == "delete" and model.entities:
                eid = rng.choice(sorted(model.entities))
                del model.entities[eid]
                enqueue(deleted=[eid])
            elif op == "flush":
                manager.flush()
                assert fleet.drain()
                assert_fleet_matches_primary(fleet, manager)
            elif op == "kill" and len(killed) < 2:      # keep one replica alive
                name = rng.choice(sorted(set(fleet.replicas) - set(killed)))
                fleet.kill_replica(name)
                killed.append(name)
            elif op == "restart" and killed:
                fleet.restart_replica(killed.pop(rng.randrange(len(killed))))

        manager.flush()
        assert fleet.drain()
        # equivalence holds with whatever subset of replicas is still alive...
        assert_fleet_matches_primary(fleet, manager)
        while killed:
            fleet.restart_replica(killed.pop())
        # ...and, once everyone is back, under read-your-writes at the
        # primary watermark with the work spread over all three replicas
        watermark = manager.built_at_lsn("profile_rows")
        assert_fleet_matches_primary(
            fleet, manager, Consistency.read_your_writes(watermark)
        )
        stats = fleet.query_router.stats()
        assert stats["queries_routed"] > 0
        assert stats["fragments_dispatched"] >= stats["queries_routed"]
    finally:
        fleet.stop()


def test_consistency_enforcement_names_the_lagging_replica():
    model = QueryModel()
    seed_model(model, random.Random(3), count=10)
    _, manager, clock = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager)
    try:
        watermark = manager.built_at_lsn("profile_rows")
        result = fleet.query("MATCH alpha RETURN value", "profile_rows",
                             Consistency.read_your_writes(watermark))
        assert result.candidates_examined >= 0
        # an unflushed write lags every replica: bounded_staleness(0) must
        # refuse, naming each lagging replica and its lag
        model.entities["e00"]["value"] = 777
        clock["lsn"] += 1
        manager.enqueue(["e00"], lsn=clock["lsn"])
        with pytest.raises(StaleReadError) as excinfo:
            fleet.query("MATCH alpha RETURN value", "profile_rows",
                        Consistency.bounded_staleness(0))
        assert set(excinfo.value.lagging) == set(fleet.replicas)
        assert all(lag >= 1 for lag in excinfo.value.lagging.values())
        assert any(name in str(excinfo.value) for name in fleet.replicas)
        # a relaxed bound still serves; after the flush drains, zero lag does
        assert fleet.query("MATCH alpha RETURN value", "profile_rows",
                           Consistency.bounded_staleness(1)).rows is not None
        manager.flush()
        assert fleet.drain()
        assert_fleet_matches_primary(fleet, manager, Consistency.bounded_staleness(0))
    finally:
        fleet.stop()


def test_dead_fleet_and_unserved_view_raise_honestly():
    model = QueryModel()
    seed_model(model, random.Random(5), count=6)
    _, manager, _ = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager)
    try:
        with pytest.raises(ReplicaUnavailableError):
            fleet.query("MATCH alpha RETURN value", "never_served")
        for name in list(fleet.replicas):
            fleet.kill_replica(name)
        with pytest.raises(ReplicaUnavailableError):
            fleet.query("MATCH alpha RETURN value", "profile_rows")
    finally:
        fleet.stop()


def test_replica_death_mid_query_redispatches_only_its_partition():
    model = QueryModel()
    seed_model(model, random.Random(11), count=40)
    _, manager, _ = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager)
    try:
        victim = fleet.replicas["replica-1"]
        original = victim.execute_fragment

        def dying(fragment, use_cache=True, **kwargs):
            fleet.kill_replica("replica-1")    # crash between scatter and apply
            return original(fragment, use_cache=use_cache, **kwargs)

        victim.execute_fragment = dying
        result = fleet.query("MATCH alpha RETURN name, value", "profile_rows")
        assert fleet.query_router.fragment_retries >= 1
        expected = primary_results(manager, ("MATCH alpha RETURN name, value",))
        got = [(row.entity_id, row.values) for row in result.rows]
        assert got == expected["MATCH alpha RETURN name, value"]
    finally:
        fleet.stop()


def test_query_plans_compile_once_per_text():
    model = QueryModel()
    seed_model(model, random.Random(13), count=6)
    _, manager, _ = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager)
    try:
        calls = {"plans": 0}
        original = fleet.query_router.planner.plan

        def counting(query):
            calls["plans"] += 1
            return original(query)

        fleet.query_router.planner.plan = counting
        for _ in range(5):
            fleet.query("MATCH alpha RETURN value", "profile_rows")
        assert calls["plans"] == 1
        assert fleet.query_router.plan_cache_hits == 4
        # replica-side result caches serve repeats until an apply invalidates
        assert any(node.executor.cache.hits for node in fleet.replicas.values())
        # stats() exposes the full plan-cache picture: misses, evictions, ratio
        stats = fleet.query_router.stats()
        assert stats["plan_cache_misses"] == 1
        assert stats["plan_cache_evictions"] == 0
        assert stats["plan_cache_hit_ratio"] == pytest.approx(4 / 5)
    finally:
        fleet.stop()


def test_plan_cache_evictions_counted_and_ratio_starts_at_zero():
    model = QueryModel()
    seed_model(model, random.Random(23), count=4)
    _, manager, _ = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager, num_replicas=1)
    try:
        router = fleet.query_router
        assert router.stats()["plan_cache_hit_ratio"] == 0.0    # before any compile
        router.plan_cache_size = 2
        for text in ("MATCH alpha RETURN name", "MATCH beta RETURN name",
                     "MATCH alpha RETURN value"):
            fleet.query(text, "profile_rows")
        stats = router.stats()
        assert stats["plan_cache_misses"] == 3
        assert stats["plan_cache_evictions"] == 1       # capacity 2, three texts
        # the evicted text recompiles: a miss, never a stale hit
        fleet.query("MATCH alpha RETURN name", "profile_rows")
        assert router.stats()["plan_cache_misses"] == 4
    finally:
        fleet.stop()


def test_replica_local_query_surface_matches_primary():
    model = QueryModel()
    seed_model(model, random.Random(17), count=12)
    _, manager, _ = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager, num_replicas=1)
    try:
        node = fleet.replicas["replica-0"]
        expected = primary_results(manager)
        for text, rows in expected.items():
            result = node.query(text, view_name="profile_rows")
            assert [(row.entity_id, row.values) for row in result.rows] == rows
        assert node.local_queries == len(expected)
        node.kill()
        with pytest.raises(ReplicaUnavailableError):
            node.query("MATCH alpha RETURN value", view_name="profile_rows")
    finally:
        fleet.stop()


def test_routed_query_through_the_live_engine():
    model = QueryModel()
    seed_model(model, random.Random(19), count=10)
    _, manager, _ = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager)
    live = LiveGraphEngineFixture()
    try:
        live.engine.attach_query_router(fleet.query_router)
        result = live.engine.routed_query("MATCH alpha RETURN name, value",
                                          "profile_rows")
        expected = primary_results(manager, ("MATCH alpha RETURN name, value",))
        got = [(row.entity_id, row.values) for row in result.rows]
        assert got == expected["MATCH alpha RETURN name, value"]
        assert live.engine.stats()["routed_queries"] == 1
        live.engine.attach_query_router(None)
        with pytest.raises(LiveGraphError):
            live.engine.routed_query("MATCH alpha RETURN name", "profile_rows")
    finally:
        fleet.stop()


class LiveGraphEngineFixture:
    """A bare live engine (no resolution service) for router attachment."""

    def __init__(self):
        from repro.live.engine import LiveGraphEngine

        self.engine = LiveGraphEngine()


# ------------------------------------------------------------------ #
# anti-entropy: checksum audits, divergence detection, targeted repair
# ------------------------------------------------------------------ #
def inject_divergence(node, view_name, rng, subjects):
    """Corrupt one replica three ways; returns the subjects per failure mode."""
    feed = f"view:{view_name}"
    pool = [s for s in subjects if node.get(view_name, s) is not None]
    rng.shuffle(pool)
    corrupted = pool[0] if pool else None
    lost = pool[1] if len(pool) > 1 else None
    if corrupted is not None:
        node.get(view_name, corrupted).facts["value"] = [987654]
    if lost is not None:
        node.index.delete(f"{view_name}:{lost}")
    ghost = f"ghost{rng.randint(0, 99):02d}"
    node.index.apply_feed_delta(
        feed,
        [view_row_document(view_name, feed,
                           {"subject": ghost, "name": "Ghost", "value": -1},
                           node.applied_lsn(view_name))],
        [],
        node.applied_lsn(view_name),
    )
    return corrupted, lost, ghost


def test_audit_detects_exact_subjects_and_repair_converges():
    model = QueryModel()
    seed_model(model, random.Random(23), count=12)
    _, manager, _ = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager)
    try:
        clean = fleet.audit(repair=False)
        assert clean["profile_rows"].clean()
        node = fleet.replicas["replica-2"]
        corrupted, lost, ghost = inject_divergence(
            node, "profile_rows", random.Random(1), sorted(model.entities)
        )
        report = fleet.auditor.audit_view("profile_rows")
        audits = {audit.replica: audit for audit in report.replicas}
        assert audits["replica-0"].status == "ok"
        assert audits["replica-1"].status == "ok"
        diverged = audits["replica-2"]
        assert diverged.status == "diverged"
        assert diverged.mismatched == (corrupted,)
        assert diverged.missing == (lost,)
        assert diverged.extra == (ghost,)
        # raise_on_divergence pages instead of papering over
        with pytest.raises(ReplicaDivergenceError) as excinfo:
            fleet.audit(repair=False, raise_on_divergence=True)
        assert "replica-2" in str(excinfo.value)
        # targeted repair rewrites exactly the diverged rows
        builds_before = manager.states["profile_rows"].builds
        repaired = fleet.auditor.repair(report)
        assert repaired == {"replica-2": 3}
        assert fleet.audit(repair=False)["profile_rows"].clean()
        assert node.divergence_repairs == 1
        assert node.snapshot_resyncs == 0                     # never a snapshot
        assert manager.states["profile_rows"].builds == builds_before
        # the audited digest is on the metadata trail, and it is the same
        # canonical row-level digest ViewManager.view_digest computes — the
        # checksum namespace never flips between digest definitions
        lsn, digest = manager.metadata.view_checksum("profile_rows")
        assert lsn == manager.built_at_lsn("profile_rows")
        assert digest == combine_checksums(manager.view_checksums("profile_rows"))
        assert digest == manager.view_digest("profile_rows")
        assert fleet.auditor.last_reports["profile_rows"].digest == digest
        # distributed queries see the repaired rows, not the corruption
        assert_fleet_matches_primary(fleet, manager)
    finally:
        fleet.stop()


def test_repair_is_stamped_at_the_audited_snapshot_not_the_live_head():
    """A flush landing between audit and repair must not be masked: the
    repair batch carries the snapshot LSN, and a replica that already
    applied past the snapshot refuses the stale repair outright."""
    model = QueryModel()
    seed_model(model, random.Random(43), count=8)
    _, manager, clock = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager)
    try:
        node = fleet.replicas["replica-0"]
        victim = sorted(model.entities)[0]
        node.get("profile_rows", victim).facts["value"] = [31337]
        report = fleet.auditor.audit_view("profile_rows")
        assert {audit.replica for audit in report.diverged()} == {"replica-0"}
        # a flush lands AFTER the audit and reaches every replica
        other = sorted(model.entities)[1]
        model.entities[other]["value"] = 4000
        clock["lsn"] += 1
        manager.enqueue([other], lsn=clock["lsn"])
        manager.flush()
        assert fleet.drain()
        # the now-stale repair is refused, not force-applied over newer state
        assert fleet.auditor.repair(report) == {}
        assert fleet.auditor.stale_repairs_skipped == 1
        assert node.divergence_repairs == 0
        # the post-flush row was never regressed, and a fresh audit pass
        # still sees (and now repairs) the original divergence
        assert node.get("profile_rows", other).value("value") == 4000
        fresh = fleet.auditor.audit_view("profile_rows")
        assert {audit.replica for audit in fresh.diverged()} == {"replica-0"}
        fleet.auditor.repair(fresh)
        assert fleet.audit(repair=False)["profile_rows"].clean()
        assert_fleet_matches_primary(fleet, manager)
    finally:
        fleet.stop()


def test_stale_revision_replica_is_resynced_not_skipped():
    """A replica stuck on an older state lineage at the same LSN (a missed
    redefinition snapshot) is lagging — it must be resynced, never parked
    as 'ahead' while serving old-definition rows forever."""
    model = QueryModel()
    seed_model(model, random.Random(47), count=8)
    _, manager, _ = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager)
    try:
        node = fleet.replicas["replica-1"]
        victim = sorted(model.entities)[0]
        # simulate a missed redefinition: older revision, stale row content
        node.revisions["profile_rows"] -= 1
        node.get("profile_rows", victim).facts["value"] = [-1]
        report = fleet.auditor.audit_view("profile_rows")
        assert {audit.replica for audit in report.lagging()} == {"replica-1"}
        fleet.auditor.repair(report)
        # the revision mismatch makes catch-up answer a full snapshot
        assert node.snapshot_resyncs == 1
        assert fleet.audit(repair=False)["profile_rows"].clean()
        assert_fleet_matches_primary(fleet, manager)
    finally:
        fleet.stop()


def test_lagging_replica_repaired_through_journal_replay():
    model = QueryModel()
    seed_model(model, random.Random(29), count=8)
    _, manager, clock = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager)
    try:
        # crash one replica, ship a delta it misses, then bring the process
        # back WITHOUT the restart catch-up — a live-but-lagging replica
        fleet.kill_replica("replica-1")
        model.entities["e00"]["value"] = 555
        clock["lsn"] += 1
        manager.enqueue(["e00"], lsn=clock["lsn"])
        manager.flush()
        assert fleet.drain()
        node = fleet.replicas["replica-1"]
        node.start()
        assert node.applied_lsn("profile_rows") < manager.built_at_lsn("profile_rows")
        report = fleet.auditor.audit_view("profile_rows")
        lagging = {audit.replica for audit in report.lagging()}
        assert lagging == {"replica-1"}
        fleet.auditor.repair(report)
        assert fleet.auditor.catchup_resyncs == 1
        assert node.snapshot_resyncs == 0                     # journal replay
        assert node.applied_lsn("profile_rows") == manager.built_at_lsn("profile_rows")
        assert fleet.audit(repair=False)["profile_rows"].clean()
    finally:
        fleet.stop()


def test_periodic_auditor_repairs_in_background():
    model = QueryModel()
    seed_model(model, random.Random(37), count=8)
    _, manager, _ = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager)
    try:
        node = fleet.replicas["replica-0"]
        inject_divergence(node, "profile_rows", random.Random(2),
                          sorted(model.entities))
        fleet.start_anti_entropy(0.02)
        assert fleet.auditor.running
        deadline = 100
        import time
        while deadline and fleet.auditor.rows_repaired == 0:
            time.sleep(0.02)
            deadline -= 1
        assert fleet.auditor.rows_repaired >= 1
        assert fleet.audit(repair=False)["profile_rows"].clean()
    finally:
        fleet.stop()
    assert not fleet.auditor.running


def test_anti_entropy_soak_detects_and_repairs_random_divergence(ae_seed):
    """Seeded soak: random mutations + random divergence injections every
    round; the audit must detect exactly the injected replica, repair must
    converge the fleet, and no repair may fall back to snapshots or force a
    primary-side rebuild.  The nightly workflow runs this at 5x depth."""
    rng = random.Random(67000 + ae_seed)
    model = QueryModel()
    counter = seed_model(model, rng)
    _, manager, clock = build_query_harness(model)
    manager.materialize()
    fleet = start_fleet(manager)
    builds_baseline = manager.states["profile_rows"].builds
    try:
        for _ in range(rng.randint(3, 6)):
            # mutate and flush a little
            for _ in range(rng.randint(1, 4)):
                op = rng.choice(["add", "update", "delete"])
                if op == "add":
                    counter += 1
                    eid = f"e{counter:02d}"
                    model.entities[eid] = {"type": rng.choice(TYPES),
                                           "value": rng.randint(0, 99)}
                    clock["lsn"] += 1
                    manager.enqueue([eid], lsn=clock["lsn"], added_entity_ids=[eid])
                elif op == "update" and model.entities:
                    eid = rng.choice(sorted(model.entities))
                    model.entities[eid]["value"] += 7
                    clock["lsn"] += 1
                    manager.enqueue([eid], lsn=clock["lsn"])
                elif op == "delete" and model.entities:
                    eid = rng.choice(sorted(model.entities))
                    del model.entities[eid]
                    clock["lsn"] += 1
                    manager.enqueue([], lsn=clock["lsn"], deleted_entity_ids=[eid])
            manager.flush()
            assert fleet.drain()
            # inject divergence into one replica, audit, verify, repair
            victim = rng.choice(sorted(fleet.replicas))
            node = fleet.replicas[victim]
            injected = inject_divergence(node, "profile_rows", rng,
                                         sorted(model.entities))
            report = fleet.auditor.audit_view("profile_rows")
            flagged = {audit.replica for audit in report.diverged()}
            assert victim in flagged
            expected_subjects = {s for s in injected if s is not None}
            found = {audit.replica: set(audit.diverged_subjects)
                     for audit in report.diverged()}
            assert found[victim] == expected_subjects
            fleet.auditor.repair(report)
            assert fleet.audit(repair=False)["profile_rows"].clean()
            # convergence is real: distributed queries equal primary again
            assert_fleet_matches_primary(fleet, manager)
        assert manager.states["profile_rows"].builds == builds_baseline
        assert all(node.snapshot_resyncs == 0 for node in fleet.replicas.values())
        assert fleet.auditor.divergences_detected >= 3
    finally:
        fleet.stop()


# ------------------------------------------------------------------ #
# view row checksums (primary-side surface)
# ------------------------------------------------------------------ #
def test_view_checksums_row_shape_and_metadata_lifecycle():
    model = QueryModel()
    seed_model(model, random.Random(41), count=5)
    catalog, manager, _ = build_query_harness(model)
    manager.materialize()
    checksums = manager.view_checksums("profile_rows")
    assert set(checksums) == set(model.entities)
    # order-independent and content-sensitive
    some = sorted(model.entities)[0]
    row = dict(manager.artifact("profile_rows")[some])
    assert row_checksum(row) == checksums[some]
    assert row_checksum(dict(reversed(list(row.items())))) == checksums[some]
    row["value"] = object()                    # non-JSON values stringify
    assert row_checksum(row) != checksums[some]
    digest = manager.view_digest("profile_rows")
    assert manager.metadata.view_checksum("profile_rows") == (
        manager.built_at_lsn("profile_rows"), digest
    )
    # an older recomputation cannot overwrite a fresher digest
    manager.metadata.update_view_checksum("profile_rows", 0, "stale")
    assert manager.metadata.view_checksum("profile_rows")[1] == digest
    # drop clears the digest with the watermarks
    manager.drop("profile_rows")
    assert manager.metadata.view_checksum("profile_rows") is None
    # non-row-shaped artifacts refuse row checksums
    catalog.register(ViewDefinition("scalar", "analytics", create=lambda ctx: 42))
    manager.materialize(["scalar"])
    with pytest.raises(ViewError):
        manager.view_checksums("scalar")


def test_document_checksum_ignores_version_but_not_content():
    row = {"subject": "e1", "name": "One", "value": 5, "types": ["alpha"]}
    a = view_row_document("v", "view:v", row, 10)
    b = view_row_document("v", "view:v", dict(row), 99)     # different LSN stamp
    assert document_checksum(a) == document_checksum(b)
    changed = dict(row, value=6)
    c = view_row_document("v", "view:v", changed, 10)
    assert document_checksum(a) != document_checksum(c)
