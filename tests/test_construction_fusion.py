"""Tests for fusion (repro.construction.fusion)."""

import pytest

from repro.construction.fusion import Fusion, FusionConfig
from repro.model.provenance import Provenance
from repro.model.triples import ExtendedTriple, TripleStore


def triple(subject, predicate, obj, source="wiki", trust=0.9, r_id=None, r_pred=None):
    return ExtendedTriple(
        subject=subject, predicate=predicate, obj=obj,
        relationship_id=r_id, relationship_predicate=r_pred,
        provenance=Provenance.from_source(source, trust),
    )


@pytest.fixture
def fusion(ontology):
    return Fusion(ontology)


def test_fuse_added_outer_joins_simple_facts(fusion):
    store = TripleStore([triple("kg:e1", "name", "Artist A", source="wiki")])
    report = fusion.fuse_added(store, {
        "kg:e1": [
            triple("kg:e1", "name", "Artist A", source="musicdb"),   # same fact, new source
            triple("kg:e1", "genre", "pop", source="musicdb"),       # new fact
        ]
    })
    assert report.facts_reinforced == 1
    assert report.facts_added == 1
    name_fact = store.facts_with_predicate("name")[0]
    assert sorted(name_fact.sources) == ["musicdb", "wiki"]


def test_fuse_added_records_same_as_links(fusion):
    store = TripleStore()
    fusion.fuse_added(store, {"kg:e1": [triple("kg:e1", "name", "A", source="musicdb")]},
                      same_as=[("kg:e1", "musicdb:artist/1")])
    assert store.values_of("kg:e1", "same_as") == ["musicdb:artist/1"]


def test_relationship_nodes_merge_when_overlapping(fusion):
    store = TripleStore([
        triple("kg:e1", "educated_at", "UW", r_id="rel:old", r_pred="school"),
        triple("kg:e1", "educated_at", "PhD", r_id="rel:old", r_pred="degree"),
    ])
    report = fusion.fuse_added(store, {
        "kg:e1": [
            triple("kg:e1", "educated_at", "UW", source="musicdb", r_id="rel:new", r_pred="school"),
            triple("kg:e1", "educated_at", 2005, source="musicdb", r_id="rel:new", r_pred="year"),
        ]
    })
    assert report.relationship_nodes_merged == 1
    nodes = store.relationship_facts("kg:e1", "educated_at")
    assert set(nodes) == {"rel:old"}                     # merged onto the existing node
    predicates = {t.relationship_predicate for t in nodes["rel:old"]}
    assert predicates == {"school", "degree", "year"}


def test_relationship_nodes_added_when_disjoint(fusion):
    store = TripleStore([
        triple("kg:e1", "educated_at", "UW", r_id="rel:old", r_pred="school"),
    ])
    report = fusion.fuse_added(store, {
        "kg:e1": [
            triple("kg:e1", "educated_at", "MIT", source="musicdb", r_id="rel:new", r_pred="school"),
        ]
    })
    assert report.relationship_nodes_added == 1
    assert set(store.relationship_facts("kg:e1", "educated_at")) == {"rel:old", "rel:new"}


def test_fuse_updated_retracts_previous_source_contribution(fusion):
    store = TripleStore()
    fusion.fuse_added(store, {"kg:e1": [
        triple("kg:e1", "genre", "pop", source="musicdb"),
        triple("kg:e1", "name", "A", source="wiki"),
    ]})
    report = fusion.fuse_updated(store, "musicdb", {"kg:e1": [
        triple("kg:e1", "genre", "indie", source="musicdb"),
    ]})
    assert report.facts_removed == 1
    assert store.values_of("kg:e1", "genre") == ["indie"]
    assert store.values_of("kg:e1", "name") == ["A"]     # other source untouched


def test_fuse_deleted_only_removes_that_sources_facts(fusion):
    store = TripleStore()
    fusion.fuse_added(store, {"kg:e1": [
        triple("kg:e1", "genre", "pop", source="musicdb"),
        triple("kg:e1", "genre", "pop", source="wiki"),
        triple("kg:e1", "duration_seconds", 200, source="musicdb"),
    ]})
    report = fusion.fuse_deleted(store, "musicdb", ["kg:e1"])
    assert report.facts_removed == 1                      # duration lost, genre survives via wiki
    assert store.values_of("kg:e1", "genre") == ["pop"]
    assert store.value_of("kg:e1", "duration_seconds") is None


def test_fuse_volatile_overwrites_partition(fusion):
    store = TripleStore()
    fusion.fuse_added(store, {"kg:e1": [
        triple("kg:e1", "popularity", 0.5, source="musicdb"),
        triple("kg:e1", "name", "A", source="musicdb"),
    ]})
    report = fusion.fuse_volatile(store, "musicdb", {"kg:e1": [
        triple("kg:e1", "popularity", 0.9, source="musicdb"),
    ]})
    assert report.facts_removed == 1
    assert store.value_of("kg:e1", "popularity") == 0.9
    assert store.value_of("kg:e1", "name") == "A"


def test_functional_conflicts_are_scored_by_truth_discovery(fusion):
    store = TripleStore()
    fusion.fuse_added(store, {"kg:e1": [
        triple("kg:e1", "birth_date", "1980-01-01", source="wiki", trust=0.9),
        triple("kg:e1", "birth_date", "1980-01-01", source="musicdb", trust=0.8),
        triple("kg:e1", "birth_date", "1999-09-09", source="fanwiki", trust=0.3),
    ]})
    result = fusion.resolve_functional_conflicts(store, ["kg:e1"])
    assert result.best_value(("kg:e1", "birth_date")) == "1980-01-01"
    assert fusion.last_truth_result is result


def test_fusion_config_threshold_controls_merging(ontology):
    strict = Fusion(ontology, FusionConfig(relationship_overlap_threshold=0.99))
    store = TripleStore([
        triple("kg:e1", "educated_at", "UW", r_id="rel:old", r_pred="school"),
        triple("kg:e1", "educated_at", "PhD", r_id="rel:old", r_pred="degree"),
    ])
    report = strict.fuse_added(store, {"kg:e1": [
        triple("kg:e1", "educated_at", "UW", source="musicdb", r_id="rel:new", r_pred="school"),
        triple("kg:e1", "educated_at", 2001, source="musicdb", r_id="rel:new", r_pred="year"),
    ]})
    assert report.relationship_nodes_added == 1           # 50% overlap < 99% threshold
