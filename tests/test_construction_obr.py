"""Tests for object resolution (repro.construction.object_resolution)."""

import pytest

from repro.construction.object_resolution import (
    NameIndexResolver,
    ObjectResolutionStage,
    ResolutionContext,
)
from repro.model.entity import SourceEntity
from repro.model.identifiers import IdGenerator
from repro.model.provenance import Provenance
from repro.model.triples import ExtendedTriple, TripleStore


@pytest.fixture
def kg_store():
    store = TripleStore()
    prov = Provenance.from_source("wiki", 0.9)
    facts = [
        ("kg:city1", "name", "Hanover"),
        ("kg:city1", "type", "city"),
        ("kg:city2", "name", "Springfield"),
        ("kg:city2", "type", "city"),
        ("kg:label1", "name", "Apex Records"),
        ("kg:label1", "type", "record_label"),
        ("kg:person1", "name", "Hanover"),          # a person sharing the city name
        ("kg:person1", "type", "person"),
    ]
    for subject, predicate, obj in facts:
        store.add(ExtendedTriple(subject=subject, predicate=predicate, obj=obj,
                                 provenance=prov.copy()))
    return store


def test_name_index_resolver_exact_match(kg_store, ontology):
    resolver = NameIndexResolver(kg_store, ontology)
    resolution = resolver.resolve("Springfield", ResolutionContext())
    assert resolution is not None
    assert resolution.entity_id == "kg:city2"
    assert resolution.confidence > 0.9


def test_name_index_resolver_type_hints_disambiguate(kg_store, ontology):
    resolver = NameIndexResolver(kg_store, ontology)
    as_city = resolver.resolve("Hanover", ResolutionContext(expected_types=("city",)))
    as_person = resolver.resolve("Hanover", ResolutionContext(expected_types=("person",)))
    assert as_city.entity_id == "kg:city1"
    assert as_person.entity_id == "kg:person1"


def test_name_index_resolver_fuzzy_and_miss(kg_store, ontology):
    resolver = NameIndexResolver(kg_store, ontology, fuzzy_threshold=0.85)
    fuzzy = resolver.resolve("Springfeild", ResolutionContext(expected_types=("city",)))
    assert fuzzy is not None and fuzzy.entity_id == "kg:city2"
    assert resolver.resolve("Zzyzx Completely Unknown", ResolutionContext()) is None
    assert resolver.resolve("", ResolutionContext()) is None


def test_resolution_stage_rewrites_reference_objects(kg_store, ontology):
    entity = SourceEntity(
        entity_id="kg:new1",
        entity_type="music_artist",
        properties={"name": "Artist X", "birth_place": "Hanover",
                    "record_label": "Apex Records", "genre": "pop"},
        source_id="musicdb",
    )
    triples = entity.to_triples()
    stage = ObjectResolutionStage(
        ontology=ontology,
        resolver=NameIndexResolver(kg_store, ontology),
        confidence_threshold=0.9,
    )
    resolved, created, stats = stage.resolve_triples(triples)
    by_predicate = {t.predicate: t for t in resolved}
    assert by_predicate["birth_place"].obj == "kg:city1"
    assert by_predicate["record_label"].obj == "kg:label1"
    assert by_predicate["genre"].obj == "pop"           # literal predicate untouched
    assert created == []
    assert stats.resolved == 2
    assert stats.unresolved == 0


def test_resolution_stage_creates_entities_for_unknown_mentions(kg_store, ontology):
    entity = SourceEntity(
        entity_id="kg:new2",
        entity_type="music_artist",
        properties={"name": "Artist Y", "record_label": "Unknown Label Ltd"},
        source_id="musicdb",
    )
    stage = ObjectResolutionStage(
        ontology=ontology,
        resolver=NameIndexResolver(kg_store, ontology),
        id_generator=IdGenerator(),
        create_missing=True,
    )
    resolved, created, stats = stage.resolve_triples(entity.to_triples())
    label_triple = next(t for t in resolved if t.predicate == "record_label")
    assert label_triple.obj.startswith("kg:")
    assert stats.created == 1
    created_subjects = {t.subject for t in created}
    assert label_triple.obj in created_subjects
    created_predicates = {t.predicate for t in created}
    assert created_predicates == {"name", "type"}

    # A second mention of the same unknown label reuses the created entity.
    resolved2, created2, stats2 = stage.resolve_triples(
        SourceEntity(entity_id="kg:new3", entity_type="music_artist",
                     properties={"record_label": "Unknown Label Ltd"},
                     source_id="musicdb").to_triples()
    )
    label2 = next(t for t in resolved2 if t.predicate == "record_label")
    assert label2.obj == label_triple.obj
    assert created2 == []
    assert stats2.resolved + stats2.created <= 1


def test_resolution_stage_leaves_unresolved_when_not_creating(kg_store, ontology):
    stage = ObjectResolutionStage(
        ontology=ontology,
        resolver=NameIndexResolver(kg_store, ontology),
        create_missing=False,
    )
    triples = [ExtendedTriple(subject="kg:new4", predicate="birth_place",
                              obj="Atlantis", provenance=Provenance.from_source("src"))]
    resolved, created, stats = stage.resolve_triples(triples)
    assert resolved[0].obj == "Atlantis"
    assert stats.unresolved == 1
    assert created == []


def test_already_resolved_objects_are_skipped(kg_store, ontology):
    stage = ObjectResolutionStage(ontology=ontology,
                                  resolver=NameIndexResolver(kg_store, ontology))
    triples = [ExtendedTriple(subject="kg:new5", predicate="birth_place",
                              obj="kg:city1", provenance=Provenance.from_source("src"))]
    resolved, _, stats = stage.resolve_triples(triples)
    assert resolved[0].obj == "kg:city1"
    assert stats.examined == 0


def test_composite_reference_predicates_are_resolved(kg_store, ontology):
    entity = SourceEntity(
        entity_id="kg:new6",
        entity_type="person",
        properties={"educated_at": [{"school": "Apex Records", "year": 2000}]},
        source_id="wiki",
    )
    # 'school' is not an ontology predicate with REFERENCE kind, so only check
    # that composite triples pass through without error.
    stage = ObjectResolutionStage(ontology=ontology,
                                  resolver=NameIndexResolver(kg_store, ontology))
    resolved, _, stats = stage.resolve_triples(entity.to_triples())
    assert len(resolved) == len(entity.to_triples())
