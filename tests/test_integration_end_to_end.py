"""End-to-end integration tests across construction, serving, ML, and live layers."""


from repro import SagaPlatform
from repro.datagen import LiveStreamGenerator, StreamConfig
from repro.live import CurationDecision, LiveGraphEngine
from repro.ml.nerd import NERDService
from repro.model.delta import SourceDelta
from repro.model.entity import SourceEntity


def artist(entity_id, name, source_id, **props):
    properties = {"name": name}
    properties.update(props)
    return SourceEntity(entity_id=entity_id, entity_type="music_artist",
                        properties=properties, source_id=source_id, trust=0.85)


def test_full_lifecycle_single_entity():
    """One entity flows through onboarding, update, deletion, and governance."""
    platform = SagaPlatform()
    platform.register_source("musicdb")
    platform.register_source("wiki")

    platform.ingest_snapshot("musicdb", [
        artist("musicdb:1", "Nova Starlight", "musicdb", genre="electropop", popularity=0.9),
    ])
    platform.ingest_snapshot("wiki", [
        artist("wiki:Nova", "Nova Starlight", "wiki", birth_date="1991-03-14"),
    ])
    kg_id = platform.construction.link_table["musicdb:1"]
    assert platform.construction.link_table["wiki:Nova"] == kg_id

    engine = platform.graph_engine
    document = engine.entity(kg_id)
    assert document is not None
    assert "electropop" in document.facts.get("genre", [])
    assert "1991-03-14" in document.facts.get("birth_date", [])

    # Second musicdb snapshot: genre changes, popularity churns.
    platform.ingest_snapshot("musicdb", [
        artist("musicdb:1", "Nova Starlight", "musicdb", genre="synthpop", popularity=0.95),
    ])
    assert engine.triples.values_of(kg_id, "genre") == ["synthpop"]
    assert engine.triples.value_of(kg_id, "popularity") == 0.95
    # wiki's contribution is untouched by the musicdb update
    assert engine.triples.value_of(kg_id, "birth_date") == "1991-03-14"

    # Third snapshot deletes the artist from musicdb; wiki facts survive.
    platform.ingest_snapshot("musicdb", [])
    assert engine.triples.value_of(kg_id, "birth_date") == "1991-03-14"
    assert engine.triples.values_of(kg_id, "genre") == []

    # Governance: removing wiki entirely leaves nothing but linkage provenance.
    engine.remove_source("wiki")
    remaining = [t for t in engine.triples.facts_about(kg_id) if t.predicate != "same_as"]
    assert remaining == []


def test_every_store_reaches_the_same_version(constructed_platform):
    engine = constructed_platform.graph_engine
    head = engine.log.head_lsn()
    assert head == len(constructed_platform.metrics().store_freshness) * 0 + head
    for store_name, lag in engine.freshness().items():
        assert lag == 0, f"{store_name} lags behind the log head"
    assert engine.minimum_version() == head


def test_curation_feedback_loop_reaches_stable_kg(reference_store, ontology, world):
    """Curation hot-fixes the live index and feeds stable construction."""
    nerd = NERDService.from_store(reference_store, ontology)
    live = LiveGraphEngine(resolution_service=nerd)
    live.load_stable_view(reference_store)
    events = LiveStreamGenerator(world, StreamConfig(num_games=2, seed=9)).sports_events()
    live.ingest_events(events)

    game = live.index.kv.by_type("sports_game")[0]
    live.curation.report(game.entity_id, "home_score", game.value("home_score"))
    live.apply_curation_decision(CurationDecision(
        entity_id=game.entity_id, predicate="home_score", action="edit", replacement=1,
    ))
    assert live.index.get(game.entity_id).value("home_score") == 1

    # The accepted edit becomes a curation source entity for stable construction.
    curation_entities = live.curation.as_source_entities()
    assert curation_entities
    platform = SagaPlatform(ontology=ontology)
    platform.register_source("curation")
    report = platform.ingest_snapshot("curation", curation_entities)
    assert report.source_id == "curation"
    assert report.fusion.facts_added >= 1


def test_live_graph_over_constructed_kg(constructed_platform, live_events, world):
    """The live engine serves the *constructed* KG (not just the reference one)."""
    platform = constructed_platform
    live = platform.live
    live.ingest_events(live_events[:30])
    games = live.index.kv.by_type("sports_game")
    assert games
    # Stable entities coming from construction carry kg: identifiers.
    stable_docs = [doc for doc in live.index.kv if not doc.is_live]
    assert any(doc.entity_id.startswith("kg:") for doc in stable_docs)
    result = live.query('MATCH sports_game WHERE game_status = "final" RETURN name LIMIT 3')
    assert result.latency_ms >= 0.0


def test_nerd_stays_fresh_after_new_ingestion(constructed_platform):
    """Entities added after the NERD view was built become resolvable."""
    platform = constructed_platform
    _ = platform.nerd  # force the view to be built now
    platform.register_source("latefeed")
    platform.ingest_snapshot("latefeed", [
        artist("latefeed:9", "Zanzibar Quartet Ensemble", "latefeed", genre="jazz"),
    ])
    result = platform.nerd.link_mention("Zanzibar Quartet Ensemble")
    assert result.entity_id == platform.construction.link_table["latefeed:9"]


def test_incremental_timestamps_monotonic(constructed_platform):
    reports = constructed_platform.construction.reports
    assert reports
    growth = constructed_platform.construction.growth.points
    assert [p.timestamp for p in growth] == sorted(p.timestamp for p in growth)


def test_empty_delta_is_a_noop(ontology):
    platform = SagaPlatform(ontology=ontology)
    platform.register_source("musicdb")
    platform.ingest_snapshot("musicdb", [artist("musicdb:1", "Echo Valley", "musicdb")])
    facts_before = platform.graph_engine.triples.fact_count()
    report = platform.construction.consume_delta(SourceDelta(source_id="musicdb"))
    assert report.fusion.facts_added == 0
    assert platform.graph_engine.triples.fact_count() == facts_before
