"""Quickstart: build a tiny knowledge graph from two sources and query it.

Demonstrates the core loop of the platform in a few dozen lines:

1. register two data sources (a music catalog and an encyclopedia feed);
2. ingest a snapshot from each — ontology alignment, delta computation,
   linking, object resolution, and fusion all run under the hood;
3. query the resulting KG through the Graph Engine (point lookups, full-text
   search, entity views, importance scores).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SagaPlatform
from repro.engine import EntityViewSpec
from repro.model.entity import SourceEntity


def music_catalog_snapshot() -> list[SourceEntity]:
    """A tiny music-catalog feed: two artists, one label, one song."""
    return [
        SourceEntity(
            entity_id="musicdb:artist/1",
            entity_type="music_artist",
            properties={
                "name": "Nova Starlight",
                "alias": ["Nova S."],
                "genre": "electropop",
                "record_label": "Apex Records",
                "popularity": 0.92,
            },
            source_id="musicdb",
            trust=0.85,
        ),
        SourceEntity(
            entity_id="musicdb:artist/2",
            entity_type="music_artist",
            properties={
                "name": "Crimson Harbor",
                "genre": "indie rock",
                "record_label": "Apex Records",
                "popularity": 0.40,
            },
            source_id="musicdb",
            trust=0.85,
        ),
        SourceEntity(
            entity_id="musicdb:label/1",
            entity_type="record_label",
            properties={"name": "Apex Records"},
            source_id="musicdb",
            trust=0.85,
        ),
        SourceEntity(
            entity_id="musicdb:song/1",
            entity_type="song",
            properties={
                "name": "Midnight Echoes",
                "performed_by": "Nova Starlight",
                "duration_seconds": 214,
                "genre": "electropop",
            },
            source_id="musicdb",
            trust=0.85,
        ),
    ]


def wiki_snapshot() -> list[SourceEntity]:
    """An encyclopedia feed describing the same artist with extra facts."""
    return [
        SourceEntity(
            entity_id="wiki:Nova_Starlight",
            entity_type="person",
            properties={
                "name": "Nova Starlight",
                "birth_date": "1991-03-14",
                "occupation": ["singer", "songwriter"],
                "educated_at": [{"school": "Conservatory of Springfield", "year": 2012}],
            },
            source_id="wiki",
            trust=0.9,
        ),
        SourceEntity(
            entity_id="wiki:Springfield",
            entity_type="city",
            properties={"name": "Springfield", "population": 167000},
            source_id="wiki",
            trust=0.9,
        ),
    ]


def main() -> None:
    platform = SagaPlatform()

    # 1. Self-serve source onboarding.
    platform.register_source("musicdb")
    platform.register_source("wiki")

    # 2. Ingest one snapshot per source; construction links the overlapping
    #    "Nova Starlight" records into a single canonical entity.
    music_report = platform.ingest_snapshot("musicdb", music_catalog_snapshot())
    wiki_report = platform.ingest_snapshot("wiki", wiki_snapshot())
    print("musicdb ingest:", music_report.summary())
    print("wiki ingest:   ", wiki_report.summary())

    metrics = platform.metrics()
    print(f"\nKG now holds {metrics.facts} facts about {metrics.entities} entities "
          f"from {metrics.sources} sources; store freshness: {metrics.store_freshness}")

    # 3a. Full-text entity search + point lookup.
    engine = platform.graph_engine
    hit = engine.search("Nova Starlight", k=1)[0]
    nova = engine.entity(hit.doc_id)
    print(f"\nEntity card for {nova.name} ({hit.doc_id}):")
    for predicate, values in sorted(nova.facts.items()):
        print(f"  {predicate}: {values}")
    print(f"  relationships: {nova.relationships}")

    # Cross-source fusion: the genre fact came from musicdb, the birth date
    # from wiki, and both contribute provenance to the name fact.
    name_fact = [t for t in engine.triples.facts_about(hit.doc_id) if t.predicate == "name"][0]
    print(f"  provenance of the name fact: {sorted(name_fact.sources)}")

    # 3b. A schematized entity view computed by the analytics warehouse.
    view = engine.entity_view(EntityViewSpec(
        name="artists",
        entity_type="music_artist",
        predicates=("genre",),
        reference_joins={"label": "record_label"},
    ))
    print("\nArtists view (analytics store):")
    for row in view.rows:
        print(f"  {row}")

    # 3c. Structural entity importance over the whole graph.
    top = sorted(engine.importance_scores().values(), key=lambda s: -s.score)[:3]
    print("\nMost important entities (structural signals):")
    for score in top:
        print(f"  {engine.entity(score.entity_id).name:<24} importance={score.score:.3f} "
              f"(in={score.in_degree}, out={score.out_degree}, "
              f"identities={score.identity_count})")


if __name__ == "__main__":
    main()
