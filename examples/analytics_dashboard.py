"""Analytics dashboard: an incrementally maintained join view, served fleet-wide.

Builds the warehouse half of a "top artists by label" dashboard (see
docs/views.md and docs/serving.md):

* an :class:`AnalyticsStore` ingests artist and label triples, and its
  ``entity_rows`` loader feeds both sides of a :class:`JoinViewDefinition` —
  artists joined to their record label's row on ``label``;
* live updates (signings, label renames, label shutdowns) flow through the
  **delta rules** — the view recomputes only the affected output rows, never
  the full join, and the journal carries the changed *output* subjects;
* a three-replica serving fleet answers cross-view joins replica-side, both
  ways: a small side **broadcast** to the big side's fragments, and a
  **shuffle** that re-partitions both sides by join-key hash.

Run with:  python examples/analytics_dashboard.py
"""

from __future__ import annotations

import random

from repro.engine.analytics import AnalyticsStore
from repro.engine.metadata import MetadataStore
from repro.engine.views import (
    JoinInput,
    JoinViewDefinition,
    ViewCatalog,
    ViewDefinition,
    ViewManager,
)
from repro.model.triples import ExtendedTriple
from repro.serving import InMemoryJournalBackend, JournalStore, ServingFleet

LABELS = ("l_apex", "l_bolt", "l_crest")


def build_warehouse(rng: random.Random) -> tuple[AnalyticsStore, dict, dict]:
    """Ingest a small music-industry world into the analytics warehouse."""
    store = AnalyticsStore()
    labels = {name: {"country": rng.choice(["US", "UK", "JP"])} for name in LABELS}
    artists = {
        f"a{i:02d}": {"label": rng.choice(LABELS), "albums": rng.randint(1, 9)}
        for i in range(12)
    }
    triples = []
    for label, fields in labels.items():
        triples += [
            ExtendedTriple(label, "type", "label"),
            ExtendedTriple(label, "name", f"Label {label[2:].title()}"),
            ExtendedTriple(label, "country", fields["country"]),
        ]
    for artist, fields in artists.items():
        triples += [
            ExtendedTriple(artist, "type", "artist"),
            ExtendedTriple(artist, "name", f"Artist {artist}"),
            ExtendedTriple(artist, "signed_to", fields["label"]),
            ExtendedTriple(artist, "albums", fields["albums"]),
        ]
    store.ingest(triples)
    return store, artists, labels


def main() -> None:
    rng = random.Random(11)
    store, artists, labels = build_warehouse(rng)
    print(f"warehouse ready: {store.triple_count()} triples, "
          f"types {store.entity_types()}")

    # ------------------------------------------------------------ #
    # The join view: artists ⋈ labels on the signing, delta-maintained.
    # ------------------------------------------------------------ #
    catalog = ViewCatalog()
    dashboard = JoinViewDefinition(
        "artist_dashboard",
        JoinInput(
            "artists", "signed_to",
            lambda context, ids: store.entity_rows(
                "artist", ["signed_to", "albums"], ids),
            scope=lambda e: e.startswith("a"),
        ),
        JoinInput(
            "labels", "label_id",
            lambda context, ids: [
                dict(row, label_id=row["subject"])
                for row in store.entity_rows("label", ["country"], ids)
            ],
            scope=lambda e: e.startswith("l"),
        ),
        how="left",
        description="artist rows joined to their label's country",
    )
    catalog.register(dashboard)
    clock = {"lsn": 1}
    manager = ViewManager(
        catalog, engines={}, metadata=MetadataStore(),
        lsn_source=lambda: clock["lsn"],
        entity_source=lambda: list(artists) + list(labels),
    )
    manager.materialize()
    sample = manager.artifact("artist_dashboard")["a00"]
    print(f"\n== join view materialized ({len(manager.artifact('artist_dashboard'))} "
          f"rows) ==\n  a00 -> {sample}")

    # Live updates: only the affected output rows are recomputed.
    def apply(changed=(), deleted=()):
        clock["lsn"] += 1
        manager.enqueue(changed, lsn=clock["lsn"], deleted_entity_ids=deleted)
        manager.flush()

    store.refresh_subjects(["a00"], [
        ExtendedTriple("a00", "type", "artist"),
        ExtendedTriple("a00", "name", "Artist a00"),
        ExtendedTriple("a00", "signed_to", "l_crest"),      # re-signed!
        ExtendedTriple("a00", "albums", 10),
    ])
    apply(changed=["a00"])
    print(f"  a00 re-signed  -> {manager.artifact('artist_dashboard')['a00']}")

    store.refresh_subjects(["l_crest"], [
        ExtendedTriple("l_crest", "type", "label"),
        ExtendedTriple("l_crest", "name", "Label Crest Intl"),
        ExtendedTriple("l_crest", "country", "DE"),         # relocated
    ])
    apply(changed=["l_crest"])
    crest_roster = [s for s, row in manager.artifact("artist_dashboard").items()
                    if row.get("country") == "DE"]
    print(f"  l_crest moved  -> {len(crest_roster)} artist rows updated via "
          f"the right-side delta rule: {crest_roster}")

    ivm = dashboard.ivm_stats()
    stats = manager.stats()
    print(f"  ivm stats: {ivm}")
    print(f"  manager:   full_rebuilds={stats['full_rebuilds']} "
          f"incremental_applies={stats['incremental_applies']} "
          f"(mirrored: {manager.metadata.serving_metrics('view_manager') == stats})")

    # ------------------------------------------------------------ #
    # The serving half: cross-view joins executed replica-side.
    # ------------------------------------------------------------ #
    serving_catalog = ViewCatalog()

    def row_view(name, members, row_of, prefix):
        serving_catalog.register(ViewDefinition(
            name, "analytics",
            create=lambda context: {e: row_of(e) for e in sorted(members())},
            scope=lambda e: e.startswith(prefix),
        ))

    row_view("artist_rows", lambda: artists,
             lambda e: {"subject": e, "name": store.display_name(e),
                        "label": artists[e]["label"],
                        "albums": artists[e]["albums"], "types": ["artist"]},
             "a")
    row_view("label_rows", lambda: labels,
             lambda e: {"subject": e, "name": store.display_name(e),
                        "label": e, "country": labels[e]["country"],
                        "types": ["label"]},
             "l")
    serving_manager = ViewManager(
        serving_catalog, engines={}, metadata=MetadataStore(),
        lsn_source=lambda: 1,
        entity_source=lambda: list(artists) + list(labels),
    )
    serving_manager.materialize()
    fleet = ServingFleet(
        serving_manager, num_replicas=3,
        journal_store=JournalStore(InMemoryJournalBackend()),
    ).start()
    fleet.serve_view("artist_rows")
    fleet.serve_view("label_rows")
    fleet.drain()

    left = "MATCH artist WHERE albums > 3 RETURN name, label, albums"
    right = "MATCH label RETURN label, country"
    print(f"\n== distributed cross-view join over 3 replicas ==\n  {left}\n"
          f"  ⋈ {right}  on label")
    for strategy in ("broadcast", "shuffle"):
        result = fleet.join(left, "artist_rows", right, "label_rows",
                            "label", "label", how="left", strategy=strategy)
        print(f"  {strategy:<10} -> {len(result.rows)} rows in "
              f"{result.latency_ms:.2f} ms; first: {result.rows[0].values}")
    router = fleet.query_router.stats()
    print(f"  router: join_queries={router['join_queries']} "
          f"broadcast={router['broadcast_joins']} shuffle={router['shuffle_joins']} "
          f"rows_broadcast={router['join_rows_broadcast']} "
          f"rows_shuffled={router['join_rows_shuffled']}")
    fleet.stop()


if __name__ == "__main__":
    main()
