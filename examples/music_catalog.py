"""Music-vertical example: continuous construction from noisy catalog feeds.

This is the workload the paper's introduction motivates for batch sources:
a music catalog and an encyclopedia feed both describe overlapping artists,
albums, and songs with typos, aliases, duplicate records, and churning
popularity.  The example shows:

* onboarding both sources and ingesting their first snapshots;
* measuring linking quality against the known ground truth of the synthetic
  world (the pairwise precision/recall the platform team would track);
* consuming an *evolved* snapshot incrementally — only the delta is processed
  and the volatile popularity partition takes the optimized overwrite path;
* registering and maintaining Graph Engine views (entity features, ranked
  entity index) and reading entity cards for a popular artist.

Run with:  python examples/music_catalog.py
"""

from __future__ import annotations

from repro import SagaPlatform
from repro.construction.linking import LinkingResult, evaluate_linking
from repro.datagen import (
    WorldConfig,
    evolve_source,
    generate_source,
    generate_world,
    music_catalog_spec,
    wiki_people_spec,
)
from repro.engine import EntityViewSpec


def main() -> None:
    world = generate_world(WorldConfig(num_people=60, num_artists=25, num_movies=10,
                                       num_cities=16, seed=11))
    platform = SagaPlatform()

    music = generate_source(world, music_catalog_spec(seed=301))
    wiki = generate_source(world, wiki_people_spec(seed=302))
    platform.register_source(music.source_id)
    platform.register_source(wiki.source_id)

    # ------------------------------------------------------------------ #
    # First snapshots: full Added payloads.
    # ------------------------------------------------------------------ #
    print("== initial snapshots ==")
    for source in (music, wiki):
        report = platform.ingest_snapshot(source.source_id, source.entities)
        print(f"  {source.source_id:<8} {report.summary()}")

    metrics = platform.metrics()
    print(f"\nKG after onboarding: {metrics.facts} facts, {metrics.entities} entities")

    # Linking quality against ground truth (possible because the synthetic
    # world records which source record describes which real-world entity).
    truth_map = {**music.truth_map, **wiki.truth_map}
    linking_result = LinkingResult(assignments=dict(platform.construction.link_table))
    quality = evaluate_linking(linking_result, truth_map)
    print(f"pairwise linking quality vs ground truth: "
          f"precision={quality['precision']:.3f} recall={quality['recall']:.3f} "
          f"f1={quality['f1']:.3f}")

    # ------------------------------------------------------------------ #
    # Incremental consumption of an evolved snapshot.
    # ------------------------------------------------------------------ #
    print("\n== incremental update (evolved music catalog) ==")
    evolved = evolve_source(world, music, added_fraction=0.2, updated_fraction=0.15,
                            deleted_fraction=0.03)
    report = platform.ingest_snapshot(music.source_id, evolved.entities)
    print(f"  delta consumed: {report.summary()}")
    print(f"  volatile popularity facts refreshed for {report.volatile_entities} entities "
          f"(optimized partition-overwrite path)")

    # ------------------------------------------------------------------ #
    # Graph Engine views and entity cards.
    # ------------------------------------------------------------------ #
    engine = platform.graph_engine
    engine.register_standard_views()
    timings = engine.materialize_views(reuse_shared=True)
    print("\n== registered KG views ==")
    for name, seconds in sorted(timings.items()):
        print(f"  {name:<22} built in {seconds * 1000:.1f} ms")

    artists_view = engine.entity_view(EntityViewSpec(
        name="artist_cards",
        entity_type="music_artist",
        predicates=("genre", "birth_date"),
        reference_joins={"label": "record_label", "birthplace": "birth_place"},
    ))
    print(f"\nartist_cards view: {len(artists_view)} rows; first three:")
    for row in artists_view.rows[:3]:
        print(f"  {row}")

    # Entity card for the most important artist in the graph.
    scores = engine.importance_scores()
    artist_ids = set(engine.analytics.subjects_of_type("music_artist"))
    top_artist_id = max(artist_ids, key=lambda entity_id: scores[entity_id].score
                        if entity_id in scores else 0.0)
    card = engine.entity(top_artist_id)
    print(f"\nEntity card — {card.name} (importance "
          f"{scores[top_artist_id].score:.3f}):")
    for predicate in ("genre", "birth_date", "occupation", "record_label"):
        if predicate in card.facts:
            print(f"  {predicate}: {card.facts[predicate]}")
    print(f"  contributing sources stay attached to every fact "
          f"(non-destructive integration)")

    # Licensing / governance: drop a source on demand and show the KG shrink.
    before = engine.triples.fact_count()
    engine.remove_source("musicdb")
    after = engine.triples.fact_count()
    print(f"\nOn-demand source removal: dropping 'musicdb' removed "
          f"{before - after} facts that no other source supported")


if __name__ == "__main__":
    main()
