"""Replicated serving example: journal shipping, crash recovery, routed reads.

Builds a Saga platform, materializes the standard view graph plus an
incrementally maintained profile view, and starts a three-replica serving
fleet over both with file-backed persistent journals (see docs/serving.md):

* routed point reads under the three consistency levels
  (``any`` / ``bounded_staleness`` / ``read_your_writes``);
* incremental journal shipping while the KG keeps ingesting;
* a replica crash, missed deltas, and a restart that catches up by
  journal replay — no view artifact is rebuilt;
* fleet introspection: lag matrix, shard map, journal segments.

Run with:  python examples/replicated_serving.py
"""

from __future__ import annotations

import tempfile

from repro import SagaPlatform
from repro.datagen import WorldConfig, default_source_suite, generate_world
from repro.engine.views import ViewDefinition, ViewDelta
from repro.errors import StaleReadError
from repro.serving import Consistency


def register_entity_profile(engine) -> None:
    """An incrementally maintained (apply_delta) profile view.

    Unlike the create-only standard views — whose rebuilds truncate the
    journal, forcing snapshot resyncs — an ``apply_delta`` view keeps its
    journal intact, so crashed replicas recover by journal replay.
    """

    def row_for(subject):
        facts = engine.triples.facts_about(subject)
        return {
            "subject": subject,
            "name": str(engine.triples.value_of(subject, "name") or ""),
            "fact_count": len(facts),
        }

    def create(context):
        return {s: row_for(s) for s in engine.triples.subjects()}

    def apply_delta(context, delta: ViewDelta):
        artifact = dict(context.artifact("entity_profile"))
        for subject in delta.changed:
            artifact[subject] = row_for(subject)
        for subject in delta.deleted:
            artifact.pop(subject, None)
        return artifact

    engine.register_view(ViewDefinition(
        "entity_profile", "analytics", create=create, apply_delta=apply_delta,
        description="incrementally maintained per-entity profile rows",
    ))


def main() -> None:
    world = generate_world(WorldConfig(seed=42))
    platform = SagaPlatform()
    suite = default_source_suite(world)
    for source in suite[:2]:
        platform.register_source(source.source_id)
        platform.ingest_snapshot(source.source_id, source.entities)
    engine = platform.graph_engine
    engine.register_standard_views()
    register_entity_profile(engine)
    engine.materialize_views()
    print(f"KG ready: {engine.triples.entity_count()} entities, "
          f"{len(engine.view_catalog)} views, head LSN {engine.minimum_version()}")

    with tempfile.TemporaryDirectory(prefix="saga-journals-") as journal_dir:
        fleet = platform.start_serving_fleet(
            views=["entity_features", "entity_profile"], num_replicas=3, journal_dir=journal_dir,
        )
        fleet.drain()
        subject = sorted(engine.triples.subjects())[0]
        watermark = engine.view_manager.built_at_lsn("entity_profile")
        print(f"\n== routed reads over 3 replicas (journals in {journal_dir}) ==")
        for consistency, label in (
            (Consistency.any(), "any"),
            (Consistency.bounded_staleness(0), "bounded_staleness(0)"),
            (Consistency.read_your_writes(watermark), f"read_your_writes({watermark})"),
        ):
            document = fleet.read("entity_profile", subject, consistency)
            print(f"  {label:<24} -> {document.entity_id} "
                  f"(fact_count={document.value('fact_count')})")

        # ------------------------------------------------------------ #
        # Crash one replica, keep ingesting, restart it.
        # ------------------------------------------------------------ #
        print("\n== crash and journal-replay recovery ==")
        fleet.kill_replica("replica-1")
        print(f"  replica-1 crashed; healthy: {fleet.router.healthy_replicas()}")
        for source in suite[2:3]:
            platform.register_source(source.source_id)
            platform.ingest_snapshot(source.source_id, source.entities)
        engine.update_views()                       # flush ships the delta
        fleet.drain()
        print(f"  ingested {suite[2].source_id} while replica-1 was down; "
              f"lag: {fleet.lag()['entity_profile']}")
        builds_before = engine.view_manager.states["entity_profile"].builds
        caught_up = fleet.restart_replica("replica-1")
        node = fleet.replicas["replica-1"]
        print(f"  replica-1 restarted from persisted journals: caught up {caught_up} "
              f"to applied LSN {node.applied_lsn('entity_profile')}")
        print(f"  resyncs={node.resyncs}, snapshot resyncs={node.snapshot_resyncs} — "
              "the create-only entity_features view truncates its journal on "
              "rebuild (snapshot), entity_profile rode the journal; "
              f"entity_profile builds unchanged: "
              f"{engine.view_manager.states['entity_profile'].builds == builds_before}")

        # A reader that just wrote demands its write; a lagging fleet answers
        # honestly with StaleReadError until the flush is drained.
        engine.publish_subjects(engine.triples, [subject], source_id="hotfix")
        head = engine.minimum_version()
        try:
            fleet.read("entity_profile", subject, Consistency.read_your_writes(head))
        except StaleReadError as exc:
            print(f"\n  read_your_writes({head}) before flush -> {type(exc).__name__} "
                  "(honest staleness)")
        engine.update_views()
        fleet.drain()
        document = fleet.read("entity_profile", subject, Consistency.read_your_writes(head))
        print(f"  read_your_writes({head}) after drain  -> {document.entity_id}")

        # ------------------------------------------------------------ #
        # Introspection.
        # ------------------------------------------------------------ #
        status = fleet.status()
        subjects = sorted(engine.triples.subjects())[:6]
        print("\n== fleet introspection ==")
        print(f"  served views:   {status['served_views']}")
        print(f"  healthy:        {status['healthy_replicas']}")
        print(f"  batches:        {status['batches_published']} published, "
              f"{status['reads_routed']} reads routed")
        print(f"  journal:        {status['journal']['entity_profile']}")
        print(f"  shard map:      {fleet.router.shard_map(subjects)}")
        print(f"  compacted:      {fleet.compact_journals()} segments dropped")
        platform.stop_serving_fleet()


if __name__ == "__main__":
    main()
