"""Multi-tenant front door example: admission, isolation, serving metrics.

Builds a Saga platform, starts a three-replica serving fleet over an
incrementally maintained profile view, and opens the multi-tenant asyncio
front door over it (see docs/frontdoor.md):

* two tenants scoped to disjoint KG slices (songs vs people) sharing one
  served view — cross-slice queries are refused at *plan* time;
* per-tenant admission: a token-bucket rate limit with an honest
  ``retry_after``, and deadline refusals before any work is wasted;
* per-tenant result caches invalidated by shipped deltas;
* the serving-metrics snapshot (latency percentiles, admission counters)
  mirrored into the platform's metadata store.

Run with:  python examples/front_door.py
"""

from __future__ import annotations

import asyncio

from repro import SagaPlatform
from repro.datagen import WorldConfig, default_source_suite, generate_world
from repro.engine.views import ViewDefinition, ViewDelta
from repro.errors import DeadlineExceededError, OverloadedError, TenantIsolationError


def register_entity_profile(engine) -> None:
    """An apply_delta profile view whose rows carry each entity's types."""

    def row_for(subject):
        return {
            "subject": subject,
            "name": str(engine.triples.value_of(subject, "name") or ""),
            "fact_count": len(engine.triples.facts_about(subject)),
            "types": [str(engine.triples.value_of(subject, "type") or "")],
        }

    def create(context):
        return {s: row_for(s) for s in engine.triples.subjects()}

    def apply_delta(context, delta: ViewDelta):
        artifact = dict(context.artifact("entity_profile"))
        for subject in delta.changed:
            artifact[subject] = row_for(subject)
        for subject in delta.deleted:
            artifact.pop(subject, None)
        return artifact

    engine.register_view(ViewDefinition(
        "entity_profile", "analytics", create=create, apply_delta=apply_delta,
        description="typed per-entity profile rows for tenant-scoped serving",
    ))


async def serve_traffic(platform: SagaPlatform) -> None:
    door = platform.front_door
    engine = platform.graph_engine

    # -------------------------------------------------------------- #
    # Tenant-scoped serving: each tenant sees only its own KG slice.
    # -------------------------------------------------------------- #
    print("\n== tenant-scoped queries over one shared view ==")
    for tenant, text in (
        ("music-app", "MATCH song RETURN name, fact_count"),
        ("people-app", "MATCH person RETURN name, fact_count"),
    ):
        result = await door.query(tenant, text, "entity_profile")
        print(f"  {tenant:<11} {text!r:<42} -> {len(result.rows)} rows, "
              f"{result.latency_ms:.2f} ms")

    print("\n== the isolation boundary is enforced at plan time ==")
    try:
        await door.query("music-app", "MATCH person RETURN name", "entity_profile")
    except TenantIsolationError as exc:
        print(f"  music-app asking for people -> {type(exc).__name__}: {exc}")

    # -------------------------------------------------------------- #
    # Honest refusals: rate limits quote a backoff, deadlines refuse
    # before wasting a worker.
    # -------------------------------------------------------------- #
    print("\n== admission control refuses honestly ==")
    for attempt in range(4):
        try:
            await door.query("burst-bot", "MATCH song RETURN name", "entity_profile",
                             use_cache=False)
            print(f"  burst-bot request {attempt + 1}: admitted")
        except OverloadedError as exc:
            print(f"  burst-bot request {attempt + 1}: {type(exc).__name__} "
                  f"(retry_after={exc.retry_after:.2f}s)")
    try:
        await door.query("music-app", "MATCH song RETURN name", "entity_profile",
                         deadline=0.0)
    except DeadlineExceededError as exc:
        print(f"  zero-deadline request -> {type(exc).__name__}: {exc}")

    # -------------------------------------------------------------- #
    # Per-tenant caches ride shipped deltas.
    # -------------------------------------------------------------- #
    print("\n== per-tenant result caches, invalidated by shipped deltas ==")
    text = "MATCH song RETURN name, fact_count"
    repeat = await door.query("music-app", text, "entity_profile")
    print(f"  repeat before ingest -> from_cache={repeat.from_cache}")
    subject = sorted(engine.triples.subjects())[0]
    engine.publish_subjects(engine.triples, [subject], source_id="hotfix")
    engine.update_views()                       # flush ships the delta
    platform.fleet.drain()
    after = await door.query("music-app", text, "entity_profile")
    print(f"  repeat after ingest  -> from_cache={after.from_cache} "
          "(the shipped delta dropped the tenant's cache)")


def main() -> None:
    world = generate_world(WorldConfig(seed=42))
    platform = SagaPlatform()
    for source in default_source_suite(world)[:2]:
        platform.register_source(source.source_id)
        platform.ingest_snapshot(source.source_id, source.entities)
    engine = platform.graph_engine
    register_entity_profile(engine)
    engine.materialize_views()
    print(f"KG ready: {engine.triples.entity_count()} entities, "
          f"head LSN {engine.minimum_version()}")

    platform.start_serving_fleet(views=["entity_profile"], num_replicas=3)
    door = platform.start_front_door(max_concurrency=4, queue_capacity=16)
    door.registry.register("music-app", views={"entity_profile"},
                           entity_types={"song", "album"})
    door.registry.register("people-app", views={"entity_profile"},
                           entity_types={"person"})
    door.registry.register("burst-bot", views={"entity_profile"},
                           entity_types={"song"}, rate=1.0, burst=2)

    asyncio.run(serve_traffic(platform))

    # -------------------------------------------------------------- #
    # Observability: one snapshot, also mirrored into the metadata store.
    # -------------------------------------------------------------- #
    stats = door.stats()
    print("\n== serving metrics ==")
    print(f"  requests={stats['requests']} completed={stats['completed']} "
          f"cache_hits={stats['cache_hits']} rate_limited={stats['rate_limited']} "
          f"isolation_rejections={stats['isolation_rejections']}")
    latency = stats["latency"]
    print(f"  latency: p50={latency['p50_ms']:.2f} ms "
          f"p95={latency['p95_ms']:.2f} ms p99={latency['p99_ms']:.2f} ms")
    mirrored = engine.metadata.serving_metrics("front_door")
    print(f"  mirrored into MetadataStore: requests={mirrored['requests']}, "
          f"tenants={sorted(mirrored['tenants'])}")

    platform.stop_serving_fleet()
    print("\nfront door and fleet stopped cleanly")


if __name__ == "__main__":
    main()
