"""Live-graph example: real-time sports scores with open-domain QA (§4, §6.1).

Builds the live knowledge graph — a stable-KG view joined with streaming
sports/stock/flight feeds whose text references are resolved against the
stable graph by the entity-resolution service — and then serves it:

* ad-hoc KGQ queries with traversal constraints and pushdown;
* query intents whose routing depends on argument semantics
  ("LeaderOf(Canada)" vs "LeaderOf(Chicago)");
* multi-turn context ("How about X?", "Where is she from?");
* human-in-the-loop curation hot-fixing a vandalized score.

Run with:  python examples/live_sports_qa.py
"""

from __future__ import annotations

from repro.datagen import (
    LiveStreamGenerator,
    StreamConfig,
    WorldConfig,
    generate_world,
    world_to_store,
)
from repro.live import CurationDecision, Intent, LiveGraphEngine
from repro.ml.nerd import NERDService
from repro.model import default_ontology


def main() -> None:
    ontology = default_ontology()
    world = generate_world(WorldConfig(seed=42))
    stable_kg = world_to_store(world)

    # The entity-resolution service used to link streaming references to the
    # stable graph is the same NERD stack that powers object resolution.
    nerd = NERDService.from_store(stable_kg, ontology)
    live = LiveGraphEngine(resolution_service=nerd)

    loaded = live.load_stable_view(stable_kg)
    events = LiveStreamGenerator(world, StreamConfig(num_games=6, num_stocks=4,
                                                     num_flights=4, seed=5)).all_events()
    live.ingest_events(events)
    stats = live.stats()
    print(f"Live KG: {stats['documents']} documents "
          f"({loaded} stable-view entities + streaming updates), "
          f"{stats['references_resolved']} stream references resolved to stable entities "
          f"({stats['references_unresolved']} left as text)")

    # ------------------------------------------------------------------ #
    # Ad-hoc KGQ queries.
    # ------------------------------------------------------------------ #
    team = world.of_type("sports_team")[0]
    score_query = (f'MATCH sports_game WHERE home_team.name CONTAINS "{team.name}" '
                   f"RETURN name, home_score, away_score, game_status")
    print(f"\nKGQ> {score_query}")
    print("  plan:", " -> ".join(live.explain(score_query)))
    for row in live.query(score_query).rows:
        print(f"  {row.values}")

    country = world.of_type("country")[0]
    leader_query = f'MATCH country WHERE name = "{country.name}" RETURN head_of_state.name'
    result = live.query(leader_query)
    print(f"\nKGQ> {leader_query}")
    print(f"  -> {result.first_value('head_of_state.name')}  "
          f"({result.latency_ms:.2f} ms, cached={result.from_cache})")

    # Virtual operators encapsulate reusable expressions.
    print(f"\nKGQ> CALL GameScore(\"{team.name}\")")
    for row in live.query(f'CALL GameScore("{team.name}")').rows[:2]:
        print(f"  {row.values}")

    # ------------------------------------------------------------------ #
    # Intents with semantics-dependent routing + multi-turn context.
    # ------------------------------------------------------------------ #
    city = world.of_type("city")[0]
    print("\n== question answering over the live KG ==")
    for intent in (Intent("LeaderOf", (country.name,)), Intent("LeaderOf", (city.name,))):
        answer = live.answer_intent(intent)
        print(f"  {intent.render():<40} -> {answer.answer}   "
              f"[routed to {answer.route_column}]")

    married = [a for a in world.of_type("music_artist") if a.facts.get("spouse")]
    first, second = married[0], married[1]
    live.context.clear()
    answer = live.answer_intent(Intent("SpouseOf", (first.name,)))
    print(f"  Who is {first.name} married to?          -> {answer.answer}")
    follow = live.answer_follow_up(f"How about {second.name}?")
    print(f"  How about {second.name}?                 -> {follow.answer}")
    where = live.answer_intent(Intent("Birthplace", ("she",)))
    print(f"  Where is she from?                       -> {where.answer}")

    # ------------------------------------------------------------------ #
    # Curation: quarantine a vandalized fact and hot-fix the live index.
    # ------------------------------------------------------------------ #
    game = live.index.kv.by_type("sports_game")[0]
    print(f"\n== curation ==")
    print(f"  incoming vandalized update for {game.name!r}: home_score=9999")
    vandalized = game
    vandalized.facts["home_score"] = [9999]
    findings = live.curation.screen(vandalized)
    print(f"  detector quarantined {len(findings)} fact(s): "
          f"{[f.kind.value for f in findings]}")
    live.apply_curation_decision(CurationDecision(
        entity_id=game.entity_id, predicate="home_score", action="edit", replacement=3,
    ))
    print(f"  after curation hot-fix: home_score="
          f"{live.index.get(game.entity_id).value('home_score')}")

    print(f"\np95 query latency so far: {live.latency_p95_ms():.2f} ms "
          f"over {len(live.executor.latencies_ms)} queries")


if __name__ == "__main__":
    main()
