"""Distributed KGQ execution: scatter-gather queries over the replica fleet.

Builds a Saga platform, materializes an incrementally maintained profile
view, starts a three-replica serving fleet, and drives the distributed query
path (see docs/serving.md):

* KGQ scatter-gather: one compilation, plan fragments per consistent-hash
  partition, replica-side execution, entity-ordered merge;
* per-fragment consistency enforcement (``any`` / ``bounded_staleness`` /
  ``read_your_writes``) with honest ``StaleReadError`` naming the laggards;
* a replica crash mid-fleet — the surviving replicas absorb its partitions;
* an anti-entropy audit catching injected divergence and repairing it with
  a targeted repair batch (no snapshot, no primary-side rebuild).

Run with:  python examples/distributed_query.py
"""

from __future__ import annotations

from repro import SagaPlatform
from repro.datagen import WorldConfig, default_source_suite, generate_world
from repro.engine.views import ViewDefinition, ViewDelta
from repro.errors import StaleReadError
from repro.serving import Consistency


def register_entity_profile(engine) -> None:
    """An incrementally maintained (apply_delta) profile view with types."""

    def row_for(subject):
        facts = engine.triples.facts_about(subject)
        entity_type = engine.triples.value_of(subject, "type")
        return {
            "subject": subject,
            "name": str(engine.triples.value_of(subject, "name") or ""),
            "fact_count": len(facts),
            "types": [str(entity_type)] if entity_type else [],
        }

    def create(context):
        return {s: row_for(s) for s in engine.triples.subjects()}

    def apply_delta(context, delta: ViewDelta):
        artifact = dict(context.artifact("entity_profile"))
        for subject in delta.changed:
            artifact[subject] = row_for(subject)
        for subject in delta.deleted:
            artifact.pop(subject, None)
        return artifact

    engine.register_view(ViewDefinition(
        "entity_profile", "analytics", create=create, apply_delta=apply_delta,
        description="typed per-entity profile rows for distributed queries",
    ))


def main() -> None:
    world = generate_world(WorldConfig(seed=42))
    platform = SagaPlatform()
    suite = default_source_suite(world)
    for source in suite[:2]:
        platform.register_source(source.source_id)
        platform.ingest_snapshot(source.source_id, source.entities)
    engine = platform.graph_engine
    register_entity_profile(engine)
    engine.materialize_views()
    print(f"KG ready: {engine.triples.entity_count()} entities, "
          f"head LSN {engine.minimum_version()}")

    fleet = platform.start_serving_fleet(views=["entity_profile"], num_replicas=3)
    fleet.drain()
    watermark = engine.view_manager.built_at_lsn("entity_profile")

    # ------------------------------------------------------------ #
    # Scatter-gather KGQs under the three consistency levels.
    # ------------------------------------------------------------ #
    query = 'MATCH song WHERE fact_count > 8 RETURN name, fact_count'
    print(f"\n== scatter-gather over 3 replicas: {query} ==")
    for consistency, label in (
        (Consistency.any(), "any"),
        (Consistency.bounded_staleness(0), "bounded_staleness(0)"),
        (Consistency.read_your_writes(watermark), f"read_your_writes({watermark})"),
    ):
        result = fleet.query(query, "entity_profile", consistency)
        print(f"  {label:<24} -> {len(result.rows)} rows, "
              f"{result.candidates_examined} candidates examined fleet-wide, "
              f"{result.latency_ms:.2f} ms")
    for line in fleet.query_router.explain(query, "entity_profile"):
        print(f"    {line}")

    # The same execution through the live engine facade.
    routed = platform.live.routed_query(query, "entity_profile")
    print(f"  via live.routed_query      -> {len(routed.rows)} rows "
          f"(identical merge order: "
          f"{[r.entity_id for r in routed.rows[:2]]} ...)")

    # ------------------------------------------------------------ #
    # Honest staleness: an unflushed write lags every replica.
    # ------------------------------------------------------------ #
    subject = sorted(engine.triples.subjects())[0]
    engine.publish_subjects(engine.triples, [subject], source_id="hotfix")
    try:
        fleet.query(query, "entity_profile", Consistency.bounded_staleness(0))
    except StaleReadError as exc:
        print(f"\n  bounded_staleness(0) before flush -> StaleReadError "
              f"(lagging: {exc.lagging})")
    engine.update_views()
    fleet.drain()
    result = fleet.query(query, "entity_profile", Consistency.bounded_staleness(0))
    print(f"  bounded_staleness(0) after drain  -> {len(result.rows)} rows")

    # ------------------------------------------------------------ #
    # Crash a replica: its partitions redistribute to the survivors.
    # ------------------------------------------------------------ #
    print("\n== replica crash during distributed queries ==")
    fleet.kill_replica("replica-1")
    result = fleet.query(query, "entity_profile")
    print(f"  replica-1 down; survivors answered {len(result.rows)} rows "
          f"(healthy: {fleet.router.healthy_replicas()})")
    fleet.restart_replica("replica-1")

    # ------------------------------------------------------------ #
    # Anti-entropy: inject divergence, audit, repair — targeted.
    # ------------------------------------------------------------ #
    print("\n== anti-entropy audit and targeted repair ==")
    node = fleet.replicas["replica-2"]
    victim_subject = sorted(engine.view_manager.artifact("entity_profile"))[0]
    node.get("entity_profile", victim_subject).facts["fact_count"] = [999999]
    report = fleet.auditor.audit_view("entity_profile")
    for audit in report.diverged():
        print(f"  audit: {audit.replica} diverged on {audit.mismatched} "
              f"(checked {report.rows_checked} rows at LSN {report.primary_lsn})")
    repaired = fleet.auditor.repair(report)
    clean = fleet.audit(repair=False)["entity_profile"].clean()
    print(f"  repaired rows per replica: {repaired}; fleet clean: {clean}; "
          f"snapshot resyncs: {node.snapshot_resyncs} (targeted, not snapshot)")

    # ------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------ #
    status = fleet.status()
    print("\n== fleet introspection ==")
    print(f"  query_router:  {status['query_router']}")
    print(f"  anti_entropy:  {status['anti_entropy']}")
    print(f"  view digest:   {engine.metadata.view_checksum('entity_profile')}")
    platform.stop_serving_fleet()


if __name__ == "__main__":
    main()
