"""Semantic annotation with NERD, plus embedding-backed fact curation (§5, §6.3).

Shows the two ML services that run on top of the constructed KG:

* **NERD** annotates free text with KG entities, resolving ambiguous mentions
  (two cities sharing a name) through the context and the NERD Entity View,
  and outperforming a popularity-only baseline on tail entities;
* **KG embeddings** (trained with the Marius-style partition buffer) rank the
  multiple values of a high-cardinality fact, flag implausible facts for
  auditing, and impute missing facts via nearest-neighbour search.

Run with:  python examples/semantic_annotations.py
"""

from __future__ import annotations

from repro.baselines import LegacyEntityLinker
from repro.datagen import (
    TextCorpusConfig,
    TextCorpusGenerator,
    WorldConfig,
    generate_world,
    world_to_store,
)
from repro.engine import VectorDB
from repro.ml.embeddings import (
    EmbeddingConfig,
    EmbeddingTasks,
    PartitionBufferTrainer,
    PartitionConfig,
    TrainerConfig,
    extract_edges,
)
from repro.ml.nerd import NERDService
from repro.model import default_ontology


def annotate_passages(nerd: NERDService, legacy: LegacyEntityLinker, world) -> None:
    """Annotate generated passages and compare NERD with the legacy linker."""
    passages = TextCorpusGenerator(world, TextCorpusConfig(num_passages=40, seed=9)).generate()
    print("== semantic annotation ==")
    shown = 0
    nerd_correct = legacy_correct = scored = 0
    for passage in passages:
        gold = passage.mentions[0]
        nerd_result = nerd.link_mention(gold.mention, context_text=passage.text)
        legacy_result = legacy.link_mention(gold.mention, context_text=passage.text)
        scored += 1
        nerd_correct += int(nerd_result.entity_id == gold.truth_id)
        legacy_correct += int(legacy_result.entity_id == gold.truth_id)
        if shown < 4:
            shown += 1
            print(f'  "{passage.text}"')
            print(f"    mention: {gold.mention!r}  (tail entity: {not gold.is_head})")
            print(f"    NERD   -> {world.name_of(nerd_result.entity_id) or 'REJECTED':<26} "
                  f"confidence={nerd_result.confidence:.2f}")
            print(f"    legacy -> {world.name_of(legacy_result.entity_id) or 'REJECTED':<26} "
                  f"confidence={legacy_result.confidence:.2f}")
    print(f"\n  accuracy over {scored} labelled mentions: "
          f"NERD {nerd_correct / scored:.2%} vs legacy {legacy_correct / scored:.2%}")


def embedding_tasks(world, store) -> None:
    """Train embeddings with the partition buffer and run the three tasks."""
    print("\n== KG embeddings (partition-buffer training) ==")
    edges = extract_edges(store)
    trainer = PartitionBufferTrainer(
        "transe",
        EmbeddingConfig(dimension=24, seed=3),
        TrainerConfig(epochs=4, batch_size=256, seed=3),
        PartitionConfig(num_partitions=8, buffer_partitions=2),
    )
    report = trainer.train(edges)
    print(f"  trained TransE on {edges.num_edges} relationship facts in "
          f"{report.seconds:.2f}s, peak parameter memory "
          f"{report.peak_memory_bytes // 1024} KiB, {report.partition_swaps} partition swaps")

    tasks = EmbeddingTasks(trainer.model, edges)

    # Fact ranking: dominant record label among candidates.
    artist = next(a for a in world.of_type("music_artist")
                  if a.truth_id in edges.entity_index
                  and a.facts.get("record_label") in edges.entity_index)
    labels = [l.truth_id for l in world.of_type("record_label")
              if l.truth_id in edges.entity_index][:4]
    if artist.facts["record_label"] not in labels:
        labels[0] = artist.facts["record_label"]
    ranked = tasks.rank_facts(artist.truth_id, "record_label", labels)
    print(f"\n  fact ranking — record labels for {artist.name}:")
    for fact in ranked:
        marker = "  <- ground truth" if fact.obj == artist.facts["record_label"] else ""
        print(f"    #{fact.rank} {world.name_of(fact.obj):<22} score={fact.score:.3f}{marker}")

    # Fact verification: plant an implausible fact and check it gets flagged.
    wrong_label = next(l.truth_id for l in world.of_type("record_label")
                       if l.truth_id in edges.entity_index
                       and l.truth_id != artist.facts["record_label"])
    audit_set = [(a.truth_id, "record_label", a.facts["record_label"])
                 for a in world.of_type("music_artist")
                 if a.truth_id in edges.entity_index
                 and a.facts.get("record_label") in edges.entity_index][:15]
    audit_set.append((artist.truth_id, "record_label", wrong_label))
    findings = tasks.verify_facts(audit_set, zscore_threshold=-1.0)
    print(f"\n  fact verification — {len(findings)} fact(s) flagged for auditing "
          f"out of {len(audit_set)}")

    # Missing-fact imputation via the Vector DB serving path.
    vector_db = VectorDB(dimension=trainer.model.entity_embeddings.shape[1])
    tasks.export_to_vector_db(vector_db)
    song = next(s for s in world.of_type("song") if s.truth_id in edges.entity_index)
    candidates = tasks.impute_with_vector_db(vector_db, song.truth_id, "performed_by", k=3)
    print(f"\n  missing-fact imputation — candidate performers for {song.name!r}:")
    for candidate in candidates:
        print(f"    {world.name_of(candidate.candidate):<24} score={candidate.score:.3f}")


def main() -> None:
    ontology = default_ontology()
    world = generate_world(WorldConfig(seed=23))
    store = world_to_store(world)

    nerd = NERDService.from_store(store, ontology)
    legacy = LegacyEntityLinker(nerd.view, ontology)

    annotate_passages(nerd, legacy, world)
    embedding_tasks(world, store)


if __name__ == "__main__":
    main()
