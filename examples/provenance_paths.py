"""Regular path queries with provenance witness paths over a small ontology.

Builds a tiny geographic ontology in the live index and runs three REACH
queries against it:

1. ``part_of*`` ancestry from a neighborhood — the tree-shaped closure the
   planner serves from the pre/post-order interval encoding;
2. ``^part_of+`` descendants of a country — one preorder range scan;
3. an alternation ``(part_of|twinned_with)/part_of*`` that no interval can
   serve, evaluated as an automaton product over the adjacency bitmaps.

Every answer row carries a *witness path*: the canonical (shortest, then
lexicographically least) sequence of labeled edges proving the answer is
reachable — the provenance-semiring annotation described in docs/kgq.md.

Run with:  python examples/provenance_paths.py
"""

from __future__ import annotations

from repro.live.executor import QueryExecutor
from repro.live.index import LiveEntityDocument, LiveIndex
from repro.live.kgq import parse
from repro.live.planner import QueryPlanner


def ontology() -> list[LiveEntityDocument]:
    """A small place hierarchy plus one non-tree ``twinned_with`` edge."""

    def place(eid: str, etype: str, name: str, **facts: list[str]) -> LiveEntityDocument:
        return LiveEntityDocument(
            entity_id=eid, entity_type=etype, name=name,
            facts=dict(facts), timestamp=1,
        )

    return [
        place("earth", "planet", "Earth"),
        place("freedonia", "country", "Freedonia", part_of=["earth"]),
        place("sylvania", "country", "Sylvania", part_of=["earth"]),
        place("north-province", "region", "North Province", part_of=["freedonia"]),
        place("south-province", "region", "South Province", part_of=["freedonia"]),
        place("capital-city", "city", "Capital City", part_of=["north-province"],
              twinned_with=["port-azure"]),
        place("harborview", "city", "Harborview", part_of=["south-province"]),
        place("port-azure", "city", "Port Azure", part_of=["sylvania"]),
        place("old-town", "neighborhood", "Old Town", part_of=["capital-city"]),
        place("dockside", "neighborhood", "Dockside", part_of=["harborview"]),
    ]


def show(title: str, text: str, executor: QueryExecutor, planner: QueryPlanner) -> None:
    plan = planner.plan(parse(text))
    print(f"\n{title}\n  {text}")
    for line in plan.explain():
        print(f"    {line}")
    result = executor.execute(plan)
    for row in result.rows:
        hops = " -> ".join(f"[{label}] {dst}" for _, label, dst in row.witness)
        path = f"(seed) {hops}" if hops else "(seed)"
        name = row.values.get("name", "")
        if isinstance(name, list):
            name = name[0] if name else ""
        print(f"  {row.entity_id:<16} {name:<16} {path}")


def main() -> None:
    index = LiveIndex()
    index.upsert_many(ontology())
    executor = QueryExecutor(index)
    planner = QueryPlanner(selectivity=index.seed_selectivity)

    show(
        "1. Ancestry of Old Town (interval-encoded tree closure):",
        'MATCH neighborhood WHERE name = "Old Town" REACH part_of* RETURN name',
        executor, planner,
    )
    show(
        "2. Cities inside Freedonia (descendant range scan, TO-typed):",
        'MATCH country WHERE name = "Freedonia" REACH ^part_of+ TO city RETURN name',
        executor, planner,
    )
    show(
        "3. Where does Capital City lead via containment or twinning "
        "(automaton product):",
        'MATCH city WHERE name = "Capital City" '
        "REACH (part_of|twinned_with)/part_of* RETURN name",
        executor, planner,
    )


if __name__ == "__main__":
    main()
