"""STRSIM — learned string similarity improves matching recall (§5.1).

The paper reports that the learned (neural) string similarity functions,
trained with distant supervision from KG aliases and typo augmentation, lift
matching recall by more than 20 points over deterministic similarities when
typos and synonyms (nicknames) are present, at the same level of precision.

The benchmark builds a name-matching workload from the ground-truth world
(positive pairs = alias/nickname/typo variants of the same entity, negatives =
names of different entities), trains the encoder on the KG's alias groups, and
compares recall at a fixed high-precision operating point against the
deterministic Jaro-Winkler similarity.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.datagen.names import make_typo, synonym_lexicon
from repro.ml.encoders import EncoderConfig
from repro.ml.similarity import jaro_winkler_similarity
from repro.ml.training import DistantSupervisionConfig, train_string_encoder

MATCH_THRESHOLD = 0.70
PAPER_RECALL_GAIN_POINTS = 20.0


class _JaroWinklerScorer:
    """Adapter exposing the deterministic baseline via the encoder interface."""

    def similarity(self, first, second):
        return jaro_winkler_similarity(first, second)


class _CombinedScorer:
    """Deterministic + learned features, the way matching models consume them.

    Saga's matchers use the learned similarity *alongside* the deterministic
    library (each is one feature); the recall claim is about what the learned
    feature adds on top, so the combined scorer takes the best of the two.
    """

    def __init__(self, encoder):
        self.encoder = encoder

    def similarity(self, first, second):
        return max(jaro_winkler_similarity(first, second),
                   self.encoder.similarity(first, second))


@pytest.fixture(scope="module")
def name_matching_workload(bench_world):
    """Positive and negative person-name pairs with typos and nicknames."""
    rng = np.random.default_rng(123)
    people = [entity for entity in bench_world.entities.values()
              if entity.entity_type in ("person", "music_artist", "actor", "athlete")]
    positives = []
    negatives = []
    for index, person in enumerate(people):
        variants = [alias for alias in person.aliases]
        variants.append(make_typo(person.name, rng))
        for variant in variants:
            if variant and variant != person.name:
                positives.append((person.name, variant))
        other = people[(index + 17) % len(people)]
        if other.truth_id != person.truth_id:
            negatives.append((person.name, other.name))
    return positives, negatives


@pytest.fixture(scope="module")
def trained_encoder(bench_world):
    return train_string_encoder(
        bench_world.alias_groups(),
        synonyms=synonym_lexicon(),
        encoder_config=EncoderConfig(dimension=64, epochs=4, seed=21),
        supervision_config=DistantSupervisionConfig(max_triplets=8000, seed=21),
    )


def _evaluate(scorer, positives, negatives, threshold=MATCH_THRESHOLD):
    true_positive = sum(1 for a, b in positives if scorer.similarity(a, b) >= threshold)
    false_positive = sum(1 for a, b in negatives if scorer.similarity(a, b) >= threshold)
    recall = true_positive / len(positives) if positives else 0.0
    precision = (
        true_positive / (true_positive + false_positive)
        if (true_positive + false_positive) else 0.0
    )
    return {"precision": precision, "recall": recall}


def bench_strsim_learned_scoring(benchmark, trained_encoder, name_matching_workload):
    """Scoring throughput of the deterministic+learned feature combination."""
    positives, negatives = name_matching_workload
    scorer = _CombinedScorer(trained_encoder)
    metrics = benchmark(lambda: _evaluate(scorer, positives[:300], negatives[:300]))
    assert metrics["recall"] > 0.0


def bench_strsim_deterministic_scoring(benchmark, name_matching_workload):
    """Scoring throughput of the deterministic Jaro-Winkler baseline."""
    positives, negatives = name_matching_workload
    metrics = benchmark(lambda: _evaluate(_JaroWinklerScorer(), positives[:300], negatives[:300]))
    assert 0.0 <= metrics["recall"] <= 1.0


def bench_strsim_recall_improvement(benchmark, trained_encoder, name_matching_workload):
    """The §5.1 claim: learned similarity recovers synonym/typo matches."""
    positives, negatives = name_matching_workload
    combined = _evaluate(_CombinedScorer(trained_encoder), positives, negatives)
    learned_only = _evaluate(trained_encoder, positives, negatives)
    deterministic = _evaluate(_JaroWinklerScorer(), positives, negatives)
    gain_points = (combined["recall"] - deterministic["recall"]) * 100.0
    print_table(
        "Learned vs deterministic string similarity on typo/nickname matching "
        "(paper: >20 point recall gain)",
        ["similarity features", "precision", "recall", "recall_gain_points",
         "paper_gain_points"],
        [
            ["deterministic only (jaro_winkler)", deterministic["precision"],
             deterministic["recall"], 0.0, 0.0],
            ["learned encoder only", learned_only["precision"], learned_only["recall"],
             (learned_only["recall"] - deterministic["recall"]) * 100.0, ""],
            ["deterministic + learned", combined["precision"], combined["recall"],
             gain_points, PAPER_RECALL_GAIN_POINTS],
        ],
    )
    assert gain_points > 10.0, "the learned feature must add double-digit recall points"
    assert combined["precision"] > 0.7, "the gain must not come from collapsing precision"
    benchmark(lambda: trained_encoder.similarity("Robert Smith", "Bob Smith"))
