"""EMBED — KG embedding training regimes (§5.3).

The paper trains multiple embedding models (TransE, DistMult) over a
billion-fact KG and argues for single-node, external-memory (Marius-style)
partition-buffer training: it bounds memory, keeps utilization high, and lets
several models train concurrently, whereas DGL-KE-style distributed training
needs the whole cluster per model and PyTorch-BigGraph-style training leaves
the hardware underutilized (multi-day runs).

The benchmark trains the same models on the reference KG under each regime and
reports wall-clock, peak parameter memory, partition swaps, and link-prediction
quality (MRR / hits@10) supporting the fact ranking / verification / imputation
tasks.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.baselines import DGLKEStyleTrainer, PBGStyleTrainer
from repro.ml.embeddings import (
    EmbeddingConfig,
    EmbeddingTasks,
    InMemoryTrainer,
    PartitionBufferTrainer,
    PartitionConfig,
    TrainerConfig,
    evaluate_link_prediction,
    extract_edges,
)

MODEL_CONFIG = EmbeddingConfig(dimension=24, seed=7)
TRAINER_CONFIG = TrainerConfig(epochs=4, batch_size=256, seed=7)


@pytest.fixture(scope="module")
def edge_splits(bench_store):
    edges = extract_edges(bench_store)
    return edges.split(test_fraction=0.1, seed=13)


def bench_embed_partition_buffer_training(benchmark, edge_splits):
    """Marius-style partition-buffer training of TransE."""
    train, _ = edge_splits

    def run():
        trainer = PartitionBufferTrainer(
            "transe", MODEL_CONFIG, TRAINER_CONFIG,
            PartitionConfig(num_partitions=8, buffer_partitions=2),
        )
        return trainer.train(train)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.partition_swaps > 0


def bench_embed_full_memory_training(benchmark, edge_splits):
    """Full in-memory training (the memory-unbounded reference point)."""
    train, _ = edge_splits

    def run():
        return InMemoryTrainer("transe", MODEL_CONFIG, TRAINER_CONFIG).train(train)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.final_loss >= 0.0


def bench_embed_regime_comparison(benchmark, edge_splits):
    """The §5.3 comparison table: Marius-style vs DGL-KE-style vs PBG-style."""
    train, test = edge_splits

    marius = PartitionBufferTrainer(
        "transe", MODEL_CONFIG, TRAINER_CONFIG,
        PartitionConfig(num_partitions=8, buffer_partitions=2),
    )
    marius_report = marius.train(train)
    marius_quality = evaluate_link_prediction(marius.model, test.edges[:80])

    full = InMemoryTrainer("transe", MODEL_CONFIG, TRAINER_CONFIG)
    full_report = full.train(train)
    full_quality = evaluate_link_prediction(full.model, test.edges[:80])

    dglke = DGLKEStyleTrainer("transe", MODEL_CONFIG, TRAINER_CONFIG)
    dglke_report = dglke.train(train)

    pbg = PBGStyleTrainer("transe", MODEL_CONFIG, TRAINER_CONFIG, utilization=0.3)
    pbg_report = pbg.train(train)

    distmult = PartitionBufferTrainer(
        "distmult", MODEL_CONFIG, TRAINER_CONFIG,
        PartitionConfig(num_partitions=8, buffer_partitions=2),
    )
    distmult_report = distmult.train(train)
    distmult_quality = evaluate_link_prediction(distmult.model, test.edges[:80])

    rows = [
        ["partition-buffer TransE (Marius-style)", marius_report.seconds,
         marius_report.peak_memory_bytes // 1024, marius_report.partition_swaps,
         marius_quality["mrr"], marius_quality["hits@10"]],
        ["partition-buffer DistMult (Marius-style)", distmult_report.seconds,
         distmult_report.peak_memory_bytes // 1024, distmult_report.partition_swaps,
         distmult_quality["mrr"], distmult_quality["hits@10"]],
        ["full-memory TransE", full_report.seconds,
         full_report.peak_memory_bytes // 1024, 0, full_quality["mrr"],
         full_quality["hits@10"]],
        ["DGL-KE-style (cluster-exclusive)", dglke_report.seconds,
         dglke_report.peak_memory_bytes // 1024, 0, "", ""],
        ["PBG-style (low utilization)", pbg_report.seconds,
         pbg_report.peak_memory_bytes // 1024, 0, "", ""],
    ]
    print_table(
        "Embedding training regimes (§5.3): bounded memory + usable quality "
        "for the partition-buffer path",
        ["regime", "seconds", "peak_kb", "partition_swaps", "mrr", "hits@10"],
        rows,
    )

    # Shape claims from the paper's argument:
    # 1. The partition buffer bounds memory below full residency (and far below
    #    the distributed full-replication regime).
    assert marius_report.peak_memory_bytes < full_report.peak_memory_bytes
    assert dglke_report.peak_memory_bytes > full_report.peak_memory_bytes
    # 2. The low-utilization PBG-style regime takes far longer wall-clock.
    assert pbg_report.seconds > marius_report.seconds
    # 3. External-memory training still learns something useful for the
    #    downstream tasks (better than random rank).
    assert marius_quality["mrr"] > 2.0 / len(train.entity_ids)
    # 4. The task layer works on top of the trained model.
    tasks = EmbeddingTasks(marius.model, train)
    subject = train.entity_ids[int(train.edges[0][0])]
    relation = train.relation_ids[int(train.edges[0][1])]
    assert tasks.impute_missing(subject, relation, k=3)

    benchmark(lambda: evaluate_link_prediction(marius.model, test.edges[:20]))
