"""RPQ — interval-encoded reachability vs the naive BFS reference.

The REACH operator evaluates over per-predicate adjacency bitmaps maintained
incrementally in the :class:`~repro.live.index.LiveIndex`; tree-shaped
closures (``part_of*`` ancestry, ``^part_of+`` descendants) additionally take
the pre/post-order interval encoding (:class:`~repro.live.rpq.IntervalIndex`),
turning iteration-to-fixpoint into parent-chain walks and one preorder range
scan.  The baseline is :func:`~repro.live.rpq.naive_rpq` — the same
set-based BFS the seeded equivalence suite uses as its oracle, which
re-derives the edge relation from the documents per query (the cost of *not*
maintaining the index).  Every timed pair is first cross-checked for
identical answers and witnesses.

Gated sections (≥3x):

* **ancestry** — ``part_of*`` from a batch of leaf seeds over a ~4k-node
  ontology tree: parent-chain walks over the interval index vs the naive
  rebuild-and-BFS;
* **descendants** — ``^part_of+`` from an interior node: one preorder range
  scan vs frontier expansion to fixpoint.

Reported ungated: the automaton-product path over the bitmaps for an
alternation expression no interval can serve — the maintained-bitmap win
without the encoding.

Writes ``BENCH_RPQ.json`` (see ``write_bench_json``) so CI tracks the
trajectory per commit.
"""

from __future__ import annotations

import random
import time

from benchmarks.conftest import print_table, write_bench_json
from repro.live.executor import QueryExecutor
from repro.live.index import LiveEntityDocument, LiveIndex
from repro.live.kgq import parse
from repro.live.rpq import compile_automaton, naive_rpq, single_label_closure

NUM_NODES = 4_000
FANOUT = 4
ANCESTRY_GATE = 3.0
DESCENDANTS_GATE = 3.0


def build_index() -> tuple[LiveIndex, list[LiveEntityDocument]]:
    """A ~4k-node ``part_of`` tree (fanout 4) with sparse ``knows`` edges."""
    rng = random.Random(7_117)
    index = LiveIndex(num_shards=16)
    documents = []
    for i in range(NUM_NODES):
        facts: dict = {"rank": [i % 97]}
        if i > 0:
            facts["part_of"] = [f"c{(i - 1) // FANOUT:05d}"]
        if rng.random() < 0.25:
            facts["knows"] = [f"c{rng.randrange(NUM_NODES):05d}"]
        documents.append(
            LiveEntityDocument(
                entity_id=f"c{i:05d}",
                entity_type="concept",
                name=f"Concept {i}",
                facts=facts,
                timestamp=1,
            )
        )
    index.upsert_many(documents)
    return index, documents


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _measure(index: LiveIndex, documents: list[LiveEntityDocument]) -> dict:
    executor = QueryExecutor(index)
    rng = random.Random(11)
    leaf_floor = (NUM_NODES - 2) // FANOUT + 1     # every node from here on is a leaf
    sections = {
        "ancestry": {
            "expression": "part_of*",
            "seeds": sorted(f"c{rng.randrange(leaf_floor, NUM_NODES):05d}" for _ in range(16)),
        },
        "descendants": {
            "expression": "^part_of+",
            "seeds": ["c00007"],                   # an interior node's whole subtree
        },
        "product_alternation": {
            "expression": "(part_of|knows)/part_of*",
            "seeds": sorted(f"c{rng.randrange(NUM_NODES):05d}" for _ in range(8)),
        },
    }
    results: dict[str, dict] = {}
    for name, spec in sections.items():
        expr = parse(f"MATCH concept REACH {spec['expression']} RETURN name").reach
        automaton = compile_automaton(expr)
        closure = single_label_closure(expr)
        seeds = spec["seeds"]
        indexed_answers, _ = executor.rpq.evaluate("", seeds, automaton, closure)
        naive_answers, _ = naive_rpq(documents, seeds, automaton)
        assert indexed_answers == naive_answers, name       # rows AND witnesses
        if closure is not None:
            assert executor.rpq.interval_hits > 0, name     # the fast path ran
        indexed_s = _best_of(lambda: executor.rpq.evaluate("", seeds, automaton, closure))
        naive_s = _best_of(lambda: naive_rpq(documents, seeds, automaton))
        results[name] = {
            "expression": spec["expression"],
            "seeds": len(seeds),
            "answers": len(indexed_answers),
            "indexed_ms": indexed_s * 1000.0,
            "naive_bfs_ms": naive_s * 1000.0,
            "speedup": naive_s / max(indexed_s, 1e-9),
        }
    return results


def bench_rpq_interval_vs_naive_bfs(benchmark):
    """Interval/bitmap REACH evaluation vs the naive BFS reference."""
    index, documents = build_index()
    gates = {"ancestry": ANCESTRY_GATE, "descendants": DESCENDANTS_GATE}
    # Re-measure on a gate miss to absorb scheduling jitter (same pattern as
    # STORE/KGQEXEC): the ratios are structural, only the timing is noisy.
    for _ in range(3):
        results = _measure(index, documents)
        if all(results[name]["speedup"] >= floor for name, floor in gates.items()):
            break
    print_table(
        f"REACH over maintained adjacency vs naive BFS ({NUM_NODES} nodes, fanout {FANOUT})",
        ["section", "expression", "seeds", "answers", "indexed_ms", "naive_bfs_ms", "speedup"],
        [
            [name, r["expression"], r["seeds"], r["answers"],
             r["indexed_ms"], r["naive_bfs_ms"], r["speedup"]]
            for name, r in results.items()
        ],
    )
    write_bench_json("BENCH_RPQ.json", {
        "benchmark": "RPQ",
        "workload": {
            "nodes": NUM_NODES,
            "fanout": FANOUT,
            "sections": sorted(results),
        },
        "gates": gates,
        "sections": results,
    })
    for name, floor in gates.items():
        assert results[name]["speedup"] >= floor, (
            f"{name}: {results[name]['speedup']:.1f}x < {floor}x gate"
        )

    executor = QueryExecutor(index)
    expr = parse("MATCH concept REACH part_of* RETURN name").reach
    automaton = compile_automaton(expr)
    closure = single_label_closure(expr)
    seeds = [f"c{NUM_NODES - 1:05d}"]
    benchmark(lambda: executor.rpq.evaluate("", seeds, automaton, closure))
