"""FIG8 — Graph Engine view computation vs the legacy implementation (Figure 8).

The paper computes six schematized entity-centric views (People, Artists,
Playlists, Playlist Artists, Songs, Media People) with the analytics store and
reports a 1.05x–14.53x speedup (≈5x average) over a legacy Spark-based
implementation.  This benchmark computes the same kinds of join-heavy views
with the optimized hash-join warehouse and the row-at-a-time legacy baseline on
identical synthetic data and reports the per-view speedups.  Absolute numbers
differ from the paper (our substrate is in-process Python, not a production
warehouse against Spark clusters) but the shape — every view at least as fast,
join-heavy views gaining the most, roughly an order of magnitude on the best
case — is the reproduced claim.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from repro.baselines import LegacyViewEngine
from repro.engine.analytics import AnalyticsStore, EntityViewSpec
from repro.engine.views import ViewCatalog, ViewDefinition, ViewManager

#: The six production views of Figure 8, expressed over our ontology.
VIEW_SPECS = [
    EntityViewSpec(
        name="People",
        entity_type="person",
        predicates=("birth_date", "occupation"),
        reference_joins={"birth_place_name": "birth_place", "spouse_name": "spouse"},
    ),
    EntityViewSpec(
        name="Artists",
        entity_type="music_artist",
        predicates=("birth_date", "occupation"),
        reference_joins={"label_name": "record_label", "birth_place_name": "birth_place"},
        nested_joins={"label_city": ("record_label", "headquarters")},
    ),
    EntityViewSpec(
        name="Playlists",
        entity_type="playlist",
        predicates=("genre",),
        reference_joins={"track_names": "track"},
    ),
    EntityViewSpec(
        name="Playlist Artists",
        entity_type="playlist",
        nested_joins={"artist_names": ("track", "performed_by")},
    ),
    EntityViewSpec(
        name="Songs",
        entity_type="song",
        predicates=("genre", "duration_seconds", "release_date"),
        reference_joins={"artist_name": "performed_by"},
    ),
    EntityViewSpec(
        name="Media People",
        entity_type="actor",
        predicates=("birth_date",),
        reference_joins={"birth_place_name": "birth_place", "spouse_name": "spouse"},
        nested_joins={"spouse_birth_place": ("spouse", "birth_place")},
    ),
]

#: Paper-reported speedups for reference in the printed table.
PAPER_SPEEDUPS = {
    "People": 5.31,
    "Artists": 1.05,
    "Playlists": 2.44,
    "Playlist Artists": 3.50,
    "Songs": 1.05,
    "Media People": 14.53,
}


@pytest.fixture(scope="module")
def engines(bench_store):
    triples = list(bench_store)
    optimized = AnalyticsStore()
    optimized.ingest(triples)
    legacy = LegacyViewEngine.from_triples(triples)
    return optimized, legacy


def _measure(callable_, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def bench_fig8_optimized_views(benchmark, engines):
    """Optimized analytics-store computation of all six Figure 8 views."""
    optimized, _ = engines

    def run_all():
        return [optimized.entity_view(spec) for spec in VIEW_SPECS]

    views = benchmark(run_all)
    assert all(len(view) > 0 for view in views)


def bench_fig8_legacy_views(benchmark, engines):
    """Legacy row-at-a-time computation of the same views (the Figure 8 baseline)."""
    _, legacy = engines

    def run_all():
        return [legacy.entity_view(spec) for spec in VIEW_SPECS]

    views = benchmark(run_all)
    assert all(len(view) > 0 for view in views)


def bench_fig8_selective_view_maintenance(benchmark, engines):
    """Maintaining the six Figure 8 views selectively after a small delta.

    Each view is registered in a catalog with a scope covering the subjects
    it materializes, so changing a handful of song entities only rebuilds the
    views that actually read them instead of all six.
    """
    optimized, _ = engines
    catalog = ViewCatalog()
    manager = ViewManager(catalog, engines={"analytics": optimized})
    view_subjects: dict[str, set[str]] = {}
    for spec in VIEW_SPECS:
        view_subjects[spec.name] = {
            row["subject"] for row in optimized.entity_view(spec).rows
        }

        def create(context, spec=spec):
            return context.engine("analytics").entity_view(spec)

        def scope(entity_id, name=spec.name):
            return entity_id in view_subjects[name]

        catalog.register(ViewDefinition(
            name=spec.name, engine="analytics", create=create, scope=scope,
        ))
    manager.materialize()

    changed = sorted(view_subjects["Songs"])[:10]
    full = manager.update(changed, selective=False)
    selective = manager.update(changed)
    assert len(selective) < len(full)
    assert "Songs" in selective and "Media People" not in selective

    full_seconds = _measure(lambda: manager.update(changed, selective=False))
    selective_seconds = _measure(lambda: manager.update(changed))
    print_table(
        "Figure 8 views — selective vs full maintenance (10 changed songs)",
        ["configuration", "views_rebuilt", "seconds"],
        [
            ["full maintenance", len(full), full_seconds],
            ["selective maintenance", len(selective), selective_seconds],
        ],
    )
    # 10% tolerance: the margin here is only the skipped views, so shared-CI
    # scheduling jitter must not turn a non-regression into a red build.
    assert selective_seconds <= full_seconds * 1.10
    benchmark(lambda: manager.update(changed))


def bench_fig8_speedup_table(benchmark, engines):
    """Per-view legacy/optimized latency ratios — the series plotted in Figure 8."""
    optimized, legacy = engines
    rows = []
    speedups = {}
    for spec in VIEW_SPECS:
        optimized_rows = optimized.entity_view(spec)
        legacy_rows = legacy.entity_view(spec)
        assert {r["subject"] for r in optimized_rows.rows} == {
            r["subject"] for r in legacy_rows.rows
        }, f"view {spec.name} must produce identical entity sets"
        optimized_seconds = _measure(lambda spec=spec: optimized.entity_view(spec))
        legacy_seconds = _measure(lambda spec=spec: legacy.entity_view(spec))
        speedup = legacy_seconds / max(optimized_seconds, 1e-9)
        speedups[spec.name] = speedup
        rows.append([spec.name, len(optimized_rows), legacy_seconds * 1000,
                     optimized_seconds * 1000, speedup, PAPER_SPEEDUPS[spec.name]])
    average = sum(speedups.values()) / len(speedups)
    rows.append(["AVERAGE", "", "", "", average,
                 sum(PAPER_SPEEDUPS.values()) / len(PAPER_SPEEDUPS)])
    print_table(
        "Figure 8 — view computation: legacy vs Graph Engine analytics store",
        ["view", "rows", "legacy_ms", "engine_ms", "speedup_x", "paper_speedup_x"],
        rows,
    )

    # Shape claims: no view slower, the best case near an order of magnitude,
    # and a healthy average speedup.
    assert all(value >= 1.0 for value in speedups.values())
    assert max(speedups.values()) >= 5.0
    assert average >= 2.0

    benchmark(lambda: optimized.entity_view(VIEW_SPECS[0]))
