"""CONSTR / CONSTRUCT — incremental and parallel construction (§2.4, Figure 5).

Saga's construction pipeline always consumes source *deltas*: the ingestion
platform eagerly partitions each new snapshot into Added / Updated / Deleted /
Volatile payloads so that only changed entities flow through linking and
fusion.  This module quantifies two design choices the section argues for:

* **CONSTR** — after a source has been consumed once, consuming a
  lightly-changed snapshot incrementally is far cheaper than rebuilding the
  KG from the full snapshot, and the volatile partition bypasses linking
  entirely;
* **CONSTRUCT** — source-specific processing is embarrassingly parallel with
  fusion as the only synchronization point: the staged scheduler prepares
  every source/entity-type block independently, so a worker pool shrinks the
  pre-fusion work to its longest block while the serialized barrier stays
  fixed.  Following the QUERYROUTE precedent, the speedup is modeled from one
  staged run's measured per-block times (LPT makespan at the target pool
  size) — CI runners cannot be trusted for wall-clock parallelism — with the
  measured sequential wall time reported alongside, and byte-identical output
  asserted.  Results land in ``BENCH_CONSTRUCT.json`` for the CI artifact
  trail.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table, write_bench_json
from repro.construction import (
    IncrementalConstructor,
    KnowledgeConstructionPipeline,
    lpt_makespan,
)
from repro.datagen import SourceSpec, evolve_source, generate_source
from repro.ingestion import DeltaComputer
from repro.model.delta import SourceDelta


@pytest.fixture(scope="module")
def snapshots(bench_world):
    """Two consecutive snapshots of a music source with realistic churn."""
    spec = SourceSpec(
        source_id="musicdb",
        entity_types=("music_artist", "album", "song", "record_label"),
        coverage=0.9,
        duplicate_rate=0.05,
        seed=77,
    )
    first = generate_source(bench_world, spec)
    second = evolve_source(bench_world, first, added_fraction=0.1,
                           updated_fraction=0.08, deleted_fraction=0.02)
    return first, second


def _bootstrap(ontology, first):
    constructor = IncrementalConstructor(ontology)
    constructor.consume(SourceDelta.initial("musicdb", first.entities))
    return constructor


def bench_constr_full_reconstruction(benchmark, ontology, snapshots):
    """Baseline: rebuild the KG from scratch with the full second snapshot."""
    _, second = snapshots

    def rebuild():
        constructor = IncrementalConstructor(ontology)
        return constructor.consume(SourceDelta.initial("musicdb", second.entities))

    report = benchmark.pedantic(rebuild, rounds=2, iterations=1)
    assert report.linked_added == len(second.entities)


def bench_constr_incremental_delta(benchmark, ontology, snapshots):
    """Saga's path: consume only the delta between the two snapshots."""
    first, second = snapshots
    constructor = _bootstrap(ontology, first)
    delta_computer = DeltaComputer(ontology=ontology)
    delta_computer.compute("musicdb", first.entities)
    delta = delta_computer.peek("musicdb", second.entities)

    def consume_delta():
        # Work on a copy of the link/fact state so each round is comparable.
        snapshot_constructor = IncrementalConstructor(ontology, store=constructor.store.snapshot())
        snapshot_constructor.link_table = dict(constructor.link_table)
        return snapshot_constructor.consume(delta)

    report = benchmark.pedantic(consume_delta, rounds=2, iterations=1)
    assert report.linked_added <= delta.change_count()


def bench_constr_speedup_report(benchmark, ontology, snapshots):
    """Report: delta consumption vs full reconstruction, plus delta sizes."""
    first, second = snapshots
    constructor = _bootstrap(ontology, first)
    delta_computer = DeltaComputer(ontology=ontology)
    delta_computer.compute("musicdb", first.entities)
    delta = delta_computer.peek("musicdb", second.entities)

    started = time.perf_counter()
    fresh = IncrementalConstructor(ontology)
    fresh.consume(SourceDelta.initial("musicdb", second.entities))
    full_seconds = time.perf_counter() - started

    started = time.perf_counter()
    incremental = IncrementalConstructor(ontology, store=constructor.store.snapshot())
    incremental.link_table = dict(constructor.link_table)
    incremental.consume(delta)
    incremental_seconds = time.perf_counter() - started

    speedup = full_seconds / max(incremental_seconds, 1e-9)
    print_table(
        "Incremental delta-based construction vs full re-construction (§2.4)",
        ["metric", "value"],
        [
            ["snapshot entities", len(second.entities)],
            ["delta added", len(delta.added)],
            ["delta updated", len(delta.updated)],
            ["delta deleted", len(delta.deleted)],
            ["delta volatile (bypasses linking)", len(delta.volatile)],
            ["full reconstruction (s)", full_seconds],
            ["incremental consumption (s)", incremental_seconds],
            ["speedup (x)", speedup],
        ],
    )
    assert delta.change_count() < len(second.entities) * 0.5
    assert speedup > 2.0, "consuming a small delta must be much cheaper than a full rebuild"

    benchmark(lambda: delta_computer.peek("musicdb", second.entities))


# --------------------------------------------------------------------- #
# CONSTRUCT — parallel vs sequential construction (Figure 5)
# --------------------------------------------------------------------- #
PARALLEL_POOL_SIZE = 4


@pytest.fixture(scope="module")
def parallel_sources(bench_world):
    """A four-source workload over disjoint entity-type blocks.

    The largest source leads so that barrier-time replans (triggered by
    object resolution minting parent-typed entities such as ``place`` or
    ``person``) land on the small trailing blocks, not the expensive ones.
    """
    specs = [
        SourceSpec("musicdb", ("music_artist", "album", "song"),
                   coverage=0.8, duplicate_rate=0.4, typo_rate=0.3, seed=11),
        SourceSpec("moviedb", ("movie",),
                   coverage=1.0, duplicate_rate=0.8, typo_rate=0.4, seed=12),
        SourceSpec("sportsdb", ("sports_team", "stadium"),
                   coverage=1.0, duplicate_rate=0.8, typo_rate=0.4, seed=13),
        SourceSpec("geodb", ("city", "country"),
                   coverage=1.0, duplicate_rate=0.8, typo_rate=0.4, seed=14),
    ]
    return [generate_source(bench_world, spec) for spec in specs]


def _batch(parallel_sources):
    return [
        SourceDelta.initial(
            source.spec.source_id,
            [entity.copy() for entity in source.entities],
            timestamp=1,
        )
        for source in parallel_sources
    ]


def bench_construct_parallel_vs_sequential(benchmark, ontology, parallel_sources):
    """CONSTRUCT: staged parallel construction vs the sequential chain."""
    # Sequential baseline: the classic one-delta-at-a-time chain.
    started = time.perf_counter()
    sequential = KnowledgeConstructionPipeline(ontology)
    for delta in _batch(parallel_sources):
        sequential.consume_delta(delta)
    sequential_seconds = time.perf_counter() - started

    # Staged run with inline (serial) preparation: the per-block timings are
    # measured undisturbed, then modeled onto a pool of PARALLEL_POOL_SIZE
    # workers.  One run, one set of measurements — numerator and denominator
    # share their noise.
    staged = KnowledgeConstructionPipeline(ontology, executor="serial")
    started = time.perf_counter()
    reports = staged.consume_many(_batch(parallel_sources))
    staged_seconds = time.perf_counter() - started
    stats = staged.scheduler.last_batch

    # The headline claim only matters if the outputs are byte-identical.
    assert staged.store.canonical_rows() == sequential.store.canonical_rows()
    assert staged.link_table == sequential.link_table
    assert [r.summary() for r in staged.reports] == [
        r.summary() for r in sequential.reports
    ]

    serial_portion = stats.shared_view_seconds + stats.barrier_seconds
    modeled_parallel = stats.modeled_parallel_seconds(PARALLEL_POOL_SIZE)
    modeled_speedup = (serial_portion + stats.prepare_cpu_seconds()) / modeled_parallel

    # A real pool run for reference (thread wall clock is honest but bound by
    # the runner's cores and the GIL, so it is reported, not asserted).
    pooled = KnowledgeConstructionPipeline(ontology, max_workers=PARALLEL_POOL_SIZE)
    started = time.perf_counter()
    with pooled.scheduler:
        pooled.consume_many(_batch(parallel_sources))
    pooled_seconds = time.perf_counter() - started
    assert pooled.store.canonical_rows() == sequential.store.canonical_rows()

    print_table(
        "Parallel construction: partitioned pre-fusion stages, fusion barrier (§2.4)",
        ["metric", "value"],
        [
            ["sources", len(parallel_sources)],
            ["entities", sum(len(s.entities) for s in parallel_sources)],
            ["blocks (source x entity-type)", stats.blocks],
            ["plans committed as prepared", stats.plans_reused],
            ["plans replanned at barrier", stats.plans_replanned],
            ["sequential chain (s)", sequential_seconds],
            ["staged serial run (s)", staged_seconds],
            ["prepare work, parallelizable (s)", stats.prepare_cpu_seconds()],
            ["fusion barrier, serialized (s)", serial_portion],
            [f"modeled @ pool={PARALLEL_POOL_SIZE} (s)", modeled_parallel],
            [f"modeled speedup @ pool={PARALLEL_POOL_SIZE} (x)", modeled_speedup],
            ["thread-pool wall clock (s)", pooled_seconds],
        ],
    )
    write_bench_json("BENCH_CONSTRUCT.json", {
        "construct": {
            "pool_size": PARALLEL_POOL_SIZE,
            "sources": len(parallel_sources),
            "entities": sum(len(s.entities) for s in parallel_sources),
            "sequential_seconds": round(sequential_seconds, 4),
            "staged_seconds": round(staged_seconds, 4),
            "pooled_wall_seconds": round(pooled_seconds, 4),
            "modeled_parallel_seconds": round(modeled_parallel, 4),
            "modeled_speedup": round(modeled_speedup, 3),
            "batch": stats.as_dict(),
        }
    })

    assert all(report.error is None for report in reports)
    assert modeled_speedup >= 1.5, (
        "partitioned pre-fusion stages must model at least a 1.5x speedup "
        f"at pool size {PARALLEL_POOL_SIZE} (got {modeled_speedup:.2f}x)"
    )

    benchmark(lambda: lpt_makespan(stats.block_seconds, PARALLEL_POOL_SIZE))
