"""CONSTR — incremental delta-based construction vs full re-construction (§2.4).

Saga's construction pipeline always consumes source *deltas*: the ingestion
platform eagerly partitions each new snapshot into Added / Updated / Deleted /
Volatile payloads so that only changed entities flow through linking and
fusion.  This benchmark quantifies the design choice the section argues for:
after a source has been consumed once, consuming a lightly-changed snapshot
incrementally is far cheaper than rebuilding the KG from the full snapshot,
and the volatile partition bypasses linking entirely.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from repro.construction import IncrementalConstructor
from repro.datagen import SourceSpec, evolve_source, generate_source
from repro.ingestion import DeltaComputer
from repro.model.delta import SourceDelta


@pytest.fixture(scope="module")
def snapshots(bench_world):
    """Two consecutive snapshots of a music source with realistic churn."""
    spec = SourceSpec(
        source_id="musicdb",
        entity_types=("music_artist", "album", "song", "record_label"),
        coverage=0.9,
        duplicate_rate=0.05,
        seed=77,
    )
    first = generate_source(bench_world, spec)
    second = evolve_source(bench_world, first, added_fraction=0.1,
                           updated_fraction=0.08, deleted_fraction=0.02)
    return first, second


def _bootstrap(ontology, first):
    constructor = IncrementalConstructor(ontology)
    constructor.consume(SourceDelta.initial("musicdb", first.entities))
    return constructor


def bench_constr_full_reconstruction(benchmark, ontology, snapshots):
    """Baseline: rebuild the KG from scratch with the full second snapshot."""
    _, second = snapshots

    def rebuild():
        constructor = IncrementalConstructor(ontology)
        return constructor.consume(SourceDelta.initial("musicdb", second.entities))

    report = benchmark.pedantic(rebuild, rounds=2, iterations=1)
    assert report.linked_added == len(second.entities)


def bench_constr_incremental_delta(benchmark, ontology, snapshots):
    """Saga's path: consume only the delta between the two snapshots."""
    first, second = snapshots
    constructor = _bootstrap(ontology, first)
    delta_computer = DeltaComputer(ontology=ontology)
    delta_computer.compute("musicdb", first.entities)
    delta = delta_computer.peek("musicdb", second.entities)

    def consume_delta():
        # Work on a copy of the link/fact state so each round is comparable.
        snapshot_constructor = IncrementalConstructor(ontology, store=constructor.store.snapshot())
        snapshot_constructor.link_table = dict(constructor.link_table)
        return snapshot_constructor.consume(delta)

    report = benchmark.pedantic(consume_delta, rounds=2, iterations=1)
    assert report.linked_added <= delta.change_count()


def bench_constr_speedup_report(benchmark, ontology, snapshots):
    """Report: delta consumption vs full reconstruction, plus delta sizes."""
    first, second = snapshots
    constructor = _bootstrap(ontology, first)
    delta_computer = DeltaComputer(ontology=ontology)
    delta_computer.compute("musicdb", first.entities)
    delta = delta_computer.peek("musicdb", second.entities)

    started = time.perf_counter()
    fresh = IncrementalConstructor(ontology)
    fresh.consume(SourceDelta.initial("musicdb", second.entities))
    full_seconds = time.perf_counter() - started

    started = time.perf_counter()
    incremental = IncrementalConstructor(ontology, store=constructor.store.snapshot())
    incremental.link_table = dict(constructor.link_table)
    incremental.consume(delta)
    incremental_seconds = time.perf_counter() - started

    speedup = full_seconds / max(incremental_seconds, 1e-9)
    print_table(
        "Incremental delta-based construction vs full re-construction (§2.4)",
        ["metric", "value"],
        [
            ["snapshot entities", len(second.entities)],
            ["delta added", len(delta.added)],
            ["delta updated", len(delta.updated)],
            ["delta deleted", len(delta.deleted)],
            ["delta volatile (bypasses linking)", len(delta.volatile)],
            ["full reconstruction (s)", full_seconds],
            ["incremental consumption (s)", incremental_seconds],
            ["speedup (x)", speedup],
        ],
    )
    assert delta.change_count() < len(second.entities) * 0.5
    assert speedup > 2.0, "consuming a small delta must be much cheaper than a full rebuild"

    benchmark(lambda: delta_computer.peek("musicdb", second.entities))
