"""STORE — columnar TripleStore hot loops vs the frozen legacy store.

The columnar refactor (docs/store.md) dictionary-interns every term and lays
facts out in per-predicate column partitions, so the hot loops that dominated
profile time in construction fusion, view building, and serving now run over
dense ids and cached materializations instead of re-sorting and re-hashing
triple objects.  This benchmark measures the loops the refactor targeted, with
:class:`repro.baselines.legacy_store.LegacyTripleStore` (the pre-refactor
implementation, kept verbatim) as the baseline:

* **bulk scan** — repeated ``facts_about`` sweeps over every subject, the
  access pattern of view delta builders and replica reads (gated ≥5x);
* **bulk merge** — merging a full store into a fresh consumer, the
  serving-bootstrap / fusion-barrier case, which the columnar store serves by
  adopting column chunks through copy-on-write (gated ≥5x);
* **snapshot** — versioned-analytics snapshots, copy-on-write vs deep copy
  (gated ≥5x);
* **point lookups** — ``value_of``/``values_of`` via the ``(subject,
  predicate)`` composite index (gated ≥3x);
* bulk load, incremental merge into a populated store, ``remove_source`` via
  the inverted source index, and ``canonical_rows`` are reported ungated.

Every timed pair is cross-checked through ``canonical_rows()`` — a speedup on
a store that diverged from the legacy baseline would be meaningless.  Writes
``BENCH_TRIPLESTORE.json`` (see ``write_bench_json``) so CI tracks the
trajectory per commit.
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_table, write_bench_json
from repro.baselines.legacy_store import LegacyTripleStore
from repro.model.triples import TripleStore

SCAN_PASSES = 5
POINT_PREDICATES = ("name", "type", "genre", "popularity", "birth_date")

SCAN_GATE = 5.0
MERGE_GATE = 5.0
SNAPSHOT_GATE = 5.0
POINT_GATE = 3.0


def _best_of(fn, repeats: int = 3) -> float:
    """Best wall-clock of *repeats* runs, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _measure(rows: list[dict]) -> dict:
    columnar = TripleStore.from_rows(rows)
    legacy = LegacyTripleStore.from_rows(rows)
    assert columnar.canonical_rows() == legacy.canonical_rows()
    subjects = sorted(legacy.subjects())
    results: dict[str, dict] = {}

    def section(name: str, col_fn, leg_fn, repeats: int = 3) -> None:
        col_s = _best_of(col_fn, repeats)
        leg_s = _best_of(leg_fn, repeats)
        results[name] = {
            "columnar_ms": col_s * 1000.0,
            "legacy_ms": leg_s * 1000.0,
            "speedup": leg_s / max(col_s, 1e-9),
        }

    section(
        "bulk_load",
        lambda: TripleStore.from_rows(rows),
        lambda: LegacyTripleStore.from_rows(rows),
    )

    def sweep(store) -> int:
        touched = 0
        for _ in range(SCAN_PASSES):
            for subject in subjects:
                touched += len(store.facts_about(subject))
        return touched

    assert sweep(columnar) == sweep(legacy)  # warm caches + cross-check
    section("scan_sweep", lambda: sweep(columnar), lambda: sweep(legacy))

    def points(store) -> None:
        for subject in subjects:
            for predicate in POINT_PREDICATES:
                store.value_of(subject, predicate)
                store.values_of(subject, predicate)

    for subject in subjects[:50]:
        for predicate in POINT_PREDICATES:
            assert columnar.value_of(subject, predicate) == legacy.value_of(
                subject, predicate
            )
            assert columnar.values_of(subject, predicate) == legacy.values_of(
                subject, predicate
            )
    section("point_lookups", lambda: points(columnar), lambda: points(legacy))

    # Bulk merge: a full store lands in a fresh consumer (replica bootstrap,
    # fusion barrier).  The legacy baseline must copy each triple because its
    # add() stores the object it is handed.
    def bootstrap_columnar() -> None:
        TripleStore().merge_from(columnar)

    def bootstrap_legacy() -> None:
        LegacyTripleStore().add_all(t.copy() for t in legacy)

    adopted = TripleStore()
    adopted.merge_from(columnar)
    assert adopted.canonical_rows() == legacy.canonical_rows()
    adopted.remove_subject(subjects[0])  # adoption is isolated, not aliased
    assert columnar.canonical_rows() == legacy.canonical_rows()
    section("bootstrap_merge", bootstrap_columnar, bootstrap_legacy)

    # Incremental merge: the same facts land in an already-populated store
    # (provenance re-assert path) — ungated, the win here is not copying.
    populated_col = TripleStore.from_rows(rows)
    populated_leg = LegacyTripleStore.from_rows(rows)
    section(
        "incremental_merge",
        lambda: populated_col.merge_from(columnar),
        lambda: populated_leg.add_all(t.copy() for t in legacy),
    )
    assert populated_col.canonical_rows() == populated_leg.canonical_rows()

    section("snapshot", lambda: columnar.snapshot(), lambda: legacy.snapshot())

    # Source deletion: spread the facts over fifty feeds and delete one, the
    # governance case the inverted source index exists for — the legacy store
    # scans every fact, the columnar store touches only the feed's slice (the
    # index's advantage grows with the store-to-source size ratio).
    multi_rows = [
        {**row, "sources": [f"feed-{index % 50}"], "trust": [0.9]}
        for index, row in enumerate(rows)
    ]
    multi_col = TripleStore.from_rows(multi_rows)
    multi_leg = LegacyTripleStore.from_rows(multi_rows)
    check_col, check_leg = multi_col.snapshot(), multi_leg.snapshot()
    assert check_col.remove_source("feed-3") == check_leg.remove_source("feed-3")
    assert check_col.canonical_rows() == check_leg.canonical_rows()
    # Private builds for both pools: a copy-on-write snapshot would pay its
    # deferred copy inside the timed region and skew the comparison.  The
    # consumed stores are kept alive so their deallocation (thousands of
    # objects) also lands outside the timed region.
    col_pool = [TripleStore.from_rows(multi_rows) for _ in range(3)]
    leg_pool = [LegacyTripleStore.from_rows(multi_rows) for _ in range(3)]
    consumed: list[object] = []

    def remove_feed(pool) -> None:
        store = pool.pop()
        store.remove_source("feed-3")
        consumed.append(store)

    section(
        "remove_source",
        lambda: remove_feed(col_pool),
        lambda: remove_feed(leg_pool),
    )

    section(
        "canonical_rows",
        lambda: columnar.canonical_rows(),
        lambda: legacy.canonical_rows(),
    )
    return results


def bench_triplestore_hot_loops(benchmark, bench_store):
    """Columnar vs legacy on the loops the refactor targeted (gated)."""
    rows = bench_store.to_rows()
    gates = {
        "scan_sweep": SCAN_GATE,
        "bootstrap_merge": MERGE_GATE,
        "snapshot": SNAPSHOT_GATE,
        "point_lookups": POINT_GATE,
    }
    # Re-measure on a gate miss to absorb scheduling jitter (same pattern as
    # QUERYROUTE): the ratios are structural, only the timing is noisy.
    for _ in range(3):
        results = _measure(rows)
        if all(results[name]["speedup"] >= floor for name, floor in gates.items()):
            break
    print_table(
        f"Columnar vs legacy TripleStore ({len(rows)} facts, "
        f"{SCAN_PASSES}-pass sweeps)",
        ["section", "columnar_ms", "legacy_ms", "speedup"],
        [
            [name, r["columnar_ms"], r["legacy_ms"], r["speedup"]]
            for name, r in results.items()
        ],
    )
    write_bench_json("BENCH_TRIPLESTORE.json", {
        "benchmark": "STORE",
        "workload": {
            "facts": len(rows),
            "scan_passes": SCAN_PASSES,
            "point_predicates": list(POINT_PREDICATES),
        },
        "gates": gates,
        "sections": results,
    })
    for name, floor in gates.items():
        assert results[name]["speedup"] >= floor, (
            f"{name}: {results[name]['speedup']:.1f}x < {floor}x gate"
        )

    columnar = TripleStore.from_rows(rows)
    subjects = sorted(columnar.subjects())
    benchmark(lambda: sum(len(columnar.facts_about(s)) for s in subjects))
