"""QUERYROUTE — scatter-gather KGQ throughput scaling with replica count.

The distributed query path (docs/serving.md): a KGQ is compiled once,
fragmented along the consistent-hash partitions of the subject space, and
executed replica-side so each node examines only its own slice of the view.
This benchmark measures the scaling law that justifies the fleet on a
fan-out workload over the benchmark KG's song rows:

* **per-fragment work** — the candidates one replica examines per query must
  fall roughly as ``1/R`` while the fleet-wide total stays constant;
* **fleet throughput** — queries/second the fleet sustains when every
  replica works its fragment concurrently.  Fragments here execute in one
  process (the GIL serializes the actual CPU work), so the fleet figure is
  *modeled* from measured per-fragment wall time — ``R / max-fragment-time``
  — the capacity R cooperating processes would sustain, each measured doing
  exactly its share.  The per-fragment measurements themselves are real
  wall-clock; only the parallel composition is modeled.
* **end-to-end scatter-gather latency and correctness** — the merged result
  must equal primary-side execution of the same plan.

Writes ``BENCH_QUERYROUTE.json`` (see ``write_bench_json``) so CI tracks
the trajectory per commit.
"""

from __future__ import annotations

import random
import statistics
import time

import pytest

from benchmarks.conftest import print_table, write_bench_json
from repro.engine.graph_engine import GraphEngine
from repro.engine.views import ViewDefinition, ViewDelta
from repro.live.executor import QueryExecutor, merge_partial_results
from repro.live.index import LiveIndex, view_row_document
from repro.live.kgq import parse
from repro.live.planner import QueryPlanner, extract_fragments
from repro.serving import ServingFleet

REPLICA_COUNTS = (1, 2, 4)
FANOUT_QUERIES = tuple(
    f"MATCH view_row WHERE fact_count > {threshold} RETURN name, fact_count"
    for threshold in range(2, 10)
)


def _register_song_rows(engine: GraphEngine) -> None:
    def row_for(subject):
        return {
            "subject": subject,
            "name": str(engine.triples.value_of(subject, "name") or ""),
            "fact_count": len(engine.triples.facts_about(subject)),
        }

    def song_scope(entity_id):
        return engine.triples.value_of(entity_id, "type") == "song"

    def create(context):
        return {
            subject: row_for(subject)
            for subject in engine.triples.subjects()
            if song_scope(subject)
        }

    def apply_delta(context, delta: ViewDelta):
        artifact = dict(context.artifact("song_rows"))
        for subject in delta.changed:
            artifact[subject] = row_for(subject)
        for subject in delta.deleted:
            artifact.pop(subject, None)
        return artifact

    engine.register_view(ViewDefinition(
        "song_rows", "analytics", create=create, apply_delta=apply_delta,
        scope=song_scope,
    ))


@pytest.fixture(scope="module")
def query_env(ontology, bench_store):
    engine = GraphEngine(ontology)
    engine.publish_store(bench_store, source_id="reference")
    _register_song_rows(engine)
    engine.materialize_views()
    yield engine


def _primary_rows(engine, query_text):
    index = LiveIndex()
    artifact = engine.view_manager.artifact("song_rows")
    lsn = engine.view_manager.built_at_lsn("song_rows")
    index.replace_feed(
        "view:song_rows",
        (view_row_document("song_rows", "view:song_rows", row, lsn)
         for row in artifact.values()),
        lsn,
    )
    executor = QueryExecutor(index)
    result = executor.execute(QueryPlanner().plan(parse(query_text)), use_cache=False)
    return [(row.entity_id, row.values) for row in result.rows]


def _measure_fleet(engine, num_replicas, rng):
    """Per-fragment wall times and examined counts on a fan-out workload."""
    fleet = ServingFleet(
        engine.view_manager,
        num_replicas=num_replicas,
        head_lsn_source=engine.minimum_version,
    ).start()
    try:
        fleet.serve_view("song_rows")
        assert fleet.drain()
        router = fleet.query_router
        fragment_seconds: list[float] = []
        fragment_examined: list[int] = []
        totals: list[int] = []
        gather_ms: list[float] = []
        for query_text in FANOUT_QUERIES:
            plan = router.compile(query_text)
            partitions = fleet.router.hash_partitions(sorted(fleet.replicas))
            fragments = extract_fragments(plan, "song_rows", partitions)
            partials = []
            for fragment in fragments:
                node = fleet.replicas[fragment.owner]
                started = time.perf_counter()
                partial = node.execute_fragment(fragment, use_cache=False)
                fragment_seconds.append(time.perf_counter() - started)
                fragment_examined.append(partial.candidates_examined)
                partials.append(partial)
            totals.append(sum(p.candidates_examined for p in partials))
            started = time.perf_counter()
            merged = merge_partial_results(plan, partials)
            gather_ms.append((time.perf_counter() - started) * 1000.0)
            # correctness: the merge equals primary-side execution
            sample = rng.random() < 0.25
            if sample:
                assert (
                    [(row.entity_id, row.values) for row in merged.rows]
                    == _primary_rows(engine, query_text)
                )
        end_to_end = fleet.query(FANOUT_QUERIES[0], "song_rows")
        return {
            "replicas": num_replicas,
            "mean_fragment_ms": statistics.mean(fragment_seconds) * 1000.0,
            "max_fragment_ms": max(fragment_seconds) * 1000.0,
            "max_candidates_per_fragment": max(fragment_examined),
            "mean_candidates_per_fragment": statistics.mean(fragment_examined),
            "total_candidates_per_query": statistics.mean(totals),
            "mean_gather_ms": statistics.mean(gather_ms),
            "scatter_gather_ms": end_to_end.latency_ms,
            "modeled_throughput_qps": num_replicas / max(
                sum(fragment_seconds) / len(FANOUT_QUERIES), 1e-9
            ),
        }
    finally:
        fleet.stop()


def bench_query_router_scaling_with_replica_count(benchmark, query_env):
    """Fan-out workload: per-replica work falls ~1/R, fleet capacity rises."""
    engine = query_env
    rng = random.Random(41)
    # Re-measures on a loss absorb scheduling jitter (same pattern as
    # SERVCATCH): the candidate-count margins are structural and
    # deterministic, only the timing-derived throughput model needs it.
    for _ in range(3):
        measurements = [
            _measure_fleet(engine, count, rng) for count in REPLICA_COUNTS
        ]
        by_count = {m["replicas"]: m for m in measurements}
        if (by_count[4]["modeled_throughput_qps"]
                > by_count[1]["modeled_throughput_qps"]):
            break
    print_table(
        "Scatter-gather scaling on the fan-out workload "
        f"({len(FANOUT_QUERIES)} distinct KGQs over song_rows)",
        ["replicas", "max_frag_candidates", "mean_frag_ms",
         "modeled_qps", "gather_ms"],
        [
            [m["replicas"], m["max_candidates_per_fragment"],
             m["mean_fragment_ms"], m["modeled_throughput_qps"],
             m["mean_gather_ms"]]
            for m in measurements
        ],
    )
    # The structural scaling claims: partitioning splits the per-replica
    # work (candidates examined per fragment) without inflating the fleet
    # total, and the modeled fleet capacity grows with replica count.
    assert by_count[4]["max_candidates_per_fragment"] < (
        by_count[1]["max_candidates_per_fragment"]
    )
    assert by_count[2]["max_candidates_per_fragment"] < (
        by_count[1]["max_candidates_per_fragment"]
    )
    assert by_count[4]["total_candidates_per_query"] == (
        by_count[1]["total_candidates_per_query"]
    )
    assert by_count[4]["modeled_throughput_qps"] > (
        by_count[1]["modeled_throughput_qps"]
    )
    write_bench_json("BENCH_QUERYROUTE.json", {
        "benchmark": "QUERYROUTE",
        "workload": {
            "queries": len(FANOUT_QUERIES),
            "view": "song_rows",
            "replica_counts": list(REPLICA_COUNTS),
        },
        "scaling": {str(m["replicas"]): m for m in measurements},
    })

    fleet = ServingFleet(
        engine.view_manager, num_replicas=4,
        head_lsn_source=engine.minimum_version,
    ).start()
    try:
        fleet.serve_view("song_rows")
        assert fleet.drain()
        benchmark(lambda: fleet.query_router.execute(
            FANOUT_QUERIES[0], "song_rows", use_cache=False
        ))
    finally:
        fleet.stop()


def bench_query_router_consistency_overhead(benchmark, query_env):
    """Per-fragment consistency checks must not change the latency shape."""
    engine = query_env
    from repro.serving import Consistency

    fleet = ServingFleet(
        engine.view_manager, num_replicas=3,
        head_lsn_source=engine.minimum_version,
    ).start()
    try:
        fleet.serve_view("song_rows")
        assert fleet.drain()
        watermark = engine.view_manager.built_at_lsn("song_rows")

        def measure(consistency, reads=60):
            latencies = []
            for index in range(reads):
                query_text = FANOUT_QUERIES[index % len(FANOUT_QUERIES)]
                started = time.perf_counter()
                result = fleet.query_router.execute(
                    query_text, "song_rows", consistency, use_cache=False
                )
                latencies.append((time.perf_counter() - started) * 1000.0)
                assert result.rows is not None     # empty results are legal
            latencies.sort()
            return (latencies[len(latencies) // 2],
                    latencies[int(len(latencies) * 0.95)])

        any_p50, any_p95 = measure(Consistency.any())
        ryw_p50, ryw_p95 = measure(Consistency.read_your_writes(watermark))
        print_table(
            "Scatter-gather latency by consistency level (ms, 3 replicas)",
            ["consistency", "p50_ms", "p95_ms"],
            [
                ["any", any_p50, any_p95],
                [f"read_your_writes({watermark})", ryw_p50, ryw_p95],
            ],
        )
        assert ryw_p95 < 250.0
        write_bench_json("BENCH_QUERYROUTE.json", {
            "consistency_overhead": {
                "any_p50_ms": any_p50, "any_p95_ms": any_p95,
                "read_your_writes_p50_ms": ryw_p50,
                "read_your_writes_p95_ms": ryw_p95,
            },
        })
        benchmark(lambda: fleet.query_router.execute(
            FANOUT_QUERIES[1], "song_rows", Consistency.read_your_writes(watermark),
            use_cache=False,
        ))
    finally:
        fleet.stop()
