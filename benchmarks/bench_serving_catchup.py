"""SERVCATCH — replica restart catch-up and routed read latency.

The serving fleet's restart story (docs/serving.md): a crashed replica
recovers by replaying the persisted delta journal from its last applied LSN,
instead of re-applying a full snapshot of the view artifact.  This benchmark
measures both paths on the benchmark KG — a crashed replica that missed a
small delta burst catching up via journal replay, against the same state
rebuilt from a full snapshot — and the routed read path's latency under
replication lag (reads served at ``any`` while replicas lag, and at
``read_your_writes`` once they caught up).
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import print_table, write_bench_json
from repro.engine.graph_engine import GraphEngine
from repro.engine.views import ViewDefinition, ViewDelta
from repro.serving import Consistency, ServingFleet

#: Deltas shipped per crash/restart round (each touches SONGS_PER_DELTA songs).
DELTAS_PER_ROUND = 3
SONGS_PER_DELTA = 3


def _register_song_rows(engine: GraphEngine) -> None:
    def row_for(subject):
        return {
            "subject": subject,
            "name": str(engine.triples.value_of(subject, "name") or ""),
            "fact_count": len(engine.triples.facts_about(subject)),
        }

    def song_scope(entity_id):
        return engine.triples.value_of(entity_id, "type") == "song"

    def create(context):
        return {
            subject: row_for(subject)
            for subject in engine.triples.subjects()
            if song_scope(subject)
        }

    def apply_delta(context, delta: ViewDelta):
        artifact = dict(context.artifact("song_rows"))
        for subject in delta.changed:
            artifact[subject] = row_for(subject)
        for subject in delta.deleted:
            artifact.pop(subject, None)
        return artifact

    engine.register_view(ViewDefinition(
        "song_rows", "analytics", create=create, apply_delta=apply_delta,
        scope=song_scope,
    ))


@pytest.fixture(scope="module")
def serving_env(ontology, bench_store):
    engine = GraphEngine(ontology)
    engine.publish_store(bench_store, source_id="reference")
    _register_song_rows(engine)
    engine.materialize_views()
    fleet = ServingFleet(
        engine.view_manager,
        num_replicas=3,
        metadata=engine.metadata,
        head_lsn_source=engine.minimum_version,
    ).start()
    fleet.serve_view("song_rows")
    assert fleet.drain()
    songs = sorted(
        s for s in engine.triples.subjects()
        if engine.triples.value_of(s, "type") == "song"
    )
    yield engine, fleet, songs
    fleet.stop()


def _ship_delta_burst(engine, songs, rng):
    """Publish DELTAS_PER_ROUND small song deltas and flush each."""
    source = engine.triples
    for _ in range(DELTAS_PER_ROUND):
        changed = rng.sample(songs, SONGS_PER_DELTA)
        engine.publish_subjects(source, changed, source_id="reference")
        engine.update_views()


def bench_serving_restart_journal_vs_snapshot(benchmark, serving_env):
    """Crashed-replica catch-up: journal replay vs full snapshot rebuild."""
    engine, fleet, songs = serving_env
    rng = random.Random(11)
    victim = "replica-2"
    node = fleet.replicas[victim]

    def crash_miss_restart():
        fleet.kill_replica(victim)
        _ship_delta_burst(engine, songs, rng)
        assert fleet.drain()
        started = time.perf_counter()
        fleet.restart_replica(victim)
        return time.perf_counter() - started

    def snapshot_rebuild():
        batch = fleet.shipper.snapshot_batch("song_rows")
        started = time.perf_counter()
        node._apply(batch, resyncing=True)
        return time.perf_counter() - started

    # Re-measures on a loss absorb scheduling jitter; the journal path
    # rewrites ≤ DELTAS_PER_ROUND * SONGS_PER_DELTA rows, the snapshot path
    # every song row, so the margin is structural.
    for _ in range(3):
        journal_seconds = min(crash_miss_restart() for _ in range(3))
        snapshot_seconds = min(snapshot_rebuild() for _ in range(3))
        if journal_seconds < snapshot_seconds:
            break
    assert node.applied_lsn("song_rows") == engine.view_manager.built_at_lsn("song_rows")
    assert node.snapshot_resyncs == 0          # every restart rode the journal
    assert engine.view_manager.states["song_rows"].builds == 1   # no rebuilds

    improvement = (snapshot_seconds - journal_seconds) / snapshot_seconds * 100.0
    print_table(
        "Replica restart catch-up: journal replay vs full snapshot "
        f"({DELTAS_PER_ROUND * SONGS_PER_DELTA} changed rows vs {len(songs)} total)",
        ["strategy", "seconds", "improvement_%"],
        [
            ["full snapshot rebuild", snapshot_seconds, 0.0],
            ["journal replay from applied LSN", journal_seconds, improvement],
        ],
    )
    assert journal_seconds < snapshot_seconds, "journal replay must win wall-clock"
    write_bench_json("BENCH_SERVCATCH.json", {
        "benchmark": "SERVCATCH",
        "restart_catchup": {
            "changed_rows": DELTAS_PER_ROUND * SONGS_PER_DELTA,
            "total_rows": len(songs),
            "journal_replay_seconds": journal_seconds,
            "snapshot_rebuild_seconds": snapshot_seconds,
            "improvement_pct": improvement,
        },
    })
    benchmark(lambda: fleet.restart_replica(victim))


def bench_serving_routed_read_latency_under_lag(benchmark, serving_env):
    """Routed read latency while replicas lag, per consistency level."""
    engine, fleet, songs = serving_env
    rng = random.Random(23)
    assert fleet.drain()
    watermark = engine.view_manager.built_at_lsn("song_rows")

    def measure(consistency, reads=400):
        latencies = []
        for _ in range(reads):
            subject = rng.choice(songs)
            started = time.perf_counter()
            document = fleet.read("song_rows", subject, consistency)
            latencies.append((time.perf_counter() - started) * 1000.0)
            assert document is not None
        latencies.sort()
        return latencies[len(latencies) // 2], latencies[int(len(latencies) * 0.95)]

    any_p50, any_p95 = measure(Consistency.any())
    ryw_p50, ryw_p95 = measure(Consistency.read_your_writes(watermark))
    bounded_p50, bounded_p95 = measure(Consistency.bounded_staleness(0))
    print_table(
        "Routed read latency by consistency level (ms, 3 replicas)",
        ["consistency", "p50_ms", "p95_ms"],
        [
            ["any", any_p50, any_p95],
            [f"read_your_writes({watermark})", ryw_p50, ryw_p95],
            ["bounded_staleness(0)", bounded_p50, bounded_p95],
        ],
    )
    # Interactive-latency shape claim: routed point reads stay sub-millisecond
    # in-process; the consistency check must not change the order of magnitude.
    assert ryw_p95 < 50.0
    assert fleet.router.reads_routed >= 1200
    write_bench_json("BENCH_SERVCATCH.json", {
        "routed_read_latency_ms": {
            "any_p50": any_p50, "any_p95": any_p95,
            "read_your_writes_p50": ryw_p50, "read_your_writes_p95": ryw_p95,
            "bounded_staleness_p50": bounded_p50, "bounded_staleness_p95": bounded_p95,
        },
    })
    benchmark(lambda: fleet.read("song_rows", songs[0], Consistency.any()))
