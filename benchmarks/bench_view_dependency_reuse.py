"""VIEWDEP — runtime saving from reusing shared view dependencies (§3.2).

The paper reports a 26% runtime improvement in a production view dependency
graph when shared intermediate views (the entity-features view of Figure 7)
are computed once and reused by all dependents instead of being rebuilt per
view pipeline.  This benchmark registers the Figure 7-style dependency graph
(importance → features → {ranked entity index, entity neighbourhood}) over the
Graph Engine and compares end-to-end materialization with and without reuse.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from repro.engine.graph_engine import GraphEngine

TARGET_VIEWS = ("ranked_entity_index", "entity_neighbourhood")


@pytest.fixture(scope="module")
def engine(ontology, bench_store):
    engine = GraphEngine(ontology)
    engine.publish_store(bench_store, source_id="reference")
    engine.register_standard_views()
    return engine


def _total_seconds(engine: GraphEngine, reuse_shared: bool, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        engine.materialize_views(TARGET_VIEWS, reuse_shared=reuse_shared)
        best = min(best, time.perf_counter() - started)
    return best


def bench_viewdep_with_reuse(benchmark, engine):
    """Materialize the dependency graph computing shared views once."""
    timings = benchmark(lambda: engine.materialize_views(TARGET_VIEWS, reuse_shared=True))
    assert set(timings) >= set(TARGET_VIEWS)


def bench_viewdep_without_reuse(benchmark, engine):
    """Materialize the same views rebuilding dependencies per pipeline (legacy mode)."""
    timings = benchmark(lambda: engine.materialize_views(TARGET_VIEWS, reuse_shared=False))
    assert set(timings) >= set(TARGET_VIEWS)


def bench_viewdep_improvement_report(benchmark, engine):
    """The headline number: % runtime saved by dependency reuse (paper: 26%)."""
    with_reuse = _total_seconds(engine, reuse_shared=True)
    without_reuse = _total_seconds(engine, reuse_shared=False)
    improvement = (without_reuse - with_reuse) / without_reuse * 100.0
    print_table(
        "View dependency reuse (§3.2; paper reports a 26% improvement)",
        ["configuration", "seconds", "improvement_%", "paper_improvement_%"],
        [
            ["independent pipelines", without_reuse, 0.0, 0.0],
            ["shared dependency reuse", with_reuse, improvement, 26.0],
        ],
    )
    # Shape claim: reuse must help by a double-digit percentage.
    assert improvement > 10.0
    benchmark(lambda: engine.materialize_views(TARGET_VIEWS, reuse_shared=True))
