"""VIEWDEP — runtime saving from reusing shared view dependencies (§3.2).

The paper reports a 26% runtime improvement in a production view dependency
graph when shared intermediate views (the entity-features view of Figure 7)
are computed once and reused by all dependents instead of being rebuilt per
view pipeline.  This benchmark registers the Figure 7-style dependency graph
(importance → features → {ranked entity index, entity neighbourhood}) over the
Graph Engine and compares end-to-end materialization with and without reuse.

It also measures *selective* maintenance: with entity-scoped per-type profile
views registered alongside the shared graph, a small delta (<10% of entities,
all of one type) only rebuilds the affected closure, while full maintenance
rebuilds every materialized view — the dependency-aware skip is the second
runtime saving this subsystem provides.

Finally, the *incremental-vs-closure* mode measures true delta-driven
recomputation: a deep dependency chain of row views maintained through
``apply_delta`` (rebuilding only journal entries) against the same chain
maintained through full closure rebuilds, for a ≤1% single-type delta.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from repro.engine.graph_engine import GraphEngine
from repro.engine.views import ViewCatalog, ViewDefinition, ViewManager
from repro.ml.similarity import tokens
from repro.model.entity import KGEntity

TARGET_VIEWS = ("ranked_entity_index", "entity_neighbourhood")

#: Entity types given scoped profile views for the selective-maintenance run.
PROFILED_TYPES = ("person", "music_artist", "song", "playlist", "movie")

#: Depth of the apply_delta chain in the incremental-vs-closure mode.
CHAIN_DEPTH = 6


@pytest.fixture(scope="module")
def engine(ontology, bench_store):
    engine = GraphEngine(ontology)
    engine.publish_store(bench_store, source_id="reference")
    engine.register_standard_views()
    return engine


def _total_seconds(engine: GraphEngine, reuse_shared: bool, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        engine.materialize_views(TARGET_VIEWS, reuse_shared=reuse_shared)
        best = min(best, time.perf_counter() - started)
    return best


def bench_viewdep_with_reuse(benchmark, engine):
    """Materialize the dependency graph computing shared views once."""
    timings = benchmark(lambda: engine.materialize_views(TARGET_VIEWS, reuse_shared=True))
    assert set(timings) >= set(TARGET_VIEWS)


def bench_viewdep_without_reuse(benchmark, engine):
    """Materialize the same views rebuilding dependencies per pipeline (legacy mode)."""
    timings = benchmark(lambda: engine.materialize_views(TARGET_VIEWS, reuse_shared=False))
    assert set(timings) >= set(TARGET_VIEWS)


def _register_profile_views(engine: GraphEngine) -> None:
    """Per-type profile views whose scope limits maintenance to their type."""
    for entity_type in PROFILED_TYPES:
        def create(context, entity_type=entity_type):
            rows = []
            for subject in engine.triples.subjects():
                facts = engine.triples.facts_about(subject)
                entity = KGEntity.from_triples(subject, facts)
                if entity_type not in entity.types:
                    continue
                name_tokens = sorted({t for name in entity.names for t in tokens(name)})
                rows.append({
                    "subject": subject,
                    "name": entity.primary_name,
                    "fact_count": len(facts),
                    "name_tokens": name_tokens,
                })
            return rows

        def scope(entity_id, entity_type=entity_type):
            return engine.triples.value_of(entity_id, "type") == entity_type

        engine.register_view(ViewDefinition(
            name=f"{entity_type}_profile",
            engine="analytics",
            create=create,
            scope=scope,
            description=f"scoped per-{entity_type} profile rows",
        ))


@pytest.fixture(scope="module")
def maintenance_engine(ontology, bench_store):
    engine = GraphEngine(ontology)
    engine.publish_store(bench_store, source_id="reference")
    engine.register_standard_views()
    _register_profile_views(engine)
    engine.materialize_views()
    return engine


def bench_viewdep_selective_maintenance(benchmark, maintenance_engine):
    """Selective vs full maintenance for a <10% single-type delta (VIEWDEP)."""
    engine = maintenance_engine
    subjects = engine.triples.subjects()
    songs = [s for s in subjects if engine.triples.value_of(s, "type") == "song"]
    changed = songs[: max(1, len(subjects) // 20)]
    changed_fraction = len(changed) / len(subjects)
    assert changed_fraction < 0.10, "the delta must stay below 10% of entities"

    full_timings = engine.update_views(changed, selective=False)
    selective_timings = engine.update_views(changed)
    # Selective maintenance must rebuild strictly fewer views: the four
    # unscoped shared views plus only the song profile, never the other four
    # type profiles.
    assert len(selective_timings) < len(full_timings)
    assert "song_profile" in selective_timings
    assert "person_profile" not in selective_timings

    def measure(selective: bool, repeat: int = 5) -> float:
        best = float("inf")
        for _ in range(repeat):
            started = time.perf_counter()
            engine.update_views(changed, selective=selective)
            best = min(best, time.perf_counter() - started)
        return best

    # One re-measure on a loss absorbs shared-runner scheduling jitter while
    # keeping the wall-clock claim strict.
    for _ in range(2):
        full_seconds = measure(selective=False)
        selective_seconds = measure(selective=True)
        if selective_seconds < full_seconds:
            break
    improvement = (full_seconds - selective_seconds) / full_seconds * 100.0
    skipped = sum(
        stats["skipped_updates"]
        for stats in engine.view_manager.maintenance_stats().values()
    )
    print_table(
        "Selective vs full view maintenance "
        f"({len(changed)} changed entities = {changed_fraction * 100.0:.1f}%)",
        ["configuration", "views_rebuilt", "seconds", "improvement_%"],
        [
            ["full maintenance", len(full_timings), full_seconds, 0.0],
            ["selective maintenance", len(selective_timings), selective_seconds,
             improvement],
            ["cumulative skipped rebuilds", skipped, "", ""],
        ],
    )
    assert selective_seconds < full_seconds, "selectivity must win wall-clock"
    benchmark(lambda: engine.update_views(changed))


def _chain_definitions(engine: GraphEngine, incremental: bool) -> list[ViewDefinition]:
    """A depth-CHAIN_DEPTH chain of song-row views, each level re-deriving a
    token-weight from its dependency's rows; with ``incremental=True`` every
    level declares an ``apply_delta`` that patches only the journaled rows."""

    def song_scope(entity_id):
        return engine.triples.value_of(entity_id, "type") == "song"

    def base_row(subject):
        name = str(engine.triples.value_of(subject, "name") or "")
        name_tokens = tokens(name)
        return {
            "subject": subject,
            "name": name,
            "weight": float(sum(sum(ord(ch) for ch in token) for token in name_tokens)),
        }

    def transform(row, level):
        reweighted = 0.0
        for token in tokens(row["name"]):
            reweighted += (sum(ord(ch) for ch in token) % (level + 7)) * 0.5
        return {**row, "weight": row["weight"] + reweighted}

    def base_create(context):
        return {
            subject: base_row(subject)
            for subject in engine.triples.subjects()
            if song_scope(subject)
        }

    def base_apply(context, delta):
        artifact = context.artifact("chain_0")
        for subject in delta.changed:
            artifact[subject] = base_row(subject)
        for subject in delta.deleted:
            artifact.pop(subject, None)
        return artifact

    def make_create(level):
        def create(context):
            prev = context.artifact(f"chain_{level - 1}")
            return {subject: transform(row, level) for subject, row in prev.items()}
        return create

    def make_apply(level):
        def apply_delta(context, delta):
            prev = context.artifact(f"chain_{level - 1}")
            artifact = context.artifact(f"chain_{level}")
            for subject in delta.changed:
                row = prev.get(subject)
                if row is None:
                    artifact.pop(subject, None)
                else:
                    artifact[subject] = transform(row, level)
            for subject in delta.deleted:
                artifact.pop(subject, None)
            return artifact
        return apply_delta

    definitions = [ViewDefinition(
        "chain_0", "analytics", create=base_create,
        apply_delta=base_apply if incremental else None, scope=song_scope,
    )]
    for level in range(1, CHAIN_DEPTH + 1):
        definitions.append(ViewDefinition(
            f"chain_{level}", "analytics", create=make_create(level),
            apply_delta=make_apply(level) if incremental else None,
            dependencies=(f"chain_{level - 1}",), scope=song_scope,
        ))
    return definitions


@pytest.fixture(scope="module")
def chain_managers(ontology, bench_store):
    """One closure-rebuild and one apply_delta manager over the same stores."""
    engine = GraphEngine(ontology)
    engine.publish_store(bench_store, source_id="reference")
    managers = {}
    for mode, incremental in (("closure", False), ("incremental", True)):
        catalog = ViewCatalog()
        for definition in _chain_definitions(engine, incremental):
            catalog.register(definition)
        manager = ViewManager(
            catalog, engine._engine_map(), entity_source=engine.triples.subjects
        )
        manager.materialize()
        managers[mode] = manager
    return engine, managers


def bench_viewdep_incremental_vs_closure(benchmark, chain_managers):
    """apply_delta journal replay vs full closure rebuild on a ≤1% delta."""
    engine, managers = chain_managers
    subjects = engine.triples.subjects()
    songs = [s for s in subjects if engine.triples.value_of(s, "type") == "song"]
    changed = songs[: max(1, len(subjects) // 100)]
    changed_fraction = len(changed) / len(subjects)
    assert changed_fraction <= 0.01, "the delta must stay within 1% of entities"

    def measure(manager, repeat: int = 5) -> float:
        best = float("inf")
        for _ in range(repeat):
            started = time.perf_counter()
            manager.update(changed)
            best = min(best, time.perf_counter() - started)
        return best

    # Re-measures on a loss absorb shared-runner scheduling jitter while
    # keeping the wall-clock claim strict (the margin here is ~an order of
    # magnitude, so residual flake risk is minimal).
    for _ in range(3):
        closure_seconds = measure(managers["closure"])
        incremental_seconds = measure(managers["incremental"])
        if incremental_seconds < closure_seconds:
            break
    improvement = (closure_seconds - incremental_seconds) / closure_seconds * 100.0

    # incremental maintenance rebuilt only journal entries: every chain view
    # was created exactly once (materialization) and delta-applied since
    for name, stats in managers["incremental"].maintenance_stats().items():
        assert stats["builds"] == 1, name
        assert stats["delta_applies"] >= 5, name
    # and both strategies converge on identical artifacts
    for level in range(CHAIN_DEPTH + 1):
        name = f"chain_{level}"
        assert managers["incremental"].artifact(name) == managers["closure"].artifact(name)

    print_table(
        "Incremental (apply_delta journals) vs closure rebuild "
        f"(chain depth {CHAIN_DEPTH}, {len(changed)} changed entities = "
        f"{changed_fraction * 100.0:.2f}%)",
        ["configuration", "seconds", "improvement_%"],
        [
            ["full closure rebuild", closure_seconds, 0.0],
            ["incremental apply_delta", incremental_seconds, improvement],
        ],
    )
    assert incremental_seconds < closure_seconds, "journal replay must win wall-clock"
    benchmark(lambda: managers["incremental"].update(changed))


def bench_viewdep_improvement_report(benchmark, engine):
    """The headline number: % runtime saved by dependency reuse (paper: 26%)."""
    with_reuse = _total_seconds(engine, reuse_shared=True)
    without_reuse = _total_seconds(engine, reuse_shared=False)
    improvement = (without_reuse - with_reuse) / without_reuse * 100.0
    print_table(
        "View dependency reuse (§3.2; paper reports a 26% improvement)",
        ["configuration", "seconds", "improvement_%", "paper_improvement_%"],
        [
            ["independent pipelines", without_reuse, 0.0, 0.0],
            ["shared dependency reuse", with_reuse, improvement, 26.0],
        ],
    )
    # Shape claim: reuse must help by a double-digit percentage.
    assert improvement > 10.0
    benchmark(lambda: engine.materialize_views(TARGET_VIEWS, reuse_shared=True))
