"""SERVE_P99 — multi-tenant front-door latency under open-loop replay.

The front door (docs/frontdoor.md) is the request layer between "millions
of users" and the replica fleet: per-tenant admission (token buckets, a
bounded priority queue, deadlines) over scatter-gather execution on a
bounded worker pool.  This benchmark replays realistic traffic against a
**live** fleet and gates on the contract the paper's serving tier makes:

* **open-loop arrivals** — request times are drawn from a Poisson process
  (exponential inter-arrivals), so arrival pressure does not slow down when
  the server does: the honest way to expose queueing delay;
* **Zipf-distributed tenants** — tenant ranks are weighted ``1/(rank+1)^s``
  (s = 1.1), the skew real multi-tenant traffic shows, so the head tenant's
  flood and the tail tenants' trickle share one door;
* **tail-latency gate** — p99 wall latency of *completed* requests
  (queueing included) must stay under ``BENCH_FRONTDOOR_P99_MS``
  (default 250 ms);
* **isolation gate** — every row every tenant receives belongs to its own
  KG slice; a single cross-tenant row fails the run;
* **honest-refusal gate** — every non-completed request failed with a
  *typed* admission error carrying ``retry_after``, and the admission queue
  never exceeded its capacity (zero unbounded queueing).

``FRONTDOOR_REQUESTS`` scales the replay (CI default 300; the nightly soak
runs larger).  Writes ``BENCH_SERVE_P99.json`` (see ``write_bench_json``)
so CI tracks the latency trajectory per commit.
"""

from __future__ import annotations

import asyncio
import os
import random

from benchmarks.conftest import print_table, write_bench_json
from repro.engine.metadata import MetadataStore
from repro.engine.views import ViewCatalog, ViewDefinition, ViewDelta, ViewManager
from repro.errors import DeadlineExceededError, OverloadedError
from repro.serving import FrontDoor, Priority, ServingFleet

NUM_TENANTS = 8
ZIPF_EXPONENT = 1.1
ENTITIES_PER_TENANT = 25
REQUESTS = int(os.environ.get("FRONTDOOR_REQUESTS", "300"))
ARRIVAL_RATE_RPS = float(os.environ.get("FRONTDOOR_ARRIVAL_RPS", "600"))
P99_BOUND_MS = float(os.environ.get("BENCH_FRONTDOOR_P99_MS", "250"))
MAX_CONCURRENCY = 4
QUEUE_CAPACITY = 32

PRIORITIES = (Priority.INTERACTIVE, Priority.NORMAL, Priority.BATCH)
PRIORITY_WEIGHTS = (30, 60, 10)


def _tenant_type(rank: int) -> str:
    return f"seg{rank}"


def _build_world(rng: random.Random):
    """One shared row view whose rows are striped across tenant KG slices."""
    entities: dict[str, dict] = {}
    for rank in range(NUM_TENANTS):
        for index in range(ENTITIES_PER_TENANT):
            entities[f"s{rank}x{index:02d}"] = {
                "type": _tenant_type(rank), "value": rng.randint(0, 99),
            }

    def row(eid: str) -> dict:
        fields = entities[eid]
        return {
            "subject": eid,
            "name": f"Entity {eid}",
            "value": fields["value"],
            "types": [fields["type"]],
        }

    catalog = ViewCatalog()

    def create(context):
        return {eid: row(eid) for eid in sorted(entities)}

    def apply_delta(context, delta: ViewDelta):
        artifact = dict(context.artifact("profile_rows"))
        for eid in delta.changed:
            artifact[eid] = row(eid)
        for eid in delta.deleted:
            artifact.pop(eid, None)
        return artifact

    catalog.register(ViewDefinition(
        "profile_rows", "analytics", create=create, apply_delta=apply_delta,
    ))
    manager = ViewManager(
        catalog, engines={}, metadata=MetadataStore(),
        lsn_source=lambda: 1, entity_source=lambda: list(entities),
    )
    manager.materialize()
    return entities, manager


def _tenant_battery(rank: int) -> tuple[str, ...]:
    kind = _tenant_type(rank)
    return (
        f"MATCH {kind} RETURN name, value",
        f"MATCH {kind} WHERE value > 25 RETURN name, value",
        f"MATCH {kind} WHERE value < 75 RETURN value LIMIT 5",
        f'MATCH {kind} WHERE name CONTAINS "1" RETURN *',
    )


def _zipf_weights() -> list[float]:
    return [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(NUM_TENANTS)]


async def _replay(door: FrontDoor, rng: random.Random):
    """Open-loop Poisson replay; returns (outcomes, isolation_violations)."""
    weights = _zipf_weights()
    batteries = [_tenant_battery(rank) for rank in range(NUM_TENANTS)]
    violations = 0
    tasks: list[asyncio.Task] = []
    clock = asyncio.get_running_loop().time
    next_arrival = clock()

    async def issue(rank: int, text: str, priority: Priority):
        nonlocal violations
        result = await door.query(
            f"tenant-{rank}", text, "profile_rows", priority=priority,
            deadline=1.0,
        )
        prefix = f"s{rank}x"
        for row in result.rows:
            if not row.entity_id.rsplit(":", 1)[-1].startswith(prefix):
                violations += 1
        return result

    for _ in range(REQUESTS):
        rank = rng.choices(range(NUM_TENANTS), weights=weights)[0]
        text = rng.choice(batteries[rank])
        priority = rng.choices(PRIORITIES, weights=PRIORITY_WEIGHTS)[0]
        # open loop: the next arrival is scheduled regardless of completions
        next_arrival += rng.expovariate(ARRIVAL_RATE_RPS)
        delay = next_arrival - clock()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.create_task(issue(rank, text, priority)))
    outcomes = await asyncio.gather(*tasks, return_exceptions=True)
    return outcomes, violations


def bench_front_door_p99_under_zipf_open_loop_load(benchmark):
    rng = random.Random(2024)
    entities, manager = _build_world(rng)
    fleet = ServingFleet(manager, num_replicas=3).start()
    fleet.serve_view("profile_rows")
    assert fleet.drain()
    door = FrontDoor(
        fleet, max_concurrency=MAX_CONCURRENCY, queue_capacity=QUEUE_CAPACITY,
    )
    for rank in range(NUM_TENANTS):
        door.registry.register(
            f"tenant-{rank}", views={"profile_rows"},
            entity_types={_tenant_type(rank)},
            rate=ARRIVAL_RATE_RPS, burst=QUEUE_CAPACITY,
        )
    try:
        outcomes, violations = asyncio.run(_replay(door, rng))

        completed = [o for o in outcomes if not isinstance(o, BaseException)]
        refusals = [o for o in outcomes if isinstance(o, BaseException)]
        untyped = [
            error for error in refusals
            if not isinstance(error, (OverloadedError, DeadlineExceededError))
        ]
        stats = door.stats()
        latency = stats["latency"]
        per_tenant_rows = [
            [f"tenant-{rank}",
             stats["tenants"].get(f"tenant-{rank}", {}).get("requests", 0),
             stats["tenants"].get(f"tenant-{rank}", {}).get("completed", 0),
             stats["tenants"].get(f"tenant-{rank}", {}).get("shed", 0)
             + stats["tenants"].get(f"tenant-{rank}", {}).get("rate_limited", 0),
             stats["tenants"].get(f"tenant-{rank}", {})
                 .get("latency", {}).get("p99_ms", 0.0)]
            for rank in range(NUM_TENANTS)
        ]
        print_table(
            f"Front-door open-loop replay ({REQUESTS} requests, "
            f"{NUM_TENANTS} Zipf tenants, {ARRIVAL_RATE_RPS:.0f} rps offered)",
            ["tenant", "requests", "completed", "refused", "p99_ms"],
            per_tenant_rows,
        )
        print_table(
            "Door totals",
            ["completed", "refused", "p50_ms", "p95_ms", "p99_ms",
             "max_queue_depth", "isolation_violations"],
            [[len(completed), len(refusals), latency["p50_ms"],
              latency["p95_ms"], latency["p99_ms"],
              stats["queue"]["max_depth"], violations]],
        )

        # the tail-latency gate: p99 of completed requests, queueing included
        assert latency["p99_ms"] <= P99_BOUND_MS, (
            f"p99 {latency['p99_ms']:.2f} ms exceeds the "
            f"{P99_BOUND_MS:.0f} ms bound"
        )
        # the isolation gate: zero cross-tenant rows
        assert violations == 0
        # the honest-refusal gate: every failure is typed and quotes backoff
        assert not untyped, untyped
        assert all(error.retry_after >= 0.0 for error in refusals)
        # zero unbounded queueing: depth never crossed the configured bound
        assert stats["queue"]["max_depth"] <= QUEUE_CAPACITY
        # accounting closes: every arrival completed or was refused, in type
        assert len(completed) + len(refusals) == REQUESTS
        assert stats["completed"] == len(completed)
        # the workload actually exercised the heavy/light tenant split
        assert stats["tenants"]["tenant-0"]["requests"] > (
            stats["tenants"][f"tenant-{NUM_TENANTS - 1}"]["requests"]
        )

        write_bench_json("BENCH_SERVE_P99.json", {
            "benchmark": "SERVE_P99",
            "workload": {
                "requests": REQUESTS,
                "tenants": NUM_TENANTS,
                "zipf_exponent": ZIPF_EXPONENT,
                "offered_rps": ARRIVAL_RATE_RPS,
                "entities": len(entities),
                "max_concurrency": MAX_CONCURRENCY,
                "queue_capacity": QUEUE_CAPACITY,
            },
            "latency_ms": dict(latency),
            "completed": len(completed),
            "refused": len(refusals),
            "shed": stats["shed"],
            "rate_limited": stats["rate_limited"],
            "deadline_exceeded": stats["deadline_exceeded"],
            "max_queue_depth": stats["queue"]["max_depth"],
            "isolation_violations": violations,
            "p99_bound_ms": P99_BOUND_MS,
            "per_tenant_requests": {
                tenant: tenant_stats["requests"]
                for tenant, tenant_stats in stats["tenants"].items()
            },
        })

        # steady-state single-request round-trip through the full door
        async def one_round_trip():
            return await door.query(
                "tenant-0", _tenant_battery(0)[0], "profile_rows",
                use_cache=False,
            )

        benchmark(lambda: asyncio.run(one_round_trip()))
    finally:
        door.close()
        fleet.stop()
