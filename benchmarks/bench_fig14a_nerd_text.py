"""FIG14A — NERD vs the previously-deployed linker on text annotation (Fig. 14a).

The paper compares the NERD stack against an alternative entity-disambiguation
solution that does not use the KG's relational information and therefore works
well for head entities only.  For text-annotation workloads it reports recall
improvements that grow with the confidence cutoff (close to 70% at 0.9,
diminishing at lower cutoffs) and precision improvements of up to 3.4% at
cutoffs >= 0.8.

We evaluate both systems on the synthetic annotated passages (head + tail
mentions, ambiguous surface forms) at the same confidence cutoffs and report
relative precision/recall improvements.  The magnitudes differ from the paper
(different corpus and baseline implementation) but the reproduced shape is:
recall improvements are large and grow with the cutoff, precision never gets
worse at high cutoffs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.baselines import LegacyEntityLinker
from repro.ml.nerd import NERDService

CONFIDENCE_CUTOFFS = (0.9, 0.8, 0.7, 0.6)

#: Paper-reported improvements (relative %), for side-by-side reporting.
PAPER_RECALL_IMPROVEMENT = {0.9: 70.0, 0.8: 52.0, 0.7: 38.0, 0.6: 25.0}
PAPER_PRECISION_IMPROVEMENT = {0.9: 3.4, 0.8: 2.0, 0.7: 0.5, 0.6: 0.0}


@pytest.fixture(scope="module")
def linkers(bench_store, ontology):
    nerd = NERDService.from_store(bench_store, ontology)
    legacy = LegacyEntityLinker(nerd.view, ontology)
    return nerd, legacy


def _evaluate(linker, passages, cutoff: float) -> dict[str, float]:
    """Precision/recall of linking the gold mention of every passage."""
    accepted = correct = 0
    total = len(passages)
    for passage in passages:
        gold = passage.mentions[0]
        result = linker.link_mention(gold.mention, context_text=passage.text)
        if result.entity_id is None or result.confidence < cutoff:
            continue
        accepted += 1
        if result.entity_id == gold.truth_id:
            correct += 1
    precision = correct / accepted if accepted else 0.0
    recall = correct / total if total else 0.0
    return {"precision": precision, "recall": recall, "accepted": accepted}


def bench_fig14a_nerd_annotation(benchmark, linkers, bench_passages):
    """Throughput of NERD over the annotation workload (whole-corpus pass)."""
    nerd, _ = linkers
    result = benchmark(lambda: _evaluate(nerd, bench_passages[:120], 0.6))
    assert result["recall"] > 0.5


def bench_fig14a_legacy_annotation(benchmark, linkers, bench_passages):
    """Throughput of the legacy (context-free) linker on the same workload."""
    _, legacy = linkers
    result = benchmark(lambda: _evaluate(legacy, bench_passages[:120], 0.6))
    assert 0.0 <= result["recall"] <= 1.0


def bench_fig14a_improvement_by_cutoff(benchmark, linkers, bench_passages):
    """Figure 14(a): relative precision/recall improvement per confidence cutoff."""
    nerd, legacy = linkers
    rows = []
    recall_improvements = {}
    precision_deltas = {}
    for cutoff in CONFIDENCE_CUTOFFS:
        nerd_metrics = _evaluate(nerd, bench_passages, cutoff)
        legacy_metrics = _evaluate(legacy, bench_passages, cutoff)
        recall_improvement = (
            (nerd_metrics["recall"] - legacy_metrics["recall"])
            / max(legacy_metrics["recall"], 1e-9) * 100.0
        )
        precision_improvement = (
            (nerd_metrics["precision"] - legacy_metrics["precision"])
            / max(legacy_metrics["precision"], 1e-9) * 100.0
        )
        recall_improvements[cutoff] = recall_improvement
        precision_deltas[cutoff] = precision_improvement
        rows.append([
            cutoff,
            legacy_metrics["recall"], nerd_metrics["recall"], recall_improvement,
            PAPER_RECALL_IMPROVEMENT[cutoff],
            legacy_metrics["precision"], nerd_metrics["precision"], precision_improvement,
            PAPER_PRECISION_IMPROVEMENT[cutoff],
        ])
    print_table(
        "Figure 14(a) — NERD vs legacy linker on text annotation",
        ["cutoff", "legacy_R", "nerd_R", "R_improv_%", "paper_R_%",
         "legacy_P", "nerd_P", "P_improv_%", "paper_P_%"],
        rows,
    )

    # Shape claims from the paper:
    # 1. NERD improves recall at every cutoff, and by more at the strictest cutoff.
    assert all(value > 0.0 for value in recall_improvements.values())
    assert recall_improvements[0.9] >= recall_improvements[0.6]
    # 2. Precision does not degrade at high-confidence cutoffs.
    assert precision_deltas[0.9] >= -1.0
    assert precision_deltas[0.8] >= -1.0

    benchmark(lambda: _evaluate(nerd, bench_passages[:40], 0.9))
