"""Shared fixtures for the benchmark harness.

Each benchmark reproduces one table/figure of the paper's evaluation (see
DESIGN.md §3 and EXPERIMENTS.md).  The fixtures build a benchmark-sized
synthetic world and the reference KG once per session.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.datagen import (
    LiveStreamGenerator,
    StreamConfig,
    TextCorpusConfig,
    TextCorpusGenerator,
    WorldConfig,
    default_source_suite,
    generate_world,
    world_to_store,
)
from repro.model import default_ontology

BENCH_WORLD_CONFIG = WorldConfig(
    num_people=120,
    num_artists=50,
    num_actors=30,
    num_athletes=20,
    songs_per_artist=5,
    albums_per_artist=2,
    num_playlists=20,
    num_movies=50,
    num_cities=30,
    num_countries=10,
    num_schools=15,
    num_labels=12,
    num_teams=14,
    num_stadiums=14,
    num_companies=12,
    seed=73,
)


@pytest.fixture(scope="session")
def ontology():
    """The default open-domain ontology."""
    return default_ontology()


@pytest.fixture(scope="session")
def bench_world():
    """Benchmark-sized ground-truth world."""
    return generate_world(BENCH_WORLD_CONFIG)


@pytest.fixture(scope="session")
def bench_store(bench_world):
    """Reference KG for the benchmark world."""
    return world_to_store(bench_world)


@pytest.fixture(scope="session")
def bench_sources(bench_world):
    """Noisy source suite for the benchmark world."""
    return default_source_suite(bench_world, seed=500)


@pytest.fixture(scope="session")
def bench_passages(bench_world):
    """Annotated text passages for the NERD benchmarks."""
    generator = TextCorpusGenerator(
        bench_world, TextCorpusConfig(num_passages=250, tail_fraction=0.55, seed=97)
    )
    return generator.generate()


@pytest.fixture(scope="session")
def bench_live_events(bench_world):
    """Live event streams for the latency benchmark."""
    generator = LiveStreamGenerator(
        bench_world, StreamConfig(num_games=12, num_stocks=8, num_flights=8, seed=3)
    )
    return generator.all_events()


def write_bench_json(filename: str, payload: dict) -> str:
    """Write a machine-readable benchmark summary for the CI artifact trail.

    Summaries land in ``$BENCH_JSON_DIR`` (default: the working directory,
    which in CI is the checkout root) so workflows can upload them as
    per-commit artifacts and track the performance trajectory.  Re-runs in
    one session merge into the existing file instead of clobbering sibling
    benchmarks' sections.
    """
    out_dir = os.environ.get("BENCH_JSON_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, filename)
    merged: dict = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                merged = json.load(handle)
        except (OSError, ValueError):
            merged = {}
    merged.update(payload)
    merged["written_at_unix"] = round(time.time(), 3)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print a small aligned table, mirroring the paper's reporting style."""
    widths = [len(h) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = [f"{value:.3f}" if isinstance(value, float) else str(value) for value in row]
        rendered_rows.append(rendered)
        widths = [max(w, len(cell)) for w, cell in zip(widths, rendered)]
    line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for rendered in rendered_rows:
        print(" | ".join(cell.ljust(w) for cell, w in zip(rendered, widths)))
