"""FIG12 — relative growth of the KG after introducing Saga (Figure 12).

The paper plots the relative growth of facts and entities since 2018: after
Saga's hybrid batch-incremental construction was introduced, the KG grew to
over 33x the facts and 6.5x the entities of the initial measurement, driven by
continuous onboarding of new sources and incremental updates.  We reproduce
the measurement by simulating the onboarding timeline on the synthetic world:
a single bootstrap source is consumed first (the pre-Saga baseline point),
then the remaining sources are onboarded and every source keeps publishing
evolved snapshots.  The benchmark reports the growth series and the final
relative factors.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.construction import KnowledgeConstructionPipeline
from repro.datagen import SourceSpec, evolve_source, generate_source
from repro.ingestion import IngestionHub


def _bootstrap_spec() -> SourceSpec:
    """The small pre-Saga source: low coverage of people only."""
    return SourceSpec(
        source_id="legacy_feed",
        entity_types=("person", "music_artist"),
        coverage=0.25,
        typo_rate=0.05,
        include_volatile=False,
        seed=901,
    )


def _onboarded_specs() -> list[SourceSpec]:
    """Sources onboarded after Saga is introduced (self-serve onboarding)."""
    return [
        SourceSpec(source_id="wiki", coverage=0.9, seed=902,
                   entity_types=("person", "music_artist", "actor", "athlete", "city",
                                 "country", "school", "company", "sports_team", "stadium")),
        SourceSpec(source_id="musicdb", coverage=0.95, seed=903,
                   entity_types=("music_artist", "album", "song", "playlist", "record_label")),
        SourceSpec(source_id="moviedb", coverage=0.95, seed=904,
                   entity_types=("movie", "actor")),
        SourceSpec(source_id="sportsref", coverage=0.9, seed=905,
                   entity_types=("athlete", "sports_team", "stadium")),
    ]


@pytest.fixture(scope="module")
def growth_run(ontology, bench_world):
    """Run the onboarding timeline once and keep the growth history."""
    hub = IngestionHub(ontology)
    pipeline = KnowledgeConstructionPipeline(ontology)

    bootstrap = generate_source(bench_world, _bootstrap_spec())
    hub.register_source(bootstrap.source_id)
    result = hub.get(bootstrap.source_id).run_entities(bootstrap.entities)
    pipeline.consume_ingestion_result(result)

    snapshots = {bootstrap.source_id: bootstrap}
    for spec in _onboarded_specs():
        source = generate_source(bench_world, spec)
        snapshots[spec.source_id] = source
        hub.register_source(spec.source_id)
        result = hub.get(spec.source_id).run_entities(source.entities)
        pipeline.consume_ingestion_result(result)

    # Continuous operation: every source publishes two evolved snapshots.
    for _ in range(2):
        for source_id, snapshot in list(snapshots.items()):
            evolved = evolve_source(bench_world, snapshot, added_fraction=0.3,
                                    updated_fraction=0.15, deleted_fraction=0.01)
            snapshots[source_id] = evolved
            result = hub.get(source_id).run_entities(evolved.entities)
            pipeline.consume_ingestion_result(result)
    return pipeline


def bench_fig12_growth_series(benchmark, growth_run):
    """Report the growth series and the final relative factors (paper: 33x / 6.5x)."""
    pipeline = growth_run
    series = pipeline.growth.series()
    first = series[0]
    rows = [
        [point["timestamp"], point["source_id"],
         point["facts"], point["entities"],
         point["facts"] / max(first["facts"], 1),
         point["entities"] / max(first["entities"], 1)]
        for point in series
    ]
    print_table(
        "Figure 12 — relative KG growth while onboarding sources "
        "(paper final point: 33x facts, 6.5x entities)",
        ["t", "source", "facts", "entities", "facts_rel", "entities_rel"],
        rows,
    )
    growth = pipeline.growth.relative_growth()
    # Shape claims: both series grow monotonically overall and facts grow
    # faster than entities (integration adds facts to existing entities).
    assert growth["facts"] > 3.0
    assert growth["entities"] > 1.5
    assert growth["facts"] > growth["entities"]
    # The series may dip slightly when sources retract entities, but the KG
    # must remain near its peak size after continuous operation.
    facts_series = [point["facts"] for point in series]
    assert facts_series[-1] >= 0.9 * max(facts_series)

    benchmark(lambda: pipeline.growth.relative_growth())


def bench_fig12_single_source_consumption(benchmark, ontology, bench_world):
    """Micro-benchmark: consuming one full source snapshot end-to-end."""
    source = generate_source(bench_world, _bootstrap_spec())

    def consume_once():
        hub = IngestionHub(ontology)
        pipeline = KnowledgeConstructionPipeline(ontology)
        hub.register_source(source.source_id)
        result = hub.get(source.source_id).run_entities(source.entities)
        return pipeline.consume_ingestion_result(result)

    report = benchmark(consume_once)
    assert report.linked_added > 0
