"""LIVELAT — live KG query latency (§4.2 / §6.1).

The production live graph engine answers billions of queries per day while
holding 95th-percentile latencies in the tens-of-milliseconds band.  We cannot
reproduce the fleet, but the design properties that make that possible — index
seeds instead of scans, bounded traversal, caching, sharded in-memory
indexes — are all in this reproduction, so the benchmark checks that a
production-style query mix (point lookups, traversals, intents, score queries)
over the live index stays within an interactive p95 budget on a laptop.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, write_bench_json
from repro.live import Intent, LiveGraphEngine
from repro.ml.nerd import NERDService

P95_BUDGET_MS = 20.0


@pytest.fixture(scope="module")
def live_engine(bench_store, ontology, bench_live_events):
    nerd = NERDService.from_store(bench_store, ontology)
    engine = LiveGraphEngine(resolution_service=nerd)
    engine.load_stable_view(bench_store)
    engine.ingest_events(bench_live_events)
    return engine


@pytest.fixture(scope="module")
def query_mix(bench_world):
    """A production-style mix of KGQ queries."""
    countries = bench_world.of_type("country")[:6]
    cities = bench_world.of_type("city")[:6]
    artists = bench_world.of_type("music_artist")[:10]
    teams = bench_world.of_type("sports_team")[:6]
    queries: list[str] = []
    for country in countries:
        queries.append(f'MATCH country WHERE name = "{country.name}" RETURN head_of_state.name')
    for city in cities:
        queries.append(f'MATCH city WHERE name = "{city.name}" RETURN mayor.name, located_in.name')
    for artist in artists:
        queries.append(f'MATCH music_artist WHERE name = "{artist.name}" '
                       f"RETURN birth_place.name, record_label.name")
    for team in teams:
        queries.append(f'MATCH sports_game WHERE home_team.name CONTAINS "{team.name}" '
                       f"RETURN name, home_score, away_score, game_status")
    queries.append('MATCH stock WHERE stock_price > 10 RETURN ticker, stock_price LIMIT 5')
    queries.append('MATCH flight WHERE flight_status = "landed" RETURN name LIMIT 5')
    return queries


def bench_livelat_query_mix(benchmark, live_engine, query_mix):
    """Uncached execution of the full query mix (one pass)."""
    def run_mix():
        results = []
        for text in query_mix:
            results.append(live_engine.query(text, use_cache=False))
        return results

    results = benchmark(run_mix)
    answered = sum(1 for result in results if result.rows)
    assert answered / len(results) > 0.6


def bench_livelat_point_lookup(benchmark, live_engine, bench_world):
    """Single point-lookup query latency (the hot path for entity cards)."""
    artist = bench_world.of_type("music_artist")[0]
    text = f'MATCH music_artist WHERE name = "{artist.name}" RETURN birth_place.name'
    result = benchmark(lambda: live_engine.query(text, use_cache=False))
    assert result.rows


def bench_livelat_intent_answering(benchmark, live_engine, bench_world):
    """Intent routing + execution latency (question answering path)."""
    country = bench_world.of_type("country")[0]

    def answer():
        live_engine.context.clear()
        return live_engine.answer_intent(Intent("LeaderOf", (country.name,)))

    answer_value = benchmark(answer)
    assert answer_value.answer is not None


def bench_livelat_p95_report(benchmark, live_engine, query_mix):
    """The headline number: p50/p95/p99 latency over a sustained query workload."""
    live_engine.executor.latencies_ms.clear()
    live_engine.executor.invalidate_cache()
    rounds = 8
    for round_index in range(rounds):
        for text in query_mix:
            # Alternate cached and uncached executions like a real mixed load.
            live_engine.query(text, use_cache=(round_index % 2 == 1))
    p50 = live_engine.executor.latency_percentile(50)
    p95 = live_engine.executor.latency_percentile(95)
    p99 = live_engine.executor.latency_percentile(99)
    stats = live_engine.stats()
    print_table(
        "Live KG query latency (paper: p95 < ~20 ms on production workloads)",
        ["metric", "value"],
        [
            ["queries executed", len(live_engine.executor.latencies_ms)],
            ["documents indexed", stats["documents"]],
            ["cache hit count", stats["cache_hits"]],
            ["p50 latency (ms)", p50],
            ["p95 latency (ms)", p95],
            ["p99 latency (ms)", p99],
            ["p95 budget (ms)", P95_BUDGET_MS],
        ],
    )
    # Merge the serving percentiles into the executor benchmark's summary so
    # one artifact carries both the strategy speedups (KGQEXEC sections) and
    # the end-to-end latency they buy.
    write_bench_json("BENCH_KGQEXEC.json", {
        "serving_latency": {
            "queries_executed": len(live_engine.executor.latencies_ms),
            "documents_indexed": stats["documents"],
            "cache_hits": stats["cache_hits"],
            "p50_ms": p50,
            "p95_ms": p95,
            "p99_ms": p99,
            "p95_budget_ms": P95_BUDGET_MS,
        },
    })
    assert p95 < P95_BUDGET_MS
    benchmark(lambda: live_engine.query(query_mix[0]))
