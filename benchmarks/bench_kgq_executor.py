"""KGQEXEC — vectorized KGQ executor vs the per-document reference loop.

The executor's vectorized strategy evaluates plans as set and column
operations over candidate id batches: equality filters intersect raw
inverted-index postings (with per-document verification of the probe
superset), range/CONTAINS filters walk batched value columns fetched with
one ``get_many`` per hop, and projections batch reference resolution.  The
per-document strategy — one `_walk_path`/`_evaluate_condition` pass per
candidate — is kept as the reference implementation, so every timed pair is
first cross-checked for identical rows and ``candidates_examined``.

Gated sections (≥3x):

* **type_scan_equality** — a type scan over the full partition with a
  selective equality filter: the postings intersection touches only the
  matching ids where the reference loop walks every candidate;
* **filter_heavy** — equality + range + CONTAINS stacked on a type scan:
  the postings cut runs first (ordered by seed selectivity), so the
  columnar filters see two orders of magnitude fewer candidates.

Reported ungated: a two-equality indexed point query (both modes share the
seed, the win is only the residual filter), a pure range scan (columnar
batch fetch vs per-document walks over the same candidate count), and a
LIMIT early-break scan (both modes stop at the limit-th hit).

Writes ``BENCH_KGQEXEC.json`` (see ``write_bench_json``) so CI tracks the
trajectory per commit; ``bench_live_query_latency.py`` merges the serving
percentiles into the same file.
"""

from __future__ import annotations

import random
import time

from benchmarks.conftest import print_table, write_bench_json
from repro.live.executor import QueryExecutor
from repro.live.index import LiveEntityDocument, LiveIndex
from repro.live.kgq import Condition, Query, parse
from repro.live.planner import (
    FilterOp,
    LimitOp,
    PhysicalPlan,
    ProjectOp,
    QueryPlanner,
    TypeScan,
)

NUM_DOCS = 6_000
GENRES = [f"genre_{i:02d}" for i in range(50)]          # ~2% selectivity each
DECADES = [f"{d}s" for d in range(1900, 2030, 10)]
EQUALITY_GATE = 3.0
FILTER_HEAVY_GATE = 3.0


def build_index(num_docs: int = NUM_DOCS) -> LiveIndex:
    rng = random.Random(4_242)
    index = LiveIndex(num_shards=16)
    documents = []
    for i in range(num_docs):
        documents.append(LiveEntityDocument(
            entity_id=f"track:{i:05d}",
            entity_type="track",
            name=f"Track {rng.randrange(num_docs)} {rng.choice(GENRES)}",
            facts={
                "genre": [rng.choice(GENRES)],
                "decade": [rng.choice(DECADES)],
                "score": [rng.randrange(0, 1000)],
            },
            references={"album": f"album:{i % 500:03d}"},
            timestamp=1,
            is_live=True,
        ))
    index.upsert_many(documents)
    return index


def type_scan_plan(conditions: list[Condition], limit: int | None = None) -> PhysicalPlan:
    """A TypeScan plan keeping every condition as a FilterOp — the shape a
    query takes when its equality conditions cannot all fold into the seed."""
    query = Query(
        entity_type="track",
        conditions=conditions,
        returns=[("name",), ("score",)],
        limit=limit,
    )
    return PhysicalPlan(
        query=query,
        seed=TypeScan("track"),
        filters=[FilterOp(condition) for condition in conditions],
        project=ProjectOp(tuple(query.returns)),
        limit=LimitOp(limit) if limit is not None else None,
    )


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _measure(index: LiveIndex) -> dict:
    executor = QueryExecutor(index)
    planner = QueryPlanner(selectivity=index.seed_selectivity)
    plans = {
        "type_scan_equality": type_scan_plan(
            [Condition(("genre",), "=", "genre_07")]
        ),
        "filter_heavy": type_scan_plan([
            Condition(("genre",), "=", "genre_07"),
            Condition(("score",), ">", 250),
            Condition(("name",), "CONTAINS", "track"),
        ]),
        "indexed_point": planner.plan(parse(
            'MATCH track WHERE genre = "genre_07" AND decade = "1990s" RETURN name, score'
        )),
        "range_scan": type_scan_plan([Condition(("score",), ">", 900)]),
        "limit_break": type_scan_plan([], limit=25),
    }
    results: dict[str, dict] = {}
    for name, plan in plans.items():
        vectorized = executor.execute(plan, use_cache=False, vectorized=True)
        reference = executor.execute(plan, use_cache=False, vectorized=False)
        rows = [(row.entity_id, row.values) for row in vectorized.rows]
        assert rows == [(row.entity_id, row.values) for row in reference.rows], name
        assert vectorized.candidates_examined == reference.candidates_examined, name
        vec_s = _best_of(lambda: executor.execute(plan, use_cache=False, vectorized=True))
        ref_s = _best_of(lambda: executor.execute(plan, use_cache=False, vectorized=False))
        results[name] = {
            "rows": len(rows),
            "examined": vectorized.candidates_examined,
            "vectorized_ms": vec_s * 1000.0,
            "per_document_ms": ref_s * 1000.0,
            "speedup": ref_s / max(vec_s, 1e-9),
        }
    return results


def bench_kgqexec_vectorized_vs_per_document(benchmark):
    """Vectorized vs per-document execution on the plans the refactor targets."""
    index = build_index()
    gates = {
        "type_scan_equality": EQUALITY_GATE,
        "filter_heavy": FILTER_HEAVY_GATE,
    }
    # Re-measure on a gate miss to absorb scheduling jitter (same pattern as
    # STORE/QUERYROUTE): the ratios are structural, only the timing is noisy.
    for _ in range(3):
        results = _measure(index)
        if all(results[name]["speedup"] >= floor for name, floor in gates.items()):
            break
    print_table(
        f"Vectorized vs per-document KGQ execution ({NUM_DOCS} documents)",
        ["plan", "rows", "examined", "vectorized_ms", "per_document_ms", "speedup"],
        [
            [name, r["rows"], r["examined"], r["vectorized_ms"],
             r["per_document_ms"], r["speedup"]]
            for name, r in results.items()
        ],
    )
    write_bench_json("BENCH_KGQEXEC.json", {
        "benchmark": "KGQEXEC",
        "workload": {
            "documents": NUM_DOCS,
            "genres": len(GENRES),
            "plans": sorted(results),
        },
        "gates": gates,
        "sections": results,
    })
    for name, floor in gates.items():
        assert results[name]["speedup"] >= floor, (
            f"{name}: {results[name]['speedup']:.1f}x < {floor}x gate"
        )

    executor = QueryExecutor(index)
    plan = type_scan_plan([Condition(("genre",), "=", "genre_07")])
    benchmark(lambda: executor.execute(plan, use_cache=False, vectorized=True))
