"""FIG14B — NERD vs the legacy linker for object resolution (Figure 14b).

Object resolution during construction disambiguates attribute values (e.g. a
record-label name in an artist payload) against the KG, with a known entity
type from the ontology available as a hint.  At a fixed confidence cutoff of
0.9 the paper reports that NERD with type hints improves precision by ~10% and
recall by ~25% over the previously-deployed solution.

The benchmark builds an OBR workload from the ground-truth world (reference
mentions rendered as names/aliases with occasional typos), resolves it with
the legacy linker, plain NERD, and NERD + type hints, and reports the relative
improvements at cutoff 0.9.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.baselines import LegacyEntityLinker
from repro.datagen.names import make_typo
from repro.ml.nerd import NERDService
from repro.model.ontology import ValueKind

CONFIDENCE_CUTOFF = 0.9
PAPER_IMPROVEMENTS = {"precision": 10.0, "recall": 25.0}


@pytest.fixture(scope="module")
def obr_tasks(bench_world, ontology):
    """(mention, context_values, type_hints, expected_truth_id) tuples."""
    rng = np.random.default_rng(11)
    tasks = []
    for entity in bench_world.entities.values():
        for predicate, value in entity.facts.items():
            if not ontology.has_predicate(predicate):
                continue
            spec = ontology.predicate(predicate)
            if spec.value_kind is not ValueKind.REFERENCE:
                continue
            targets = value if isinstance(value, list) else [value]
            for target_id in targets:
                if not isinstance(target_id, str) or target_id not in bench_world.entities:
                    continue
                target = bench_world.get(target_id)
                mention = target.name
                if target.aliases and rng.random() < 0.25:
                    mention = target.aliases[int(rng.integers(0, len(target.aliases)))]
                if rng.random() < 0.15:
                    mention = make_typo(mention, rng)
                context_values = tuple(str(v) for v in [entity.name, *entity.aliases])
                tasks.append((mention, context_values, spec.range_types, target_id))
    rng.shuffle(tasks)
    return tasks[:400]


@pytest.fixture(scope="module")
def resolvers(bench_store, ontology):
    nerd = NERDService.from_store(bench_store, ontology)
    legacy = LegacyEntityLinker(nerd.view, ontology)
    return nerd, legacy


def _evaluate(linker, tasks, use_type_hints: bool) -> dict[str, float]:
    accepted = correct = 0
    for mention, context_values, type_hints, expected in tasks:
        result = linker.link_mention(
            mention,
            context_values=context_values,
            type_hints=type_hints if use_type_hints else (),
        )
        if result.entity_id is None or result.confidence < CONFIDENCE_CUTOFF:
            continue
        accepted += 1
        if result.entity_id == expected:
            correct += 1
    precision = correct / accepted if accepted else 0.0
    recall = correct / len(tasks) if tasks else 0.0
    return {"precision": precision, "recall": recall, "accepted": accepted}


def bench_fig14b_nerd_obr_throughput(benchmark, resolvers, obr_tasks):
    """Throughput of NERD + type hints over the OBR workload."""
    nerd, _ = resolvers
    metrics = benchmark(lambda: _evaluate(nerd, obr_tasks[:150], use_type_hints=True))
    assert metrics["recall"] > 0.4


def bench_fig14b_improvements(benchmark, resolvers, obr_tasks):
    """Figure 14(b): precision/recall improvements of NERD (+ type hints) over legacy."""
    nerd, legacy = resolvers
    legacy_metrics = _evaluate(legacy, obr_tasks, use_type_hints=True)
    nerd_metrics = _evaluate(nerd, obr_tasks, use_type_hints=False)
    hinted_metrics = _evaluate(nerd, obr_tasks, use_type_hints=True)

    def improvement(metric: str, candidate: dict) -> float:
        return (candidate[metric] - legacy_metrics[metric]) / max(
            legacy_metrics[metric], 1e-9
        ) * 100.0

    rows = [
        ["legacy (deployed alternative)", legacy_metrics["precision"],
         legacy_metrics["recall"], 0.0, 0.0],
        ["NERD", nerd_metrics["precision"], nerd_metrics["recall"],
         improvement("precision", nerd_metrics), improvement("recall", nerd_metrics)],
        ["NERD + type hints", hinted_metrics["precision"], hinted_metrics["recall"],
         improvement("precision", hinted_metrics), improvement("recall", hinted_metrics)],
        ["paper (NERD + type hints)", "", "", PAPER_IMPROVEMENTS["precision"],
         PAPER_IMPROVEMENTS["recall"]],
    ]
    print_table(
        "Figure 14(b) — object resolution at confidence cutoff 0.9",
        ["system", "precision", "recall", "P_improv_%", "R_improv_%"],
        rows,
    )

    # Shape claims: both NERD variants beat the legacy linker on recall, and
    # type hints add precision on top of plain NERD.
    assert improvement("recall", nerd_metrics) > 0.0
    assert improvement("recall", hinted_metrics) > 0.0
    assert hinted_metrics["precision"] >= nerd_metrics["precision"]
    assert improvement("precision", hinted_metrics) >= 0.0

    benchmark(lambda: _evaluate(nerd, obr_tasks[:100], use_type_hints=True))
