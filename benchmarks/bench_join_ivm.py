"""IVMJOIN — delta-rule join maintenance vs full rebuild, and shuffle scaling.

Two claims of the join-IVM layer (docs/views.md, docs/serving.md):

* **maintenance asymptotics** — a :class:`JoinViewDefinition` absorbing a 1%
  input delta through its delta rules (reload touched subjects, probe the
  partner access pattern, recompute only affected output rows) must beat a
  from-scratch rebuild of the same join by **≥5x**, while staying
  row-identical to it.  This is the O(|delta| · lookup) vs O(|view|) gap the
  access-pattern factorization buys.

* **distributed join scaling** — a shuffle join re-partitions both sides by
  join-key hash, so the rows any one replica probes/builds must be roughly
  ``1/R`` of the primary-side join's row volume (gated at 2x the fair
  share to absorb hash skew), while the result stays identical to primary.

Writes ``BENCH_IVMJOIN.json`` (see ``write_bench_json``) so CI tracks the
trajectory per commit.
"""

from __future__ import annotations

import random
import statistics
import time

from benchmarks.conftest import print_table, write_bench_json
from repro.engine.metadata import MetadataStore
from repro.engine.views import (
    JoinInput,
    JoinViewDefinition,
    ViewCatalog,
    ViewDefinition,
    ViewManager,
)
from repro.live.executor import QueryExecutor, join_results
from repro.live.index import LiveIndex, view_row_document
from repro.live.kgq import parse
from repro.live.planner import QueryPlanner
from repro.serving import InMemoryJournalBackend, JournalStore, ServingFleet

PEOPLE = 4000
CITIES = 80
DELTA_FRACTION = 0.01
SPEEDUP_FLOOR = 5.0
REPLICAS = 4
SKEW_TOLERANCE = 2.0        # max per-replica share vs the fair 1/R split


class JoinWorld:
    """People (left input, keyed by home city) joined to cities (right)."""

    def __init__(self, rng, people=PEOPLE, cities=CITIES):
        self.city_names = [f"c{i:03d}" for i in range(cities)]
        self.cities = {
            city: {"population": rng.randint(1, 999) * 1000}
            for city in self.city_names
        }
        self.people = {
            f"p{i:05d}": {"home": rng.choice(self.city_names),
                          "age": rng.randint(18, 90)}
            for i in range(people)
        }

    def person_rows(self, subjects=None):
        pool = sorted(self.people) if subjects is None else [
            s for s in sorted(set(subjects)) if s in self.people
        ]
        return [
            {"subject": s, "home": self.people[s]["home"],
             "age": self.people[s]["age"]}
            for s in pool
        ]

    def city_rows(self, subjects=None):
        pool = sorted(self.cities) if subjects is None else [
            s for s in sorted(set(subjects)) if s in self.cities
        ]
        return [
            {"subject": s, "home": s,
             "population": self.cities[s]["population"]}
            for s in pool
        ]

    def subjects(self):
        return list(self.people) + list(self.cities)


def _definition(world, name="person_city"):
    return JoinViewDefinition(
        name,
        JoinInput("people", "home",
                  lambda context, ids: world.person_rows(ids),
                  scope=lambda e: e.startswith("p")),
        JoinInput("cities", "home",
                  lambda context, ids: world.city_rows(ids),
                  scope=lambda e: e.startswith("c")),
        how="left",
    )


def bench_join_ivm_delta_vs_full_rebuild(benchmark):
    """1% deltas through the delta rules must beat full rebuilds ≥5x."""
    rng = random.Random(4171)
    world = JoinWorld(rng)
    catalog = ViewCatalog()
    definition = _definition(world)
    catalog.register(definition)
    clock = {"lsn": 1}
    manager = ViewManager(
        catalog, engines={}, metadata=MetadataStore(),
        lsn_source=lambda: clock["lsn"], entity_source=world.subjects,
    )
    manager.materialize()
    delta_size = max(1, int(PEOPLE * DELTA_FRACTION))

    def mutate_one_percent():
        """Touch 1% of the left input plus one city (both delta paths)."""
        changed = rng.sample(sorted(world.people), delta_size)
        for eid in changed:
            world.people[eid]["age"] += 1
            if rng.random() < 0.3:
                world.people[eid]["home"] = rng.choice(world.city_names)
        city = rng.choice(world.city_names)
        world.cities[city]["population"] += 1
        clock["lsn"] += 1
        manager.enqueue(changed + [city], lsn=clock["lsn"])

    def measure(rounds=8, rebuilds=3):
        delta_seconds = []
        for _ in range(rounds):
            mutate_one_percent()
            started = time.perf_counter()
            manager.flush()
            delta_seconds.append(time.perf_counter() - started)
        rebuild_seconds = []
        for _ in range(rebuilds):
            oracle = _definition(world, name="oracle")
            started = time.perf_counter()
            rebuilt = oracle._create(None)
            rebuild_seconds.append(time.perf_counter() - started)
        return (statistics.median(delta_seconds),
                statistics.median(rebuild_seconds), rebuilt)

    # Re-measures on a loss absorb scheduling jitter (QUERYROUTE pattern):
    # the correctness and counter claims are deterministic, only the
    # wall-clock ratio needs the retry.
    for _ in range(3):
        delta_s, rebuild_s, rebuilt = measure()
        speedup = rebuild_s / max(delta_s, 1e-9)
        if speedup >= SPEEDUP_FLOOR:
            break
    ivm = definition.ivm_stats()
    stats = manager.stats()
    print_table(
        f"Join-view maintenance: {DELTA_FRACTION:.0%} deltas vs full rebuild "
        f"({PEOPLE} people ⋈ {CITIES} cities)",
        ["path", "median_ms", "rows_touched"],
        [
            ["delta rules", delta_s * 1000.0,
             ivm["rows_recomputed"] - PEOPLE],        # create recomputed PEOPLE
            ["full rebuild", rebuild_s * 1000.0, PEOPLE],
            ["speedup", speedup, "-"],
        ],
    )
    # correctness first: the delta-maintained artifact IS the rebuilt join
    assert manager.artifact("person_city") == rebuilt
    # the work went through the delta rules, never a maintenance rebuild
    assert stats["full_rebuilds"] == 0
    assert ivm["full_builds"] == 1
    assert ivm["delta_rounds"] >= 8
    # the headline gate
    assert speedup >= SPEEDUP_FLOOR, (
        f"delta maintenance speedup {speedup:.1f}x under the "
        f"{SPEEDUP_FLOOR:.0f}x floor"
    )
    write_bench_json("BENCH_IVMJOIN.json", {
        "benchmark": "IVMJOIN",
        "maintenance": {
            "people": PEOPLE,
            "cities": CITIES,
            "delta_fraction": DELTA_FRACTION,
            "delta_median_ms": delta_s * 1000.0,
            "rebuild_median_ms": rebuild_s * 1000.0,
            "speedup": speedup,
            "speedup_floor": SPEEDUP_FLOOR,
            "ivm_stats": ivm,
            "manager_stats": stats,
        },
    })
    benchmark(lambda: (mutate_one_percent(), manager.flush()))


# ------------------------------------------------------------------ #
# distributed shuffle join: per-replica work ~ 1/R of primary
# ------------------------------------------------------------------ #
FLEET_PEOPLE = 600
FLEET_CITIES = 40
LEFT_QUERY = "MATCH person RETURN name, home, age"
RIGHT_QUERY = "MATCH city RETURN name, home, pop"


def _fleet_world(rng):
    cities = {f"c{i:02d}": {"pop": rng.randint(1, 99) * 1000}
              for i in range(FLEET_CITIES)}
    people = {f"p{i:04d}": {"home": rng.choice(sorted(cities)),
                            "age": rng.randint(18, 90)}
              for i in range(FLEET_PEOPLE)}
    return people, cities


def _fleet_manager(people, cities):
    catalog = ViewCatalog()

    def register(name, store, row_of, prefix):
        def create(context):
            return {eid: row_of(eid) for eid in sorted(store)}

        def apply_delta(context, delta):
            artifact = dict(context.artifact(name))
            for eid in delta.changed:
                if eid in store:
                    artifact[eid] = row_of(eid)
            for eid in delta.deleted:
                artifact.pop(eid, None)
            return artifact

        catalog.register(ViewDefinition(
            name, "analytics", create=create, apply_delta=apply_delta,
            scope=lambda e: e.startswith(prefix),
        ))

    register("people_rows", people,
             lambda eid: {"subject": eid, "name": f"Person {eid}",
                          "home": people[eid]["home"],
                          "age": people[eid]["age"], "types": ["person"]},
             "p")
    register("city_rows", cities,
             lambda eid: {"subject": eid, "name": f"City {eid}", "home": eid,
                          "pop": cities[eid]["pop"], "types": ["city"]},
             "c")
    return ViewManager(
        catalog, engines={}, metadata=MetadataStore(),
        lsn_source=lambda: 1,
        entity_source=lambda: list(people) + list(cities),
    )


def _primary_join(manager):
    planner = QueryPlanner()
    sides = {}
    for view, text in (("people_rows", LEFT_QUERY), ("city_rows", RIGHT_QUERY)):
        index = LiveIndex()
        lsn = manager.built_at_lsn(view)
        index.replace_feed(
            f"view:{view}",
            (view_row_document(view, f"view:{view}", row, lsn)
             for row in manager.artifact(view).values()),
            lsn,
        )
        sides[view] = QueryExecutor(index).execute(
            planner.plan(parse(text)), use_cache=False)
    started = time.perf_counter()
    result = join_results(sides["people_rows"], sides["city_rows"],
                          "home", "home", how="left")
    join_ms = (time.perf_counter() - started) * 1000.0
    primary_work = len(sides["people_rows"].rows) + len(sides["city_rows"].rows)
    return result, primary_work, join_ms


def bench_join_shuffle_splits_work_across_replicas(benchmark):
    """Shuffle join: each replica handles ~1/R of the join's row volume."""
    rng = random.Random(907)
    people, cities = _fleet_world(rng)
    manager = _fleet_manager(people, cities)
    manager.materialize()
    fleet = ServingFleet(
        manager, num_replicas=REPLICAS,
        journal_store=JournalStore(InMemoryJournalBackend()),
    ).start()
    try:
        fleet.serve_view("people_rows")
        fleet.serve_view("city_rows")
        assert fleet.drain()
        expected, primary_work, primary_join_ms = _primary_join(manager)

        started = time.perf_counter()
        result = fleet.join(LEFT_QUERY, "people_rows", RIGHT_QUERY, "city_rows",
                            "home", "home", how="left", strategy="shuffle")
        shuffle_ms = (time.perf_counter() - started) * 1000.0
        # result-identical to the primary-side join
        assert [(row.entity_id, row.values) for row in result.rows] == \
               [(row.entity_id, row.values) for row in expected.rows]

        per_replica = {
            name: node.status()["join_rows_probed"]
            + node.status()["join_rows_built"]
            for name, node in fleet.replicas.items()
        }
        fair_share = primary_work / REPLICAS
        worst = max(per_replica.values())
        print_table(
            f"Shuffle-join row volume per replica ({FLEET_PEOPLE} ⋈ "
            f"{FLEET_CITIES}, {REPLICAS} replicas, "
            f"primary total {primary_work})",
            ["replica", "rows_handled", "share_of_primary"],
            [[name, rows, rows / primary_work]
             for name, rows in sorted(per_replica.items())]
            + [["fair share (1/R)", fair_share, 1.0 / REPLICAS]],
        )
        assert sum(per_replica.values()) == primary_work   # nothing done twice
        assert worst <= fair_share * SKEW_TOLERANCE, (
            f"replica handled {worst} rows, over {SKEW_TOLERANCE}x the fair "
            f"share {fair_share:.0f}"
        )
        router_stats = fleet.query_router.stats()
        assert router_stats["shuffle_joins"] == 1
        assert router_stats["join_rows_shuffled"] == primary_work
        write_bench_json("BENCH_IVMJOIN.json", {
            "shuffle": {
                "people": FLEET_PEOPLE,
                "cities": FLEET_CITIES,
                "replicas": REPLICAS,
                "primary_row_volume": primary_work,
                "per_replica_rows": dict(sorted(per_replica.items())),
                "max_share_of_primary": worst / primary_work,
                "fair_share": 1.0 / REPLICAS,
                "skew_tolerance": SKEW_TOLERANCE,
                "primary_join_ms": primary_join_ms,
                "distributed_join_ms": shuffle_ms,
                "joined_rows": len(result.rows),
            },
        })
        benchmark(lambda: fleet.join(
            LEFT_QUERY, "people_rows", RIGHT_QUERY, "city_rows",
            "home", "home", how="left", strategy="shuffle",
        ))
    finally:
        fleet.stop()
